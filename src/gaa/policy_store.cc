#include "gaa/policy_store.h"

#include "eacl/parser.h"
#include "eacl/validate.h"
#include "eacl/printer.h"
#include "telemetry/metrics.h"
#include "util/clock.h"
#include "util/config.h"

namespace gaa::core {

util::VoidResult PolicyStore::AddSystemPolicy(const std::string& eacl_text) {
  return AddSystemPolicyNamed(eacl_text, "");
}

util::VoidResult PolicyStore::AddSystemPolicyNamed(const std::string& eacl_text,
                                                   const std::string& name) {
  auto parsed = eacl::ParseEacl(eacl_text);
  if (!parsed.ok()) return parsed.error();
  auto valid = eacl::Validate(parsed.value());
  if (!valid.ok()) return valid.error();
  std::lock_guard<std::mutex> lock(mu_);
  system_policies_.push_back(std::move(parsed).take());
  system_texts_.push_back(eacl_text);
  system_names_.push_back(
      name.empty() ? "system#" + std::to_string(system_policies_.size() - 1)
                   : name);
  version_.fetch_add(1);
  RebuildSnapshotLocked();
  return util::VoidResult::Ok();
}

util::VoidResult PolicyStore::AddSystemPolicyFile(const std::string& path) {
  auto text = util::ReadFileToString(path);
  if (!text.ok()) return text.error();
  return AddSystemPolicyNamed(text.value(), path);
}

util::VoidResult PolicyStore::SetLocalPolicyFile(const std::string& dir_prefix,
                                                 const std::string& path) {
  auto text = util::ReadFileToString(path);
  if (!text.ok()) return text.error();
  return SetLocalPolicy(dir_prefix, text.value());
}

util::VoidResult PolicyStore::SetLocalPolicy(const std::string& dir_prefix,
                                             const std::string& eacl_text) {
  auto parsed = eacl::ParseEacl(eacl_text);
  if (!parsed.ok()) return parsed.error();
  auto valid = eacl::Validate(parsed.value());
  if (!valid.ok()) return valid.error();
  std::string key = dir_prefix.empty() ? "/" : dir_prefix;
  std::lock_guard<std::mutex> lock(mu_);
  local_policies_[key] = std::move(parsed).take();
  local_texts_[key] = eacl_text;
  version_.fetch_add(1);
  RebuildSnapshotLocked();
  return util::VoidResult::Ok();
}

bool PolicyStore::RemoveLocalPolicy(const std::string& dir_prefix) {
  std::string key = dir_prefix.empty() ? "/" : dir_prefix;
  std::lock_guard<std::mutex> lock(mu_);
  bool removed = local_policies_.erase(key) > 0;
  local_texts_.erase(key);
  if (removed) {
    version_.fetch_add(1);
    RebuildSnapshotLocked();
  }
  return removed;
}

void PolicyStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  system_policies_.clear();
  system_texts_.clear();
  system_names_.clear();
  local_policies_.clear();
  local_texts_.clear();
  version_.fetch_add(1);
  RebuildSnapshotLocked();
}

std::vector<std::string> PolicyStore::DirectoryChain(
    const std::string& object_path) {
  std::vector<std::string> chain;
  chain.push_back("/");
  if (object_path.empty() || object_path[0] != '/') return chain;
  std::size_t pos = 1;
  while (pos < object_path.size()) {
    std::size_t slash = object_path.find('/', pos);
    if (slash == std::string::npos) break;  // final component is the object
    chain.push_back(object_path.substr(0, slash));
    pos = slash + 1;
  }
  return chain;
}

eacl::ComposedPolicy PolicyStore::PoliciesFor(
    const std::string& object_path) const {
  std::vector<eacl::Eacl> system_list;
  std::vector<eacl::Eacl> local_list;
  std::vector<std::string> system_names;
  std::vector<std::string> local_names;
  if (parse_on_retrieve_.load()) {
    // Paper-faithful mode: read and translate the policy text per request
    // (gaa_get_object_policy_info "reads the system-wide policy file,
    // converts it to the internal EACL representation...").
    std::vector<std::string> system_texts;
    std::vector<std::string> local_texts;
    {
      std::lock_guard<std::mutex> lock(mu_);
      system_texts = system_texts_;
      system_names = system_names_;
      for (const auto& dir : DirectoryChain(object_path)) {
        auto it = local_texts_.find(dir);
        if (it != local_texts_.end()) {
          local_texts.push_back(it->second);
          local_names.push_back("local:" + it->first);
        }
      }
    }
    for (const auto& text : system_texts) {
      auto parsed = eacl::ParseEacl(text);
      if (parsed.ok()) system_list.push_back(std::move(parsed).take());
    }
    for (const auto& text : local_texts) {
      auto parsed = eacl::ParseEacl(text);
      if (parsed.ok()) local_list.push_back(std::move(parsed).take());
    }
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    system_list = system_policies_;
    system_names = system_names_;
    for (const auto& dir : DirectoryChain(object_path)) {
      auto it = local_policies_.find(dir);
      if (it != local_policies_.end()) {
        local_list.push_back(it->second);
        local_names.push_back("local:" + it->first);
      }
    }
  }
  return eacl::Compose(std::move(system_list), std::move(local_list),
                       std::move(system_names), std::move(local_names));
}

eacl::CompiledComposition PolicySnapshot::ForPath(
    const std::string& object_path) const {
  eacl::CompiledComposition out;
  out.mode = mode_;
  out.system.reserve(system_.size());
  for (const auto& p : system_) out.system.push_back(p.get());
  if (mode_ != eacl::CompositionMode::kStop) {
    for (const auto& dir : PolicyStore::DirectoryChain(object_path)) {
      auto it = locals_.find(dir);
      if (it != locals_.end()) out.local.push_back(it->second.get());
    }
  }
  return out;
}

void PolicyStore::BindEngine(EngineBinding binding) {
  std::lock_guard<std::mutex> lock(mu_);
  binding_ = binding;
  RebuildSnapshotLocked();
}

std::shared_ptr<const PolicySnapshot> PolicyStore::FreshSnapshot(
    const ConditionRegistry* registry, std::uint64_t registry_version) {
  if (parse_on_retrieve_.load(std::memory_order_relaxed)) return nullptr;
  std::shared_ptr<const PolicySnapshot> snap =
      snapshot_.load(std::memory_order_acquire);
  if (snap != nullptr && snap->compiled_for() == registry &&
      snap->registry_version() == registry_version) {
    return snap;  // hot path: one atomic shared_ptr load, no lock
  }
  // Cold path: routines were (un)registered since the last compile, or
  // another GaaApi rebound the store.  Recompile under the mutex.
  std::lock_guard<std::mutex> lock(mu_);
  if (binding_.registry != registry) {
    // Engine bound elsewhere (e.g. two APIs sharing one store): serving a
    // snapshot compiled against a different registry would evaluate the
    // wrong routines.  Fall back to the interpreter.
    return nullptr;
  }
  snap = snapshot_.load(std::memory_order_acquire);
  if (snap == nullptr || snap->registry_version() !=
                             binding_.registry->change_version()) {
    RebuildSnapshotLocked();
    snap = snapshot_.load(std::memory_order_acquire);
  }
  return snap;
}

void PolicyStore::RebuildSnapshotLocked() {
  if (binding_.registry == nullptr) return;
  util::Stopwatch sw;
  auto snap = std::make_shared<PolicySnapshot>();
  snap->store_version_ = version_.load();
  snap->registry_version_ = binding_.registry->change_version();
  snap->compiled_for_ = binding_.registry;

  eacl::CompileEnv env{binding_.registry, binding_.metrics};
  // Effective composition mode mirrors eacl::Compose: the first system
  // policy declaring one wins; default narrow.
  snap->mode_ = eacl::CompositionMode::kNarrow;
  bool mode_set = false;
  snap->system_.reserve(system_policies_.size());
  for (std::size_t i = 0; i < system_policies_.size(); ++i) {
    if (!mode_set && system_policies_[i].mode.has_value()) {
      snap->mode_ = *system_policies_[i].mode;
      mode_set = true;
    }
    snap->system_.push_back(
        eacl::CompilePolicy(system_policies_[i], system_names_[i], env));
  }
  for (const auto& [prefix, policy] : local_policies_) {
    snap->locals_[prefix] =
        eacl::CompilePolicy(policy, "local:" + prefix, env);
  }

  if (binding_.metrics != nullptr) {
    binding_.metrics->GetHistogram("gaa_policy_compile_us")
        ->Record(static_cast<std::uint64_t>(sw.ElapsedUs()));
    binding_.metrics->GetGauge("gaa_policy_snapshot_version")
        ->Set(static_cast<std::int64_t>(snap->store_version_));
    binding_.metrics->GetGauge("gaa_policy_snapshot_built_us")
        ->Set(static_cast<std::int64_t>(sw.ElapsedUs()));
  }

  // Publish, retire the predecessor, reclaim quiescent retirees.  Readers
  // that loaded the old snapshot before the swap hold their own reference;
  // it is freed once the last of them releases it.
  std::shared_ptr<const PolicySnapshot> prev = snapshot_.exchange(
      std::shared_ptr<const PolicySnapshot>(snap), std::memory_order_acq_rel);
  if (prev != nullptr) retired_.push_back(std::move(prev));
  ReclaimRetiredLocked();
}

void PolicyStore::ReclaimRetiredLocked() {
  if (retired_.size() > retired_floor_) {
    std::vector<std::shared_ptr<const PolicySnapshot>> kept;
    kept.reserve(retired_.size());
    for (std::size_t i = 0; i < retired_.size(); ++i) {
      // Entries within the floor window (newest last) are kept regardless.
      bool in_floor = i + retired_floor_ >= retired_.size();
      // use_count()==1 means only retired_ itself holds the snapshot.  It
      // left publication before entering this list (under this mutex), so
      // no reader can acquire a new reference — the count only decreases
      // and 1 is a stable "quiescent" reading.
      if (in_floor || retired_[i].use_count() > 1) {
        kept.push_back(std::move(retired_[i]));
      }
    }
    retired_.swap(kept);
  }
  if (binding_.metrics != nullptr) {
    binding_.metrics->GetGauge("gaa_policy_snapshots_retired")
        ->Set(static_cast<std::int64_t>(retired_.size()));
  }
}

std::size_t PolicyStore::retired_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retired_.size();
}

void PolicyStore::set_retired_floor(std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  retired_floor_ = n;
  ReclaimRetiredLocked();
}

std::size_t PolicyStore::retired_floor() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retired_floor_;
}

std::string PolicyStore::ExportSystemPolicies() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (std::size_t i = 0; i < system_policies_.size(); ++i) {
    if (i > 0) out += "\n";
    out += eacl::PrintEacl(system_policies_[i]);
  }
  return out;
}

std::optional<std::string> PolicyStore::ExportLocalPolicy(
    const std::string& dir_prefix) const {
  std::string key = dir_prefix.empty() ? "/" : dir_prefix;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = local_policies_.find(key);
  if (it == local_policies_.end()) return std::nullopt;
  return eacl::PrintEacl(it->second);
}

std::size_t PolicyStore::system_policy_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return system_policies_.size();
}

std::size_t PolicyStore::local_policy_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return local_policies_.size();
}

}  // namespace gaa::core
