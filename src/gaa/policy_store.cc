#include "gaa/policy_store.h"

#include "eacl/parser.h"
#include "eacl/validate.h"
#include "eacl/printer.h"
#include "util/config.h"

namespace gaa::core {

util::VoidResult PolicyStore::AddSystemPolicy(const std::string& eacl_text) {
  return AddSystemPolicyNamed(eacl_text, "");
}

util::VoidResult PolicyStore::AddSystemPolicyNamed(const std::string& eacl_text,
                                                   const std::string& name) {
  auto parsed = eacl::ParseEacl(eacl_text);
  if (!parsed.ok()) return parsed.error();
  auto valid = eacl::Validate(parsed.value());
  if (!valid.ok()) return valid.error();
  std::lock_guard<std::mutex> lock(mu_);
  system_policies_.push_back(std::move(parsed).take());
  system_texts_.push_back(eacl_text);
  system_names_.push_back(
      name.empty() ? "system#" + std::to_string(system_policies_.size() - 1)
                   : name);
  version_.fetch_add(1);
  return util::VoidResult::Ok();
}

util::VoidResult PolicyStore::AddSystemPolicyFile(const std::string& path) {
  auto text = util::ReadFileToString(path);
  if (!text.ok()) return text.error();
  return AddSystemPolicyNamed(text.value(), path);
}

util::VoidResult PolicyStore::SetLocalPolicyFile(const std::string& dir_prefix,
                                                 const std::string& path) {
  auto text = util::ReadFileToString(path);
  if (!text.ok()) return text.error();
  return SetLocalPolicy(dir_prefix, text.value());
}

util::VoidResult PolicyStore::SetLocalPolicy(const std::string& dir_prefix,
                                             const std::string& eacl_text) {
  auto parsed = eacl::ParseEacl(eacl_text);
  if (!parsed.ok()) return parsed.error();
  auto valid = eacl::Validate(parsed.value());
  if (!valid.ok()) return valid.error();
  std::string key = dir_prefix.empty() ? "/" : dir_prefix;
  std::lock_guard<std::mutex> lock(mu_);
  local_policies_[key] = std::move(parsed).take();
  local_texts_[key] = eacl_text;
  version_.fetch_add(1);
  return util::VoidResult::Ok();
}

bool PolicyStore::RemoveLocalPolicy(const std::string& dir_prefix) {
  std::string key = dir_prefix.empty() ? "/" : dir_prefix;
  std::lock_guard<std::mutex> lock(mu_);
  bool removed = local_policies_.erase(key) > 0;
  local_texts_.erase(key);
  if (removed) version_.fetch_add(1);
  return removed;
}

void PolicyStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  system_policies_.clear();
  system_texts_.clear();
  system_names_.clear();
  local_policies_.clear();
  local_texts_.clear();
  version_.fetch_add(1);
}

std::vector<std::string> PolicyStore::DirectoryChain(
    const std::string& object_path) {
  std::vector<std::string> chain;
  chain.push_back("/");
  if (object_path.empty() || object_path[0] != '/') return chain;
  std::size_t pos = 1;
  while (pos < object_path.size()) {
    std::size_t slash = object_path.find('/', pos);
    if (slash == std::string::npos) break;  // final component is the object
    chain.push_back(object_path.substr(0, slash));
    pos = slash + 1;
  }
  return chain;
}

eacl::ComposedPolicy PolicyStore::PoliciesFor(
    const std::string& object_path) const {
  std::vector<eacl::Eacl> system_list;
  std::vector<eacl::Eacl> local_list;
  std::vector<std::string> system_names;
  std::vector<std::string> local_names;
  if (parse_on_retrieve_.load()) {
    // Paper-faithful mode: read and translate the policy text per request
    // (gaa_get_object_policy_info "reads the system-wide policy file,
    // converts it to the internal EACL representation...").
    std::vector<std::string> system_texts;
    std::vector<std::string> local_texts;
    {
      std::lock_guard<std::mutex> lock(mu_);
      system_texts = system_texts_;
      system_names = system_names_;
      for (const auto& dir : DirectoryChain(object_path)) {
        auto it = local_texts_.find(dir);
        if (it != local_texts_.end()) {
          local_texts.push_back(it->second);
          local_names.push_back("local:" + it->first);
        }
      }
    }
    for (const auto& text : system_texts) {
      auto parsed = eacl::ParseEacl(text);
      if (parsed.ok()) system_list.push_back(std::move(parsed).take());
    }
    for (const auto& text : local_texts) {
      auto parsed = eacl::ParseEacl(text);
      if (parsed.ok()) local_list.push_back(std::move(parsed).take());
    }
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    system_list = system_policies_;
    system_names = system_names_;
    for (const auto& dir : DirectoryChain(object_path)) {
      auto it = local_policies_.find(dir);
      if (it != local_policies_.end()) {
        local_list.push_back(it->second);
        local_names.push_back("local:" + it->first);
      }
    }
  }
  return eacl::Compose(std::move(system_list), std::move(local_list),
                       std::move(system_names), std::move(local_names));
}

std::string PolicyStore::ExportSystemPolicies() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (std::size_t i = 0; i < system_policies_.size(); ++i) {
    if (i > 0) out += "\n";
    out += eacl::PrintEacl(system_policies_[i]);
  }
  return out;
}

std::optional<std::string> PolicyStore::ExportLocalPolicy(
    const std::string& dir_prefix) const {
  std::string key = dir_prefix.empty() ? "/" : dir_prefix;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = local_policies_.find(key);
  if (it == local_policies_.end()) return std::nullopt;
  return eacl::PrintEacl(it->second);
}

std::size_t PolicyStore::system_policy_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return system_policies_.size();
}

std::size_t PolicyStore::local_policy_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return local_policies_.size();
}

}  // namespace gaa::core
