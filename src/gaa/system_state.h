// Shared mutable system state read and written by policy conditions.
//
// Paper §2: "The policy evaluation mechanism is extended with the ability to
// read and write system state."  Conditions consult the threat level, group
// membership (the BadGuys blacklist), counters (failed logins within a
// window) and named variables; response actions update them.  All access is
// thread-safe: server workers evaluate policies concurrently while the IDS
// adjusts the threat level.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "util/clock.h"
#include "util/tristate.h"

namespace gaa::core {

/// System threat profile supplied by an IDS (paper §7.1): low = normal
/// operation, medium = suspicious behaviour observed, high = under attack.
enum class ThreatLevel { kLow = 0, kMedium = 1, kHigh = 2 };

const char* ThreatLevelName(ThreatLevel level);
std::optional<ThreatLevel> ParseThreatLevel(std::string_view token);

class SystemState {
 public:
  explicit SystemState(util::Clock* clock);

  // --- threat level -------------------------------------------------------
  ThreatLevel threat_level() const;
  void SetThreatLevel(ThreatLevel level);

  /// Monotone generation counter bumped only when SetThreatLevel actually
  /// changes the level.  The decision memo uses it as a version fence for
  /// threat-fenced conditions: a transition invalidates those entries the
  /// same way a policy reload's snapshot version does (DESIGN.md §12).
  std::uint64_t threat_epoch() const {
    return threat_epoch_.load(std::memory_order_acquire);
  }

  // --- per-tenant threat scoping (DESIGN.md §14) --------------------------
  // A tenant under attack can be escalated alone: an override pins that
  // namespace's threat level without touching the global profile, and the
  // per-tenant epoch fences only that tenant's memoized decisions.

  /// Threat level governing `tenant`: its override when one is set,
  /// otherwise the global level.  EffectiveThreatLevel("") is exactly
  /// threat_level().
  ThreatLevel EffectiveThreatLevel(std::string_view tenant) const;

  /// Pin / unpin a per-tenant override.  Both bump the tenant's epoch only
  /// when the effective level actually changes.
  void SetTenantThreatLevel(const std::string& tenant, ThreatLevel level);
  void ClearTenantThreatLevel(const std::string& tenant);

  /// Fence for tenant-scoped memos: the global epoch plus the tenant's own
  /// transition count.  Both counters are monotone, so the sum is too; a
  /// global transition moves every tenant's fence, a tenant transition
  /// moves only its own.  TenantThreatEpoch("") == threat_epoch(), and the
  /// whole call is one atomic load until the first override ever appears.
  std::uint64_t TenantThreatEpoch(std::string_view tenant) const;

  // --- named groups (e.g. the BadGuys blacklist of suspicious IPs) --------
  void AddGroupMember(const std::string& group, const std::string& member);
  void RemoveGroupMember(const std::string& group, const std::string& member);
  bool GroupContains(const std::string& group, const std::string& member) const;
  std::size_t GroupSize(const std::string& group) const;
  std::vector<std::string> GroupMembers(const std::string& group) const;

  // --- sliding-window event counters (failed logins per source, ...) ------
  /// Record one event for `key` now; returns the number of events for `key`
  /// within the trailing `window_us` window (including this one).
  std::size_t RecordEvent(const std::string& key, util::DurationUs window_us);
  std::size_t CountEvents(const std::string& key,
                          util::DurationUs window_us) const;

  // --- free-form variables (adaptive thresholds, admin toggles) -----------
  void SetVariable(const std::string& name, const std::string& value);
  std::optional<std::string> GetVariable(const std::string& name) const;

  // --- load metric consulted by time/load-adaptive policies ---------------
  double system_load() const;
  void SetSystemLoad(double load);

  util::Clock& clock() const { return *clock_; }

 private:
  /// Override state for one tenant.  The entry (and its epoch) survives a
  /// Clear so a later re-override can never reuse an old fence value.
  struct TenantThreat {
    std::optional<ThreatLevel> level;  ///< nullopt: cleared, global applies
    std::uint64_t epoch = 0;
  };

  util::Clock* clock_;
  mutable std::mutex mu_;
  std::atomic<std::uint64_t> threat_epoch_{0};
  ThreatLevel threat_level_ = ThreatLevel::kLow;
  std::map<std::string, TenantThreat, std::less<>> tenant_threat_;
  /// 0 until the first override ever: lets the per-request epoch read skip
  /// the mutex entirely in the (overwhelmingly common) no-override case.
  std::atomic<std::size_t> tenant_threat_entries_{0};
  double system_load_ = 0.0;
  std::map<std::string, std::set<std::string>> groups_;
  std::map<std::string, std::deque<util::TimePoint>> events_;
  std::map<std::string, std::string> variables_;
};

}  // namespace gaa::core
