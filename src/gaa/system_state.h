// Shared mutable system state read and written by policy conditions.
//
// Paper §2: "The policy evaluation mechanism is extended with the ability to
// read and write system state."  Conditions consult the threat level, group
// membership (the BadGuys blacklist), counters (failed logins within a
// window) and named variables; response actions update them.  All access is
// thread-safe: server workers evaluate policies concurrently while the IDS
// adjusts the threat level.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "util/clock.h"
#include "util/tristate.h"

namespace gaa::core {

/// System threat profile supplied by an IDS (paper §7.1): low = normal
/// operation, medium = suspicious behaviour observed, high = under attack.
enum class ThreatLevel { kLow = 0, kMedium = 1, kHigh = 2 };

const char* ThreatLevelName(ThreatLevel level);
std::optional<ThreatLevel> ParseThreatLevel(std::string_view token);

class SystemState {
 public:
  explicit SystemState(util::Clock* clock);

  // --- threat level -------------------------------------------------------
  ThreatLevel threat_level() const;
  void SetThreatLevel(ThreatLevel level);

  /// Monotone generation counter bumped only when SetThreatLevel actually
  /// changes the level.  The decision memo uses it as a version fence for
  /// threat-fenced conditions: a transition invalidates those entries the
  /// same way a policy reload's snapshot version does (DESIGN.md §12).
  std::uint64_t threat_epoch() const {
    return threat_epoch_.load(std::memory_order_acquire);
  }

  // --- named groups (e.g. the BadGuys blacklist of suspicious IPs) --------
  void AddGroupMember(const std::string& group, const std::string& member);
  void RemoveGroupMember(const std::string& group, const std::string& member);
  bool GroupContains(const std::string& group, const std::string& member) const;
  std::size_t GroupSize(const std::string& group) const;
  std::vector<std::string> GroupMembers(const std::string& group) const;

  // --- sliding-window event counters (failed logins per source, ...) ------
  /// Record one event for `key` now; returns the number of events for `key`
  /// within the trailing `window_us` window (including this one).
  std::size_t RecordEvent(const std::string& key, util::DurationUs window_us);
  std::size_t CountEvents(const std::string& key,
                          util::DurationUs window_us) const;

  // --- free-form variables (adaptive thresholds, admin toggles) -----------
  void SetVariable(const std::string& name, const std::string& value);
  std::optional<std::string> GetVariable(const std::string& name) const;

  // --- load metric consulted by time/load-adaptive policies ---------------
  double system_load() const;
  void SetSystemLoad(double load);

  util::Clock& clock() const { return *clock_; }

 private:
  util::Clock* clock_;
  mutable std::mutex mu_;
  std::atomic<std::uint64_t> threat_epoch_{0};
  ThreatLevel threat_level_ = ThreatLevel::kLow;
  double system_load_ = 0.0;
  std::map<std::string, std::set<std::string>> groups_;
  std::map<std::string, std::deque<util::TimePoint>> events_;
  std::map<std::string, std::string> variables_;
};

}  // namespace gaa::core
