// GAA configuration files (paper §6, initialization phase).
//
// "The configuration files list routines and parameters for evaluating
// conditions specified in the policy files."  Syntax:
//
//     # bind a condition type (+ defining authority) to a routine from the
//     # routine catalog; trailing key=value pairs parameterize the factory
//     condition pre_cond_regex         gnu    builtin:glob_signature
//     condition pre_cond_time          local  builtin:time_window
//     condition rr_cond_notify         local  builtin:notify  recipient=sysadmin
//
//     # free-form parameters visible to every factory
//     param notify.recipient sysadmin@example.org
//
// The system-wide configuration is processed before the local one; a local
// binding for the same (type, authority) overrides the system binding.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace gaa::core {

struct ConditionBinding {
  std::string cond_type;
  std::string def_auth;
  std::string routine;  ///< catalog name, e.g. "builtin:glob_signature"
  std::map<std::string, std::string> params;  ///< binding-local key=value
};

struct GaaConfigFile {
  std::vector<ConditionBinding> bindings;
  std::map<std::string, std::string> params;  ///< global key -> value
};

util::Result<GaaConfigFile> ParseGaaConfig(std::string_view text);
util::Result<GaaConfigFile> ParseGaaConfigFile(const std::string& path);

}  // namespace gaa::core
