// Policy retrieval (paper §6, step 2a: gaa_get_object_policy_info).
//
// Mirrors Apache's .htaccess behaviour: "when processing a client's request
// to access a document Apache looks for an access control file in every
// directory of the path to the document".  The store keeps one optional
// system-wide policy list plus local policies attached to directory
// prefixes; PoliciesFor(object) gathers the system-wide policies and every
// local policy on the directory chain of `object`, root to leaf.
//
// A monotonically increasing version number lets the policy cache detect
// staleness after any policy change.
//
// Compiled-engine publication (DESIGN.md §9): once an engine is bound via
// BindEngine, every mutation also recompiles the full policy set into an
// immutable PolicySnapshot and publishes it through one atomic pointer
// swap (RCU-style).  Request threads read the current snapshot with a
// single acquire-load — no lock, no copy — and a policy tightened during an
// attack takes effect on the very next request.  Readers hold snapshots by
// shared_ptr, so a superseded snapshot is reclaimed as soon as the last
// reader releases it: the retired list keeps superseded snapshots only
// until their use_count drops to the store's own reference (plus a small
// configurable floor of the most recent ones), so policy churn no longer
// grows memory without bound.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "eacl/ast.h"
#include "eacl/compile.h"
#include "eacl/composition.h"
#include "eacl/ir_store.h"
#include "util/status.h"

namespace gaa::util {
class Clock;
}  // namespace gaa::util

namespace gaa::telemetry {
class MetricRegistry;
}  // namespace gaa::telemetry

namespace gaa::core {

/// What the policy compiler needs; supplied by the GaaApi that owns the
/// registry.  One binding per store — the last bind wins, and snapshots are
/// served only to the registry they were compiled against.
struct EngineBinding {
  const ConditionRegistry* registry = nullptr;
  telemetry::MetricRegistry* metrics = nullptr;  ///< may be null (detached)
  util::Clock* clock = nullptr;                  ///< may be null
};

/// An immutable compiled view of one namespace's policy set at one store
/// version.  The default namespace's snapshot sees only the shared global
/// policies; a tenant's snapshot layers the tenant's own system policies
/// after the globals and overlays its local policies over the global ones
/// (same-prefix tenant locals shadow).
class PolicySnapshot {
 public:
  std::uint64_t store_version() const { return store_version_; }
  std::uint64_t registry_version() const { return registry_version_; }
  const ConditionRegistry* compiled_for() const { return compiled_for_; }
  eacl::CompositionMode mode() const { return mode_; }

  /// Namespace this snapshot was built for ("" = default).
  const std::string& tenant() const { return tenant_; }

  /// Value of the namespace's source-mutation counter at build time; the
  /// store compares it against the live counter to detect a published
  /// snapshot that lags its sources (the Clear()/Remove() staleness guard).
  std::uint64_t source_version() const { return source_version_; }

  /// Assemble the per-path view: system policies plus the directory-chain
  /// locals.  Pure pointer gathering over immutable data — no locks.
  eacl::CompiledComposition ForPath(const std::string& object_path) const;

  const std::vector<std::shared_ptr<const eacl::CompiledPolicy>>& system()
      const {
    return system_;
  }
  const std::map<std::string, std::shared_ptr<const eacl::CompiledPolicy>>&
  locals() const {
    return locals_;
  }

 private:
  friend class PolicyStore;

  std::uint64_t store_version_ = 0;
  std::uint64_t registry_version_ = 0;
  std::uint64_t source_version_ = 0;
  const ConditionRegistry* compiled_for_ = nullptr;
  std::string tenant_;
  eacl::CompositionMode mode_ = eacl::CompositionMode::kNarrow;
  std::vector<std::shared_ptr<const eacl::CompiledPolicy>> system_;
  std::map<std::string, std::shared_ptr<const eacl::CompiledPolicy>> locals_;
};

/// The published tenant → snapshot table: itself one immutable RCU object,
/// so a request thread resolves its namespace with a single acquire-load
/// plus a map lookup over frozen data.  The default namespace is NOT in the
/// table (it has its own dedicated atomic slot).
struct TenantTable {
  std::map<std::string, std::shared_ptr<const PolicySnapshot>, std::less<>>
      snapshots;
  /// Tenant-mutation counter value at publish (staleness guard).
  std::uint64_t source_version = 0;
};

class PolicyStore {
 public:
  /// Add a system-wide policy (parsed EACL text).  Multiple system-wide
  /// policies conjoin at evaluation time.
  util::VoidResult AddSystemPolicy(const std::string& eacl_text);

  /// Same, with an explicit provenance name reported by decision
  /// attribution ("" = positional "system#<index>").  File-backed policies
  /// are named by their path automatically.
  util::VoidResult AddSystemPolicyNamed(const std::string& eacl_text,
                                        const std::string& name);

  /// File-backed variants (the paper's deployment keeps policies in
  /// system and local policy files).
  util::VoidResult AddSystemPolicyFile(const std::string& path);
  util::VoidResult SetLocalPolicyFile(const std::string& dir_prefix,
                                      const std::string& path);

  /// Attach a local policy to a directory prefix, e.g. "/" or "/cgi-bin".
  /// Replaces any previous policy at the same prefix (like rewriting the
  /// directory's .htaccess).
  util::VoidResult SetLocalPolicy(const std::string& dir_prefix,
                                  const std::string& eacl_text);

  /// Remove the local policy at a prefix; returns true if one existed.
  bool RemoveLocalPolicy(const std::string& dir_prefix);

  /// Drop all policies — global and every tenant's (tests).
  void Clear();

  // --- tenant namespaces (DESIGN.md §14) -----------------------------------
  // Every tenant sees the shared global policies (the system-wide set and
  // the "/"-chain locals added through the methods above) plus its own
  // layer: tenant system policies evaluate after the globals, tenant locals
  // shadow a global local at the same directory prefix.  All tenant
  // snapshots are compiled through the content-addressed IrStore, so the
  // shared layer — and any tenant-local policy that is structurally
  // identical under the same provenance name — is one compiled object no
  // matter how many tenants reference it.

  /// Create an (empty) tenant namespace.  Idempotent; the tenant becomes
  /// resolvable immediately with the purely-global policy view.
  util::VoidResult AddTenant(const std::string& tenant);

  /// Remove a tenant and retire its snapshot; returns false if unknown.
  bool RemoveTenant(const std::string& tenant);

  bool HasTenant(std::string_view tenant) const;
  std::vector<std::string> TenantNames() const;
  std::size_t tenant_count() const;

  /// Tenant-scoped mutators; all auto-create the tenant (Set/Add) and
  /// republish the tenant table atomically before returning.
  util::VoidResult AddTenantSystemPolicy(const std::string& tenant,
                                         const std::string& eacl_text,
                                         const std::string& name = "");
  util::VoidResult SetTenantLocalPolicy(const std::string& tenant,
                                        const std::string& dir_prefix,
                                        const std::string& eacl_text);
  bool RemoveTenantLocalPolicy(const std::string& tenant,
                               const std::string& dir_prefix);

  /// One row of the /__status/tenants view.
  struct TenantInfo {
    std::string name;
    std::uint64_t snapshot_version = 0;
    std::size_t system_policies = 0;  ///< tenant's own layer only
    std::size_t local_policies = 0;   ///< tenant's own layer only
  };
  std::vector<TenantInfo> TenantInfos() const;

  /// The content-addressed compile cache (bench/status introspection).
  eacl::IrStore::Stats ir_store_stats() const { return ir_store_.stats(); }

  /// Retrieve and compose the policies protecting `object_path`.
  /// System-wide policies come first; local policies follow the directory
  /// chain root→leaf (more-specific policies later, consistent with ordered
  /// evaluation precedence of earlier == higher-priority policies).
  eacl::ComposedPolicy PoliciesFor(const std::string& object_path) const;

  /// Tenant-scoped variant for the interpreted engine: globals plus the
  /// tenant's layer, same shadowing rules the compiled snapshot applies.
  /// tenant == "" (or unknown) degrades to PoliciesFor.
  eacl::ComposedPolicy PoliciesForTenant(std::string_view tenant,
                                         const std::string& object_path) const;

  /// Version counter bumped by every mutation; used for cache invalidation.
  std::uint64_t version() const { return version_.load(); }

  // --- compiled snapshot publication (DESIGN.md §9) -------------------------

  /// Bind the compiler inputs and publish the first snapshot.  Called by
  /// GaaApi construction; harmless to rebind (last bind wins).
  void BindEngine(EngineBinding binding);

  /// The currently published snapshot — one atomic shared_ptr load, no
  /// lock.  Null before BindEngine.  Holding the returned shared_ptr pins
  /// the snapshot; release it promptly (per-request scope) so superseded
  /// snapshots can be reclaimed.
  std::shared_ptr<const PolicySnapshot> CurrentSnapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  /// Hot-path accessor: the published snapshot, recompiled first (cold,
  /// mutex-guarded) when `registry_version` says routines were registered
  /// after the last compile.  Returns null — caller falls back to the
  /// interpreter — when the engine is bound to a different registry or the
  /// store is in parse-on-retrieve (ablation) mode.
  std::shared_ptr<const PolicySnapshot> FreshSnapshot(
      const ConditionRegistry* registry, std::uint64_t registry_version);

  /// Tenant-scoped twins.  An unknown (or empty) tenant falls back to the
  /// default namespace — the unknown-host request is then governed by the
  /// global policy set, never left unpoliced.
  std::shared_ptr<const PolicySnapshot> CurrentSnapshotFor(
      std::string_view tenant) const;
  std::shared_ptr<const PolicySnapshot> FreshSnapshotFor(
      std::string_view tenant, const ConditionRegistry* registry,
      std::uint64_t registry_version);

  /// Superseded snapshots not yet reclaimed (gauge mirror:
  /// `gaa_policy_snapshots_retired`).
  std::size_t retired_count() const;

  /// Keep at least the `n` most recently superseded snapshots alive even
  /// when unreferenced (debugging headroom; default 2).  Older entries are
  /// reclaimed as soon as no reader holds them.
  void set_retired_floor(std::size_t n);
  std::size_t retired_floor() const;

  /// When enabled, PoliciesFor re-parses the stored policy *text* on every
  /// retrieval instead of returning the pre-parsed form.  This models the
  /// paper's implementation, which read and translated the policy files on
  /// each request — the cost its §9 policy cache was meant to remove.  The
  /// A1 ablation benchmarks flip this switch.  Also disables the compiled
  /// snapshot path (FreshSnapshot returns null) so the ablation measures
  /// the interpreted pipeline.
  void SetParseOnRetrieve(bool enabled) { parse_on_retrieve_ = enabled; }
  bool parse_on_retrieve() const { return parse_on_retrieve_; }

  std::size_t system_policy_count() const;
  std::size_t local_policy_count() const;

  /// Split "/a/b/c.html" into its directory chain: "/", "/a", "/a/b".
  static std::vector<std::string> DirectoryChain(const std::string& object_path);

  /// Render the current policy set back to EACL text (policy-officer
  /// export; round-trips through the parser).
  std::string ExportSystemPolicies() const;
  std::optional<std::string> ExportLocalPolicy(
      const std::string& dir_prefix) const;

 private:
  /// One tenant's own policy layer (sources; compiled forms live in the
  /// published snapshots).
  struct TenantSources {
    std::vector<eacl::Eacl> system_policies;
    std::vector<std::string> system_texts;
    std::vector<std::string> system_names;
    std::map<std::string, eacl::Eacl> local_policies;
    std::map<std::string, std::string> local_texts;
  };

  /// Compile one namespace's snapshot through the IrStore; `mu_` held.
  /// `tenant` null builds the default (globals-only) snapshot.
  std::shared_ptr<const PolicySnapshot> BuildSnapshotLocked(
      const std::string& tenant_name, const TenantSources* tenant);

  /// Single republication funnel (the Clear()/RemoveLocalPolicy staleness
  /// fix rides on every mutator ending here): rebuild the default snapshot
  /// AND every tenant snapshot (a global mutation changes what all of them
  /// see), publish both atomic slots, retire predecessors; `mu_` held.
  /// A no-op until an engine is bound.
  void RepublishAllLocked();

  /// Rebuild and republish exactly one tenant's snapshot (tenant-scoped
  /// mutation: nobody else's snapshot — or memos — move); `mu_` held.
  void RepublishTenantLocked(const std::string& tenant);

  /// Publish a new tenant table derived from the current one by replacing
  /// (or erasing, when `snap` is null) one tenant's entry; `mu_` held.
  void SwapTenantTableLocked(
      const std::string& tenant,
      std::shared_ptr<const PolicySnapshot> snap);

  /// Drop retired snapshots whose use_count fell to the store's own
  /// reference, keeping the `retired_floor_` newest; `mu_` must be held.
  /// Safe because snapshots enter retired_ only after they stop being the
  /// published one, so their reference count can only decrease.
  void ReclaimRetiredLocked();

  /// The compile-environment identity fed to IrStore::Intern: mixes the
  /// registry pointer + change version and the metrics registry, so a
  /// rebind or routine (un)registration can never serve stale IR.
  std::uint64_t CompileEnvKeyLocked() const;

  mutable std::mutex mu_;
  std::vector<eacl::Eacl> system_policies_;
  std::vector<std::string> system_texts_;
  std::vector<std::string> system_names_;  // parallel provenance names
  std::map<std::string, eacl::Eacl> local_policies_;   // prefix -> policy
  std::map<std::string, std::string> local_texts_;     // prefix -> text
  std::map<std::string, TenantSources, std::less<>> tenants_;  // under mu_
  std::atomic<std::uint64_t> version_{0};
  /// Bumped only by mutations visible to the default namespace (global
  /// system/local changes, Clear): the staleness fence FreshSnapshot checks
  /// against the published snapshot.  Tenant-scoped mutations leave it
  /// alone so they cannot perturb default-namespace memo fencing.
  std::atomic<std::uint64_t> default_version_{0};
  /// Bumped by any tenant-layer mutation; fences the tenant table.
  std::atomic<std::uint64_t> tenant_version_{0};
  std::atomic<bool> parse_on_retrieve_{false};

  EngineBinding binding_;  // guarded by mu_
  /// Content-addressed compile cache shared by every namespace's builds.
  eacl::IrStore ir_store_;
  /// Published snapshot.  Readers load a shared_ptr (lock-free publication,
  /// reference-counted reclamation); superseded snapshots move to
  /// `retired_` until quiescent.
  std::atomic<std::shared_ptr<const PolicySnapshot>> snapshot_;
  /// Published tenant table (never null once an engine is bound).
  std::atomic<std::shared_ptr<const TenantTable>> tenant_table_;
  std::vector<std::shared_ptr<const PolicySnapshot>> retired_;  // under mu_
  std::size_t retired_floor_ = 2;                               // under mu_
};

}  // namespace gaa::core
