// Policy retrieval (paper §6, step 2a: gaa_get_object_policy_info).
//
// Mirrors Apache's .htaccess behaviour: "when processing a client's request
// to access a document Apache looks for an access control file in every
// directory of the path to the document".  The store keeps one optional
// system-wide policy list plus local policies attached to directory
// prefixes; PoliciesFor(object) gathers the system-wide policies and every
// local policy on the directory chain of `object`, root to leaf.
//
// A monotonically increasing version number lets the policy cache detect
// staleness after any policy change.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "eacl/ast.h"
#include "eacl/composition.h"
#include "util/status.h"

namespace gaa::core {

class PolicyStore {
 public:
  /// Add a system-wide policy (parsed EACL text).  Multiple system-wide
  /// policies conjoin at evaluation time.
  util::VoidResult AddSystemPolicy(const std::string& eacl_text);

  /// Same, with an explicit provenance name reported by decision
  /// attribution ("" = positional "system#<index>").  File-backed policies
  /// are named by their path automatically.
  util::VoidResult AddSystemPolicyNamed(const std::string& eacl_text,
                                        const std::string& name);

  /// File-backed variants (the paper's deployment keeps policies in
  /// system and local policy files).
  util::VoidResult AddSystemPolicyFile(const std::string& path);
  util::VoidResult SetLocalPolicyFile(const std::string& dir_prefix,
                                      const std::string& path);

  /// Attach a local policy to a directory prefix, e.g. "/" or "/cgi-bin".
  /// Replaces any previous policy at the same prefix (like rewriting the
  /// directory's .htaccess).
  util::VoidResult SetLocalPolicy(const std::string& dir_prefix,
                                  const std::string& eacl_text);

  /// Remove the local policy at a prefix; returns true if one existed.
  bool RemoveLocalPolicy(const std::string& dir_prefix);

  /// Drop all policies (tests).
  void Clear();

  /// Retrieve and compose the policies protecting `object_path`.
  /// System-wide policies come first; local policies follow the directory
  /// chain root→leaf (more-specific policies later, consistent with ordered
  /// evaluation precedence of earlier == higher-priority policies).
  eacl::ComposedPolicy PoliciesFor(const std::string& object_path) const;

  /// Version counter bumped by every mutation; used for cache invalidation.
  std::uint64_t version() const { return version_.load(); }

  /// When enabled, PoliciesFor re-parses the stored policy *text* on every
  /// retrieval instead of returning the pre-parsed form.  This models the
  /// paper's implementation, which read and translated the policy files on
  /// each request — the cost its §9 policy cache was meant to remove.  The
  /// A1 ablation benchmarks flip this switch.
  void SetParseOnRetrieve(bool enabled) { parse_on_retrieve_ = enabled; }
  bool parse_on_retrieve() const { return parse_on_retrieve_; }

  std::size_t system_policy_count() const;
  std::size_t local_policy_count() const;

  /// Split "/a/b/c.html" into its directory chain: "/", "/a", "/a/b".
  static std::vector<std::string> DirectoryChain(const std::string& object_path);

  /// Render the current policy set back to EACL text (policy-officer
  /// export; round-trips through the parser).
  std::string ExportSystemPolicies() const;
  std::optional<std::string> ExportLocalPolicy(
      const std::string& dir_prefix) const;

 private:
  mutable std::mutex mu_;
  std::vector<eacl::Eacl> system_policies_;
  std::vector<std::string> system_texts_;
  std::vector<std::string> system_names_;  // parallel provenance names
  std::map<std::string, eacl::Eacl> local_policies_;   // prefix -> policy
  std::map<std::string, std::string> local_texts_;     // prefix -> text
  std::atomic<std::uint64_t> version_{0};
  std::atomic<bool> parse_on_retrieve_{false};
};

}  // namespace gaa::core
