// Abstract services available to condition-evaluation routines.
//
// The GAA core must not depend on concrete audit / notification / IDS
// implementations (those live in higher-level modules), so routines reach
// them through these narrow interfaces.  Null implementations are provided
// for contexts (unit tests, micro-benchmarks) that wire nothing up.
#pragma once

#include <cstdint>
#include <string>

#include "gaa/system_state.h"
#include "util/clock.h"

namespace gaa::telemetry {
class MetricRegistry;
}  // namespace gaa::telemetry

namespace gaa::core {

/// Administrator notification (paper: e-mail to sysadmin).  Implementations
/// may be synchronous (the paper's measured configuration — notification
/// latency shows up in request latency) or queued.
class NotificationService {
 public:
  virtual ~NotificationService() = default;
  /// Deliver a notification; returns false if delivery failed.
  virtual bool Notify(const std::string& recipient, const std::string& subject,
                      const std::string& body) = 0;
};

/// A structured audit event.  The plain (category, message) form stays the
/// common case; security-relevant emitters additionally attribute the event
/// to a client and — for access decisions — to the exact policy entry and
/// condition that produced the answer, so the audit stream can answer
/// "which EACL entry denied this request" without log archaeology.
struct AuditEvent {
  std::string category;
  std::string message;
  std::uint64_t trace_id = 0;  ///< joins the event to its request trace
  std::string client;          ///< client IP ("" = not request-scoped)
  std::string tenant;          ///< tenant namespace ("" = default)
  std::string decision;        ///< "yes" / "no" / "maybe" ("" = not a decision)
  std::string policy;          ///< deciding policy name ("" = n/a)
  int entry = -1;              ///< entry index within `policy` (-1 = n/a)
  std::string condition;       ///< deciding condition type ("" = the right itself)
};

/// Append-only audit trail.
class AuditSink {
 public:
  virtual ~AuditSink() = default;
  virtual void Record(const std::string& category, const std::string& message) = 0;
  /// Correlated variant: `trace_id` joins the record to the request trace
  /// that produced it (0 = no trace).  Default forwards to the 2-arg form
  /// so existing sinks keep working unchanged.
  virtual void Record(const std::string& category, const std::string& message,
                      std::uint64_t trace_id) {
    (void)trace_id;
    Record(category, message);
  }
  /// Structured variant; the default drops the attribution fields so
  /// pre-existing sinks keep working unchanged.
  virtual void Record(const AuditEvent& event) {
    Record(event.category, event.message, event.trace_id);
  }
};

/// The seven kinds of information the GAA-API can report to an IDS
/// (paper §3, items 1-7).
enum class ReportKind {
  kIllFormedRequest = 1,    ///< §3 item 1
  kAbnormalParameters = 2,  ///< §3 item 2
  kSensitiveDenial = 3,     ///< §3 item 3
  kThresholdViolation = 4,  ///< §3 item 4
  kDetectedAttack = 5,      ///< §3 item 5
  kSuspiciousBehavior = 6,  ///< §3 item 6
  kLegitimatePattern = 7,   ///< §3 item 7
};

/// One report sent from the GAA-API to an IDS.  May include "threat
/// characteristics, such as attack type and severity, confidence value and
/// defensive recommendations" (paper §3 item 5).
struct IdsReport {
  ReportKind kind = ReportKind::kSuspiciousBehavior;
  std::string source_ip;
  std::string object;
  std::string attack_type;  ///< e.g. "cgi_exploit", "dos_slashes"
  int severity = 0;         ///< 0..10
  double confidence = 0.0;  ///< 0..1
  std::string detail;
};

/// Reporting channel from the GAA-API to an IDS.
class IdsChannel {
 public:
  virtual ~IdsChannel() = default;

  virtual void Report(const IdsReport& report) = 0;

  /// Ask the network IDS whether the source address shows signs of spoofing
  /// (paper §3: consulted before pro-active countermeasures).
  virtual bool SuspectedSpoofing(const std::string& source_ip) = 0;
};

/// Bundle handed to every condition routine.  Non-owning pointers; any of
/// the service pointers may be null (routines must degrade gracefully —
/// an unavailable notification sink is a failed condition, not a crash).
struct EvalServices {
  SystemState* state = nullptr;
  util::Clock* clock = nullptr;
  NotificationService* notifier = nullptr;
  AuditSink* audit = nullptr;
  IdsChannel* ids = nullptr;
  telemetry::MetricRegistry* metrics = nullptr;
};

const char* ReportKindName(ReportKind kind);

}  // namespace gaa::core
