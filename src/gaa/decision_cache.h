// Decision memoization for the compiled policy engine (DESIGN.md §9).
//
// Caches *terminal* authorization answers keyed by (subject, right, object,
// snapshot version).  Admission is gated by the compiler's purity analysis:
// only decisions reached exclusively through kPure conditions are offered,
// and MAYBE is never cached (a MAYBE answer means conditions were left
// unevaluated — the 401/redirect translation must see them fresh, and new
// credentials on the next request may flip the answer).
//
// Structure: a power-of-two array of atomic slots, direct-mapped by key
// hash.  Get is one atomic shared_ptr load plus a full-key compare (hash
// collisions fall back to a miss, never to a wrong answer); Put replaces
// the slot unconditionally.  The snapshot version is part of the entry, so
// every policy change invalidates the whole cache implicitly — policy
// tightening during an attack takes effect on the next request, exactly
// like the snapshot swap itself.
//
// Threat-fenced entries (DESIGN.md §12): decisions that passed through a
// kThreatFenced condition additionally record the SystemState threat epoch
// they were computed under.  A threat-level transition bumps the epoch, so
// those entries go stale the same way a policy reload makes every entry
// stale — the IDS raising the alarm takes effect on the very next request.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace gaa::telemetry {
class Counter;
class MetricRegistry;
}  // namespace gaa::telemetry

namespace gaa::core {

struct AuthzResult;

class DecisionCache {
 public:
  static constexpr std::size_t kDefaultSlots = 4096;

  /// `slots` is rounded up to a power of two; 0 disables the cache.
  explicit DecisionCache(std::size_t slots = kDefaultSlots);

  struct CachedDecision {
    std::string key;
    std::uint64_t snapshot_version = 0;
    std::shared_ptr<const AuthzResult> result;
    /// The deciding entry's eacl_entry_decisions_total handle, so memo
    /// hits keep per-entry attribution counters exact.  May be null.
    telemetry::Counter* entry_counter = nullptr;
    /// SystemState threat epoch the decision was computed under; consulted
    /// only when `epoch_fenced` (the decision passed through a
    /// kThreatFenced condition).
    std::uint64_t state_epoch = 0;
    bool epoch_fenced = false;
  };

  /// Null on miss, stale version, stale threat epoch (fenced entries only)
  /// or hash collision.
  std::shared_ptr<const CachedDecision> Get(std::string_view key,
                                            std::uint64_t snapshot_version,
                                            std::uint64_t state_epoch = 0);

  /// Admission probe for the transport's inline fast path: true when a
  /// current-version (and current-epoch, for fenced entries) entry exists
  /// for `key`.  Unlike Get, Peek perturbs nothing — no hit/miss counters,
  /// no metrics — so probing a request and then declining to serve it
  /// inline leaves the cache statistics exact.
  bool Peek(std::string_view key, std::uint64_t snapshot_version,
            std::uint64_t state_epoch = 0) const;

  void Put(std::string key, std::uint64_t snapshot_version,
           std::shared_ptr<const AuthzResult> result,
           telemetry::Counter* entry_counter, std::uint64_t state_epoch = 0,
           bool epoch_fenced = false);

  /// Drop every entry (tests; not required for correctness on policy
  /// change — the version key already fences stale answers).
  void Clear();

  /// Mirror hit/miss accounting into gaa_decision_cache_{hits,misses}_total
  /// (plus _insertions_total) so /__status reports them.
  void AttachMetrics(telemetry::MetricRegistry* registry);

  std::uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t insertions() const {
    return insertions_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return mask_ == 0 ? 0 : mask_ + 1; }
  /// Occupied slots (approximate under concurrency; tests only).
  std::size_t size() const;

 private:
  using Slot = std::atomic<std::shared_ptr<const CachedDecision>>;

  std::size_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  telemetry::Counter* hit_counter_ = nullptr;
  telemetry::Counter* miss_counter_ = nullptr;
  telemetry::Counter* insert_counter_ = nullptr;
};

}  // namespace gaa::core
