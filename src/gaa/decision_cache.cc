#include "gaa/decision_cache.h"

#include <functional>

#include "telemetry/metrics.h"

namespace gaa::core {

namespace {
std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

DecisionCache::DecisionCache(std::size_t slots) {
  if (slots == 0) return;
  std::size_t n = RoundUpPow2(slots);
  mask_ = n - 1;
  slots_ = std::make_unique<Slot[]>(n);
}

std::shared_ptr<const DecisionCache::CachedDecision> DecisionCache::Get(
    std::string_view key, std::uint64_t snapshot_version,
    std::uint64_t state_epoch) {
  if (slots_ == nullptr) return nullptr;
  std::size_t slot = std::hash<std::string_view>{}(key)&mask_;
  std::shared_ptr<const CachedDecision> entry =
      slots_[slot].load(std::memory_order_acquire);
  if (entry != nullptr && entry->snapshot_version == snapshot_version &&
      (!entry->epoch_fenced || entry->state_epoch == state_epoch) &&
      entry->key == key) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (hit_counter_ != nullptr) hit_counter_->Inc();
    return entry;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (miss_counter_ != nullptr) miss_counter_->Inc();
  return nullptr;
}

bool DecisionCache::Peek(std::string_view key, std::uint64_t snapshot_version,
                         std::uint64_t state_epoch) const {
  if (slots_ == nullptr) return false;
  std::size_t slot = std::hash<std::string_view>{}(key)&mask_;
  std::shared_ptr<const CachedDecision> entry =
      slots_[slot].load(std::memory_order_acquire);
  return entry != nullptr && entry->snapshot_version == snapshot_version &&
         (!entry->epoch_fenced || entry->state_epoch == state_epoch) &&
         entry->key == key;
}

void DecisionCache::Put(std::string key, std::uint64_t snapshot_version,
                        std::shared_ptr<const AuthzResult> result,
                        telemetry::Counter* entry_counter,
                        std::uint64_t state_epoch, bool epoch_fenced) {
  if (slots_ == nullptr) return;
  auto entry = std::make_shared<CachedDecision>();
  entry->key = std::move(key);
  entry->snapshot_version = snapshot_version;
  entry->result = std::move(result);
  entry->entry_counter = entry_counter;
  entry->state_epoch = state_epoch;
  entry->epoch_fenced = epoch_fenced;
  std::size_t slot = std::hash<std::string_view>{}(entry->key)&mask_;
  slots_[slot].store(std::move(entry), std::memory_order_release);
  insertions_.fetch_add(1, std::memory_order_relaxed);
  if (insert_counter_ != nullptr) insert_counter_->Inc();
}

void DecisionCache::Clear() {
  if (slots_ == nullptr) return;
  for (std::size_t i = 0; i <= mask_; ++i) {
    slots_[i].store(nullptr, std::memory_order_release);
  }
}

std::size_t DecisionCache::size() const {
  if (slots_ == nullptr) return 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i <= mask_; ++i) {
    if (slots_[i].load(std::memory_order_acquire) != nullptr) ++n;
  }
  return n;
}

void DecisionCache::AttachMetrics(telemetry::MetricRegistry* registry) {
  if (registry == nullptr) return;
  hit_counter_ = registry->GetCounter("gaa_decision_cache_hits_total");
  miss_counter_ = registry->GetCounter("gaa_decision_cache_misses_total");
  insert_counter_ =
      registry->GetCounter("gaa_decision_cache_insertions_total");
}

}  // namespace gaa::core
