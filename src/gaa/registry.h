// Condition-evaluation registry.
//
// Paper §5 advantage 2: "The GAA-API is structured to support the addition
// of modules for evaluation of new conditions.  Web masters can write their
// own routines to evaluate conditions or execute actions and register them
// with the GAA-API ... loaded dynamically so that one does not need to
// recompile the whole Apache package."
//
// Routines are registered under (condition_type, def_auth); "*" acts as a
// def_auth wildcard.  Lookup prefers the exact authority, then the wildcard.
// A condition whose type/authority has no registered routine is left
// *unevaluated*, which yields GAA_MAYBE per the paper's status rules.
//
// Registrations additionally carry *compile hooks* for the compiled policy
// engine (eacl/compile.h, DESIGN.md §9): a purity classification that gates
// decision memoization, and an optional specializer that pre-parses a
// condition's value once at policy-compile time instead of on every request.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "eacl/ast.h"
#include "gaa/context.h"
#include "gaa/services.h"
#include "util/status.h"
#include "util/tristate.h"

namespace gaa::core {

/// Result of evaluating one condition.
struct EvalOutcome {
  util::Tristate status = util::Tristate::kMaybe;
  bool evaluated = false;  ///< false == "left unevaluated" (drives MAYBE)
  std::string detail;      ///< human-readable trace fragment

  static EvalOutcome Yes(std::string detail = {}) {
    return {util::Tristate::kYes, true, std::move(detail)};
  }
  static EvalOutcome No(std::string detail = {}) {
    return {util::Tristate::kNo, true, std::move(detail)};
  }
  /// Evaluated but undetermined (e.g. depends on data not yet present).
  static EvalOutcome Maybe(std::string detail = {}) {
    return {util::Tristate::kMaybe, true, std::move(detail)};
  }
  /// Deliberately not evaluated (e.g. pre_cond_redirect, whose value the
  /// application interprets; or identity checks with no credentials yet).
  static EvalOutcome Unevaluated(std::string detail = {}) {
    return {util::Tristate::kMaybe, false, std::move(detail)};
  }
};

/// A condition-evaluation routine.
using CondRoutine = std::function<EvalOutcome(
    const eacl::Condition&, const RequestContext&, EvalServices&)>;

/// Purity classification of a routine, used by the compiled engine's
/// memoization analysis (DESIGN.md §9, §12).  A decision may be cached only
/// if every condition on the way to it was kPure or kThreatFenced (the
/// latter pins the cache entry to the threat epoch it was computed under).
enum class CondPurity {
  /// Depends only on inputs captured in the decision-memo key — the request
  /// identity (authenticated flag, user, asserted groups), the client
  /// address, the object and the requested right — plus the condition text
  /// itself.  Re-evaluation with an identical key provably repeats the
  /// outcome, so the decision is safe to memoize.
  kPure,
  /// Like kPure, except the routine additionally reads the system threat
  /// level.  Memoizable when the cache entry is fenced on the SystemState
  /// threat epoch: a level transition bumps the epoch and invalidates the
  /// entry, exactly as a policy reload's snapshot version does.
  kThreatFenced,
  /// Reads live state outside the memo key: the clock, SystemState
  /// variables/groups/event counters, IDS verdicts, a threat level reached
  /// through "var:" indirection, request parameters or operation
  /// statistics.  Never memoized.
  kVolatile,
  /// Performs side effects (notification, audit record, blacklist update,
  /// IDS report).  Never memoized — the effect must fire on every request.
  kEffect,
};

const char* CondPurityName(CondPurity purity);

/// Static traits a registration declares about its routine.
struct CondTraits {
  CondPurity purity = CondPurity::kVolatile;  ///< conservative default
};

/// Result of specializing one concrete condition at policy-compile time.
struct SpecializedCond {
  /// Replacement routine with the condition value pre-parsed (CIDR lists,
  /// HH:MM windows, comparison operators, glob lists).  Null keeps the
  /// generic registered routine.
  CondRoutine routine;
  /// Purity refinement for this specific value — e.g. a literal CIDR list
  /// is pure while a "var:" indirection is volatile.
  std::optional<CondPurity> purity;
};

/// Compile hook: invoked once per concrete condition when a policy is
/// lowered to IR.  Must be a pure function of the condition text.
using CondSpecializer = std::function<SpecializedCond(const eacl::Condition&)>;

/// Everything registered under one (type, def_auth) key.
struct CondRegistration {
  CondRoutine routine;
  CondTraits traits;
  CondSpecializer specialize;  ///< may be null (no compile-time form)
};

class ConditionRegistry {
 public:
  /// Register a routine for (type, def_auth).  def_auth may be "*".
  /// Re-registration replaces (supports dynamic reload).  Routines
  /// registered without traits default to kVolatile — conservative: their
  /// decisions are never memoized.
  void Register(std::string type, std::string def_auth, CondRoutine routine);
  void Register(std::string type, std::string def_auth, CondRoutine routine,
                CondTraits traits, CondSpecializer specialize = nullptr);

  /// Remove a registration; returns true if something was removed.
  bool Unregister(const std::string& type, const std::string& def_auth);

  /// Lookup with authority fallback: (type, auth) then (type, "*").
  const CondRoutine* Find(std::string_view type,
                          std::string_view def_auth) const;

  /// Full registration (routine + compile hooks), same fallback rule.
  const CondRegistration* FindRegistration(std::string_view type,
                                           std::string_view def_auth) const;

  /// Bumped by every (un)registration.  Compiled policy snapshots are
  /// stamped with it so a routine registered *after* a compile forces a
  /// recompile instead of evaluating stale MAYBE thunks forever.
  std::uint64_t change_version() const {
    return change_version_.load(std::memory_order_acquire);
  }

  std::size_t size() const { return routines_.size(); }

 private:
  std::map<std::pair<std::string, std::string>, CondRegistration> routines_;
  std::atomic<std::uint64_t> change_version_{0};
};

/// Named catalog of routine factories.  Configuration files select routines
/// by name ("builtin:glob_signature"); this is our stand-in for the paper's
/// dynamically-loaded shared objects — factories are looked up at
/// initialization time, so new routines can be added without touching the
/// GAA core or the server.
class RoutineCatalog {
 public:
  using Factory = std::function<CondRoutine(
      const std::map<std::string, std::string>& params)>;
  /// Per-authority traits ("builtin:accessid" is pure for USER/HOST but
  /// volatile for GROUP, which reads live SystemState membership).
  using TraitsFn = std::function<CondTraits(const std::string& def_auth)>;
  /// Factory-level specializer; bound with the instantiation params to
  /// produce the registry-level CondSpecializer.
  using SpecializeFactory = std::function<SpecializedCond(
      const eacl::Condition&, const std::map<std::string, std::string>&)>;

  /// Factory plus the compile hooks its routines carry.
  struct RoutineInfo {
    Factory factory;
    TraitsFn traits;               ///< null = kVolatile for every authority
    SpecializeFactory specialize;  ///< null = no compile-time specialization
  };

  void Add(std::string name, Factory factory);
  void Add(std::string name, RoutineInfo info);

  util::Result<CondRoutine> Make(
      const std::string& name,
      const std::map<std::string, std::string>& params) const;

  /// A routine plus its registration-ready compile hooks.
  struct Instantiated {
    CondRoutine routine;
    CondTraits traits;
    CondSpecializer specialize;  ///< params already bound; may be null
  };
  util::Result<Instantiated> Instantiate(
      const std::string& name, const std::string& def_auth,
      const std::map<std::string, std::string>& params) const;

  bool Contains(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, RoutineInfo> factories_;
};

}  // namespace gaa::core
