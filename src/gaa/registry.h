// Condition-evaluation registry.
//
// Paper §5 advantage 2: "The GAA-API is structured to support the addition
// of modules for evaluation of new conditions.  Web masters can write their
// own routines to evaluate conditions or execute actions and register them
// with the GAA-API ... loaded dynamically so that one does not need to
// recompile the whole Apache package."
//
// Routines are registered under (condition_type, def_auth); "*" acts as a
// def_auth wildcard.  Lookup prefers the exact authority, then the wildcard.
// A condition whose type/authority has no registered routine is left
// *unevaluated*, which yields GAA_MAYBE per the paper's status rules.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "eacl/ast.h"
#include "gaa/context.h"
#include "gaa/services.h"
#include "util/status.h"
#include "util/tristate.h"

namespace gaa::core {

/// Result of evaluating one condition.
struct EvalOutcome {
  util::Tristate status = util::Tristate::kMaybe;
  bool evaluated = false;  ///< false == "left unevaluated" (drives MAYBE)
  std::string detail;      ///< human-readable trace fragment

  static EvalOutcome Yes(std::string detail = {}) {
    return {util::Tristate::kYes, true, std::move(detail)};
  }
  static EvalOutcome No(std::string detail = {}) {
    return {util::Tristate::kNo, true, std::move(detail)};
  }
  /// Evaluated but undetermined (e.g. depends on data not yet present).
  static EvalOutcome Maybe(std::string detail = {}) {
    return {util::Tristate::kMaybe, true, std::move(detail)};
  }
  /// Deliberately not evaluated (e.g. pre_cond_redirect, whose value the
  /// application interprets; or identity checks with no credentials yet).
  static EvalOutcome Unevaluated(std::string detail = {}) {
    return {util::Tristate::kMaybe, false, std::move(detail)};
  }
};

/// A condition-evaluation routine.
using CondRoutine = std::function<EvalOutcome(
    const eacl::Condition&, const RequestContext&, EvalServices&)>;

class ConditionRegistry {
 public:
  /// Register a routine for (type, def_auth).  def_auth may be "*".
  /// Re-registration replaces (supports dynamic reload).
  void Register(std::string type, std::string def_auth, CondRoutine routine);

  /// Remove a registration; returns true if something was removed.
  bool Unregister(const std::string& type, const std::string& def_auth);

  /// Lookup with authority fallback: (type, auth) then (type, "*").
  const CondRoutine* Find(std::string_view type,
                          std::string_view def_auth) const;

  std::size_t size() const { return routines_.size(); }

 private:
  std::map<std::pair<std::string, std::string>, CondRoutine> routines_;
};

/// Named catalog of routine factories.  Configuration files select routines
/// by name ("builtin:glob_signature"); this is our stand-in for the paper's
/// dynamically-loaded shared objects — factories are looked up at
/// initialization time, so new routines can be added without touching the
/// GAA core or the server.
class RoutineCatalog {
 public:
  using Factory = std::function<CondRoutine(
      const std::map<std::string, std::string>& params)>;

  void Add(std::string name, Factory factory);
  util::Result<CondRoutine> Make(
      const std::string& name,
      const std::map<std::string, std::string>& params) const;
  bool Contains(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace gaa::core
