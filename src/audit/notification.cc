#include "audit/notification.h"

namespace gaa::audit {

bool SimulatedSmtpNotifier::Notify(const std::string& recipient,
                                   const std::string& subject,
                                   const std::string& body) {
  if (failing_.load()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++failed_;
    return false;
  }
  // The blocking SMTP hand-off: this is the latency the paper measured in
  // its "with notification" rows.
  if (clock_ != nullptr && delivery_latency_us_ > 0) {
    clock_->Sleep(delivery_latency_us_);
  }
  Notification n;
  n.time_us = clock_ != nullptr ? clock_->Now() : 0;
  n.recipient = recipient;
  n.subject = subject;
  n.body = body;
  std::lock_guard<std::mutex> lock(mu_);
  sent_.push_back(std::move(n));
  return true;
}

std::vector<Notification> SimulatedSmtpNotifier::Sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sent_;
}

std::size_t SimulatedSmtpNotifier::sent_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sent_.size();
}

std::size_t SimulatedSmtpNotifier::failed_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failed_;
}

void SimulatedSmtpNotifier::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  sent_.clear();
  failed_ = 0;
}

QueuedNotifier::QueuedNotifier(util::Clock* clock,
                               util::DurationUs delivery_latency_us)
    : clock_(clock),
      delivery_latency_us_(delivery_latency_us),
      worker_([this] { WorkerLoop(); }) {}

QueuedNotifier::~QueuedNotifier() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

bool QueuedNotifier::Notify(const std::string& recipient,
                            const std::string& subject,
                            const std::string& body) {
  Notification n;
  n.time_us = clock_ != nullptr ? clock_->Now() : 0;
  n.recipient = recipient;
  n.subject = subject;
  n.body = body;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return false;
    queue_.push_back(std::move(n));
  }
  cv_.notify_one();
  return true;
}

void QueuedNotifier::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [this] { return queue_.empty(); });
}

std::size_t QueuedNotifier::delivered_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delivered_;
}

void QueuedNotifier::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    lock.unlock();
    // Simulated delivery latency outside the lock; producers keep moving.
    if (clock_ != nullptr && delivery_latency_us_ > 0) {
      clock_->Sleep(delivery_latency_us_);
    }
    lock.lock();
    queue_.pop_front();
    ++delivered_;
    if (queue_.empty()) drained_cv_.notify_all();
  }
}

}  // namespace gaa::audit
