// The structured audit stream: JSONL records, size-rotated files, and the
// asynchronous writer that keeps audit disk I/O off request threads.
//
// PR 3 replaces the old synchronous file mirror (an ofstream append while
// holding AuditLog::mu_) with this pipeline:
//
//   request thread ──AuditLog::Record──► bounded MPSC queue ──► drain thread
//                      (never blocks)                            │ format JSONL
//                                                                ▼
//                                                        AuditStreamSink
//                                                  (rotating file + fsync policy)
//
// Backpressure is explicit: when the queue is full the record is *dropped*
// and counted (`audit_stream_dropped_total`), never allowed to stall a
// request.  Each JSONL line carries timestamp, category, message, trace id,
// client, decision and the deciding policy entry, and parses back via
// ParseAuditJsonl for replay-after-restart.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "audit/audit_log.h"
#include "util/status.h"

namespace gaa::telemetry {
class Counter;
class Gauge;
class MetricRegistry;
}  // namespace gaa::telemetry

namespace gaa::audit {

/// Append `text` to `out` escaped for embedding inside a JSON string
/// literal (quotes, backslashes, control characters).  Shared by the JSONL
/// formatter below and by other JSON renderers that splice untrusted bytes
/// (e.g. metric names read from another process's shared memory).
void AppendJsonEscaped(std::string_view text, std::string* out);

/// Render one record as a single JSONL line (no trailing newline).  Empty
/// string fields and negative entry indexes are omitted.
std::string FormatAuditJsonl(const AuditRecord& record);

/// Append-style variant for hot loops: reuses `out`'s capacity instead of
/// allocating a fresh string per record.
void AppendAuditJsonl(const AuditRecord& record, std::string* out);

/// Parse JSONL text (one object per line) back into records — the
/// replay-after-restart path.  Unknown keys are ignored; a malformed line
/// fails the whole parse with its line number.
util::Result<std::vector<AuditRecord>> ParseAuditJsonl(std::string_view text);

/// Where the drain thread sends finished JSONL lines.  Implementations may
/// block (that is the point of the queue in front of them).
class AuditStreamSink {
 public:
  virtual ~AuditStreamSink() = default;
  /// Append one line (newline included by the caller).  False = error.
  virtual bool Write(const std::string& line) = 0;
  /// Force durability (fsync or equivalent).  Default no-op.
  virtual void Sync() {}
};

/// Size-rotated append-only file sink.  When the current file would exceed
/// `rotate_bytes` the sink shifts path.N-1 → path.N (oldest dropped) and
/// reopens `path` fresh, so the newest records are always in `path`.
class RotatingFileSink final : public AuditStreamSink {
 public:
  struct Options {
    std::size_t rotate_bytes = 8 * 1024 * 1024;  ///< 0 = never rotate
    int max_rotated_files = 3;                   ///< path.1 .. path.N kept
    bool fsync_each_write = false;               ///< durability over throughput
  };

  explicit RotatingFileSink(std::string path);
  RotatingFileSink(std::string path, Options options);
  ~RotatingFileSink() override;

  bool Write(const std::string& line) override;
  void Sync() override;

  std::size_t rotations() const { return rotations_; }

 private:
  bool EnsureOpen();
  void Rotate();

  std::string path_;
  Options options_;
  std::FILE* file_ = nullptr;
  std::size_t current_bytes_ = 0;
  std::size_t rotations_ = 0;
};

/// Bounded MPSC queue drained by a dedicated thread.  Offer() is the only
/// producer entry point and never touches the sink: it either enqueues
/// (holding the queue mutex for a push) or drops and counts.  The drain
/// thread pops batches under the lock and formats + writes with the lock
/// released, so a stalled sink back-pressures into drops, not into request
/// latency.
class AsyncAuditWriter {
 public:
  struct Options {
    std::size_t queue_capacity = 4096;
    /// Sync() the sink every N written records (0 = only at Flush/Stop —
    /// the "leave it to the page cache" policy).
    std::size_t sync_every = 0;
  };

  explicit AsyncAuditWriter(std::unique_ptr<AuditStreamSink> sink);
  AsyncAuditWriter(std::unique_ptr<AuditStreamSink> sink, Options options,
                   telemetry::MetricRegistry* registry = nullptr);
  ~AsyncAuditWriter();

  AsyncAuditWriter(const AsyncAuditWriter&) = delete;
  AsyncAuditWriter& operator=(const AsyncAuditWriter&) = delete;

  /// Non-blocking hand-off.  Returns false when the queue was full and the
  /// record was dropped (counted in dropped() / the registry).
  bool Offer(AuditRecord record);

  /// Block until everything offered so far is written and synced (tests,
  /// shutdown).  Unlike Offer this *does* wait on the sink.
  void Flush();

  /// Stop the drain thread after flushing the queue.  Idempotent; the
  /// destructor calls it.
  void Stop();

  std::uint64_t written() const;
  std::uint64_t dropped() const;
  std::uint64_t write_errors() const;
  std::size_t queue_depth() const;

 private:
  void DrainLoop();

  std::unique_ptr<AuditStreamSink> sink_;
  Options options_;

  telemetry::Counter* written_counter_ = nullptr;
  telemetry::Counter* dropped_counter_ = nullptr;
  telemetry::Counter* error_counter_ = nullptr;
  telemetry::Gauge* depth_gauge_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cv_;          ///< producer → drain thread
  std::condition_variable drained_cv_;  ///< drain thread → Flush()
  /// A vector, not a deque: the drain thread swaps the whole batch out and
  /// hands its (cleared) buffer back next round, so after warm-up neither
  /// side allocates queue storage on the hot path.
  std::vector<AuditRecord> queue_;
  std::size_t in_flight_ = 0;  ///< records popped but not yet written
  std::uint64_t next_seq_ = 0;  ///< last AuditRecord::seq stamped at Offer()
  std::uint64_t written_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t write_errors_ = 0;
  bool stop_ = false;
  /// True while the drain thread is parked in an untimed wait.  While the
  /// stream is busy the drain thread self-paces on a short timed wait and
  /// producers skip cv_ notification entirely — a futex wake per record
  /// would put a syscall on the request hot path.
  bool drain_parked_ = false;
  std::thread drain_;
};

}  // namespace gaa::audit
