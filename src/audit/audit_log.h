// Append-only audit log (gaa::core::AuditSink implementation).
//
// Records are timestamped, categorized and kept in memory (bounded ring);
// an optional file mirror appends each record.  The §7.2 response actions
// (rr_cond_audit, rr_cond_update_log) and the post-execution logging all
// land here.
#pragma once

#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "gaa/services.h"
#include "util/clock.h"

namespace gaa::telemetry {
class Counter;
class MetricRegistry;
}  // namespace gaa::telemetry

namespace gaa::audit {

struct AuditRecord {
  util::TimePoint time_us = 0;
  std::string category;
  std::string message;
  std::uint64_t trace_id = 0;  ///< joins the record to its request trace
};

class AuditLog final : public core::AuditSink {
 public:
  explicit AuditLog(util::Clock* clock, std::size_t max_records = 65536)
      : clock_(clock), max_records_(max_records) {}

  void Record(const std::string& category, const std::string& message) override;
  void Record(const std::string& category, const std::string& message,
              std::uint64_t trace_id) override;

  /// Count every write as `audit_records_total`.  Null detaches.
  void AttachMetrics(telemetry::MetricRegistry* registry);

  /// Mirror every record to a file ("" disables).  Failures to open are
  /// remembered and surfaced through file_errors().
  void SetFileMirror(const std::string& path);

  std::vector<AuditRecord> Snapshot() const;
  std::vector<AuditRecord> ByCategory(const std::string& category) const;
  std::size_t size() const;
  std::size_t CountCategory(const std::string& category) const;
  void Clear();
  std::size_t file_errors() const;

 private:
  util::Clock* clock_;
  std::size_t max_records_;
  telemetry::Counter* records_counter_ = nullptr;
  mutable std::mutex mu_;
  std::deque<AuditRecord> records_;
  std::string mirror_path_;
  std::size_t file_errors_ = 0;
};

}  // namespace gaa::audit
