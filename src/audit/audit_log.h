// Append-only audit log (gaa::core::AuditSink implementation).
//
// Records are timestamped, categorized and kept in memory (bounded ring);
// an optional mirror streams each record as structured JSONL through an
// asynchronous writer (audit_stream.h) — request threads never touch the
// disk.  The §7.2 response actions (rr_cond_audit, rr_cond_update_log) and
// the post-execution logging all land here.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "gaa/services.h"
#include "util/clock.h"

namespace gaa::telemetry {
class Counter;
class MetricRegistry;
}  // namespace gaa::telemetry

namespace gaa::audit {

class AsyncAuditWriter;
class AuditStreamSink;

struct AuditRecord {
  util::TimePoint time_us = 0;
  std::string category;
  std::string message;
  std::uint64_t trace_id = 0;  ///< joins the record to its request trace
  /// Per-writer sequence number (1, 2, 3, ...) stamped by AsyncAuditWriter
  /// at Offer() time; 0 = unstamped (records that never passed through a
  /// stream writer).  A gap in a stream file's sequence is a lost record —
  /// the cluster kill test's zero-loss check (DESIGN.md §15).
  std::uint64_t seq = 0;
  // Decision attribution (empty / -1 when the record is not an access
  // decision): which client asked, what the answer was, and the exact
  // policy entry + condition that produced it.
  std::string client;
  std::string tenant;    ///< tenant namespace ("" = default)
  std::string decision;  ///< "yes" / "no" / "maybe"
  std::string policy;
  int entry = -1;
  std::string condition;
};

class AuditLog final : public core::AuditSink {
 public:
  explicit AuditLog(util::Clock* clock, std::size_t max_records = 65536);
  ~AuditLog() override;

  void Record(const std::string& category, const std::string& message) override;
  void Record(const std::string& category, const std::string& message,
              std::uint64_t trace_id) override;
  void Record(const core::AuditEvent& event) override;

  /// Count every write as `audit_records_total`.  Null detaches.  Also
  /// adopted by any stream attached afterwards (written/dropped/error
  /// counters).
  void AttachMetrics(telemetry::MetricRegistry* registry);

  /// Mirror every record to a size-rotated JSONL file ("" disables).
  /// Shorthand for AttachStream with a RotatingFileSink and default writer
  /// options; see audit_stream.h for the knobs.
  void SetFileMirror(const std::string& path);

  struct StreamOptions {
    std::size_t queue_capacity = 4096;
    std::size_t rotate_bytes = 8 * 1024 * 1024;
    int max_rotated_files = 3;
    bool fsync_each_write = false;
  };

  /// Mirror every record through `sink` behind an AsyncAuditWriter (null
  /// detaches).  Takes ownership of the sink.
  void AttachStream(std::unique_ptr<AuditStreamSink> sink);
  void AttachStream(std::unique_ptr<AuditStreamSink> sink,
                    const StreamOptions& options);

  /// Rotated-file convenience over AttachStream.
  void AttachFileStream(const std::string& path);
  void AttachFileStream(const std::string& path,
                        const StreamOptions& options);

  /// Block until every record handed to the stream so far is on disk
  /// (tests, shutdown).  No-op without a stream.
  void Flush();

  std::vector<AuditRecord> Snapshot() const;
  std::vector<AuditRecord> ByCategory(const std::string& category) const;
  std::size_t size() const;
  std::size_t CountCategory(const std::string& category) const;
  void Clear();

  /// Stream-side failures: sink write errors plus records dropped because
  /// the queue was full.  (Historic name; kept for existing callers.)
  std::size_t file_errors() const;
  std::uint64_t stream_written() const;
  std::uint64_t stream_dropped() const;

 private:
  void Append(AuditRecord record);

  util::Clock* clock_;
  std::size_t max_records_;
  telemetry::Counter* records_counter_ = nullptr;
  telemetry::MetricRegistry* registry_ = nullptr;
  mutable std::mutex mu_;
  std::deque<AuditRecord> records_;
  std::unique_ptr<AsyncAuditWriter> writer_;
};

}  // namespace gaa::audit
