#include "audit/audit_log.h"

#include <fstream>

#include "telemetry/metrics.h"

namespace gaa::audit {

void AuditLog::Record(const std::string& category, const std::string& message) {
  Record(category, message, 0);
}

void AuditLog::Record(const std::string& category, const std::string& message,
                      std::uint64_t trace_id) {
  if (records_counter_ != nullptr) records_counter_->Inc();
  AuditRecord record;
  record.time_us = clock_ != nullptr ? clock_->Now() : 0;
  record.category = category;
  record.message = message;
  record.trace_id = trace_id;

  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(record);
  while (records_.size() > max_records_) records_.pop_front();

  if (!mirror_path_.empty()) {
    std::ofstream out(mirror_path_, std::ios::app);
    if (out) {
      out << util::FormatTimestamp(record.time_us) << " [" << category << "] "
          << message;
      if (trace_id != 0) out << " trace=" << trace_id;
      out << "\n";
    } else {
      ++file_errors_;
    }
  }
}

void AuditLog::AttachMetrics(telemetry::MetricRegistry* registry) {
  records_counter_ =
      registry != nullptr ? registry->GetCounter("audit_records_total")
                          : nullptr;
}

void AuditLog::SetFileMirror(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  mirror_path_ = path;
}

std::vector<AuditRecord> AuditLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<AuditRecord>(records_.begin(), records_.end());
}

std::vector<AuditRecord> AuditLog::ByCategory(const std::string& category) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AuditRecord> out;
  for (const auto& r : records_) {
    if (r.category == category) out.push_back(r);
  }
  return out;
}

std::size_t AuditLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::size_t AuditLog::CountCategory(const std::string& category) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.category == category) ++n;
  }
  return n;
}

void AuditLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
}

std::size_t AuditLog::file_errors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return file_errors_;
}

}  // namespace gaa::audit
