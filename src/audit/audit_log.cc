#include "audit/audit_log.h"

#include <utility>

#include "audit/audit_stream.h"
#include "telemetry/metrics.h"

namespace gaa::audit {

AuditLog::AuditLog(util::Clock* clock, std::size_t max_records)
    : clock_(clock), max_records_(max_records) {}

AuditLog::~AuditLog() = default;

void AuditLog::Record(const std::string& category, const std::string& message) {
  Record(category, message, 0);
}

void AuditLog::Record(const std::string& category, const std::string& message,
                      std::uint64_t trace_id) {
  AuditRecord record;
  record.category = category;
  record.message = message;
  record.trace_id = trace_id;
  Append(std::move(record));
}

void AuditLog::Record(const core::AuditEvent& event) {
  AuditRecord record;
  record.category = event.category;
  record.message = event.message;
  record.trace_id = event.trace_id;
  record.client = event.client;
  record.tenant = event.tenant;
  record.decision = event.decision;
  record.policy = event.policy;
  record.entry = event.entry;
  record.condition = event.condition;
  Append(std::move(record));
}

void AuditLog::Append(AuditRecord record) {
  if (records_counter_ != nullptr) records_counter_->Inc();
  record.time_us = clock_ != nullptr ? clock_->Now() : 0;

  std::lock_guard<std::mutex> lock(mu_);
  if (writer_ != nullptr) writer_->Offer(record);  // non-blocking, may drop
  records_.push_back(std::move(record));
  while (records_.size() > max_records_) records_.pop_front();
}

void AuditLog::AttachMetrics(telemetry::MetricRegistry* registry) {
  registry_ = registry;
  records_counter_ =
      registry != nullptr ? registry->GetCounter("audit_records_total")
                          : nullptr;
}

void AuditLog::SetFileMirror(const std::string& path) {
  if (path.empty()) {
    AttachStream(nullptr);
  } else {
    AttachFileStream(path);
  }
}

void AuditLog::AttachStream(std::unique_ptr<AuditStreamSink> sink) {
  AttachStream(std::move(sink), StreamOptions());
}

void AuditLog::AttachStream(std::unique_ptr<AuditStreamSink> sink,
                            const StreamOptions& options) {
  std::unique_ptr<AsyncAuditWriter> writer;
  if (sink != nullptr) {
    AsyncAuditWriter::Options wopts;
    wopts.queue_capacity = options.queue_capacity;
    writer = std::make_unique<AsyncAuditWriter>(std::move(sink), wopts,
                                                registry_);
  }
  std::unique_ptr<AsyncAuditWriter> old;
  {
    std::lock_guard<std::mutex> lock(mu_);
    old = std::move(writer_);
    writer_ = std::move(writer);
  }
  if (old != nullptr) old->Stop();  // join the old drain thread outside mu_
}

void AuditLog::AttachFileStream(const std::string& path) {
  AttachFileStream(path, StreamOptions());
}

void AuditLog::AttachFileStream(const std::string& path,
                                const StreamOptions& options) {
  RotatingFileSink::Options sopts;
  sopts.rotate_bytes = options.rotate_bytes;
  sopts.max_rotated_files = options.max_rotated_files;
  sopts.fsync_each_write = options.fsync_each_write;
  AttachStream(std::make_unique<RotatingFileSink>(path, sopts), options);
}

void AuditLog::Flush() {
  // Writer attach/detach is rare (startup/shutdown); holding mu_ across the
  // wait would block Record(), so grab the pointer and rely on the caller
  // not detaching concurrently with Flush (same contract as AttachStream).
  AsyncAuditWriter* writer = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    writer = writer_.get();
  }
  if (writer != nullptr) writer->Flush();
}

std::vector<AuditRecord> AuditLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<AuditRecord>(records_.begin(), records_.end());
}

std::vector<AuditRecord> AuditLog::ByCategory(const std::string& category) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AuditRecord> out;
  for (const auto& r : records_) {
    if (r.category == category) out.push_back(r);
  }
  return out;
}

std::size_t AuditLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::size_t AuditLog::CountCategory(const std::string& category) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.category == category) ++n;
  }
  return n;
}

void AuditLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
}

std::size_t AuditLog::file_errors() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (writer_ == nullptr) return 0;
  return static_cast<std::size_t>(writer_->write_errors() +
                                  writer_->dropped());
}

std::uint64_t AuditLog::stream_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return writer_ != nullptr ? writer_->written() : 0;
}

std::uint64_t AuditLog::stream_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return writer_ != nullptr ? writer_->dropped() : 0;
}

}  // namespace gaa::audit
