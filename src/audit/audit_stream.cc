#include "audit/audit_stream.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "telemetry/metrics.h"

namespace gaa::audit {

void AppendJsonEscaped(std::string_view text, std::string* out) {
  for (char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

namespace {

void AppendStringField(const char* key, std::string_view value, bool* first,
                       std::string* out) {
  if (!*first) out->push_back(',');
  *first = false;
  out->push_back('"');
  out->append(key);
  out->append("\":\"");
  AppendJsonEscaped(value, out);
  out->push_back('"');
}

void AppendIntField(const char* key, long long value, bool* first,
                    std::string* out) {
  if (!*first) out->push_back(',');
  *first = false;
  out->push_back('"');
  out->append(key);
  out->append("\":");
  out->append(std::to_string(value));
}

}  // namespace

void AppendAuditJsonl(const AuditRecord& record, std::string* out) {
  out->push_back('{');
  bool first = true;
  AppendIntField("ts_us", static_cast<long long>(record.time_us), &first, out);
  if (record.seq != 0) {
    AppendIntField("seq", static_cast<long long>(record.seq), &first, out);
  }
  AppendStringField("category", record.category, &first, out);
  AppendStringField("message", record.message, &first, out);
  if (record.trace_id != 0) {
    AppendIntField("trace_id", static_cast<long long>(record.trace_id), &first,
                   out);
  }
  if (!record.client.empty()) {
    AppendStringField("client", record.client, &first, out);
  }
  if (!record.tenant.empty()) {
    AppendStringField("tenant", record.tenant, &first, out);
  }
  if (!record.decision.empty()) {
    AppendStringField("decision", record.decision, &first, out);
  }
  if (!record.policy.empty()) {
    AppendStringField("policy", record.policy, &first, out);
  }
  if (record.entry >= 0) AppendIntField("entry", record.entry, &first, out);
  if (!record.condition.empty()) {
    AppendStringField("condition", record.condition, &first, out);
  }
  out->push_back('}');
}

std::string FormatAuditJsonl(const AuditRecord& record) {
  std::string out;
  out.reserve(96 + record.category.size() + record.message.size());
  AppendAuditJsonl(record, &out);
  return out;
}

namespace {

// Minimal parser for the exact flat-object shape FormatAuditJsonl emits:
// string and integer values only, no nesting.  `pos` advances past the
// parsed element; any deviation returns false.
struct LineParser {
  std::string_view line;
  std::size_t pos = 0;

  bool SkipWs() {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
    return pos < line.size();
  }

  bool Expect(char c) {
    if (!SkipWs() || line[pos] != c) return false;
    ++pos;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Expect('"')) return false;
    out->clear();
    while (pos < line.size()) {
      char c = line[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos >= line.size()) return false;
      char esc = line[pos++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos + 4 > line.size()) return false;
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            char h = line[pos++];
            value <<= 4;
            if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') value |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') value |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // We only emit \u00xx control escapes; anything wider is kept as
          // a replacement byte rather than rejected.
          out->push_back(value < 0x80 ? static_cast<char>(value) : '?');
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool ParseInt(long long* out) {
    if (!SkipWs()) return false;
    bool neg = false;
    if (line[pos] == '-') {
      neg = true;
      ++pos;
    }
    if (pos >= line.size() || line[pos] < '0' || line[pos] > '9') return false;
    long long value = 0;
    while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
      value = value * 10 + (line[pos] - '0');
      ++pos;
    }
    *out = neg ? -value : value;
    return true;
  }
};

}  // namespace

util::Result<std::vector<AuditRecord>> ParseAuditJsonl(std::string_view text) {
  std::vector<AuditRecord> records;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    std::string_view line = text.substr(
        start, end == std::string_view::npos ? std::string_view::npos
                                             : end - start);
    start = end == std::string_view::npos ? text.size() + 1 : end + 1;
    ++line_no;
    if (line.empty()) continue;

    LineParser p{line};
    auto fail = [&]() {
      return util::Error(util::ErrorCode::kParseError,
                         "audit jsonl: malformed line " +
                             std::to_string(line_no));
    };
    if (!p.Expect('{')) return fail();
    AuditRecord record;
    if (!p.SkipWs()) return fail();
    if (p.line[p.pos] == '}') {
      ++p.pos;
    } else {
      while (true) {
        std::string key;
        if (!p.ParseString(&key) || !p.Expect(':')) return fail();
        if (key == "ts_us" || key == "seq" || key == "trace_id" ||
            key == "entry") {
          long long value = 0;
          if (!p.ParseInt(&value)) return fail();
          if (key == "ts_us") record.time_us = value;
          else if (key == "seq") record.seq = static_cast<std::uint64_t>(value);
          else if (key == "trace_id") record.trace_id = static_cast<std::uint64_t>(value);
          else record.entry = static_cast<int>(value);
        } else {
          std::string value;
          if (!p.ParseString(&value)) return fail();
          if (key == "category") record.category = std::move(value);
          else if (key == "message") record.message = std::move(value);
          else if (key == "client") record.client = std::move(value);
          else if (key == "tenant") record.tenant = std::move(value);
          else if (key == "decision") record.decision = std::move(value);
          else if (key == "policy") record.policy = std::move(value);
          else if (key == "condition") record.condition = std::move(value);
          // unknown keys: ignored for forward compatibility
        }
        if (p.Expect(',')) continue;
        if (p.Expect('}')) break;
        return fail();
      }
    }
    p.SkipWs();
    if (p.pos != p.line.size()) return fail();
    records.push_back(std::move(record));
  }
  return records;
}

// --- RotatingFileSink -------------------------------------------------------

RotatingFileSink::RotatingFileSink(std::string path)
    : RotatingFileSink(std::move(path), Options()) {}

RotatingFileSink::RotatingFileSink(std::string path, Options options)
    : path_(std::move(path)), options_(options) {}

RotatingFileSink::~RotatingFileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

bool RotatingFileSink::EnsureOpen() {
  if (file_ != nullptr) return true;
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) return false;
  struct stat st;
  current_bytes_ =
      ::fstat(::fileno(file_), &st) == 0 ? static_cast<std::size_t>(st.st_size)
                                         : 0;
  return true;
}

void RotatingFileSink::Rotate() {
  std::fclose(file_);
  file_ = nullptr;
  // Shift path.N-1 → path.N, oldest falls off the end; then path → path.1.
  for (int i = options_.max_rotated_files; i >= 1; --i) {
    std::string from =
        i == 1 ? path_ : path_ + "." + std::to_string(i - 1);
    std::string to = path_ + "." + std::to_string(i);
    std::rename(from.c_str(), to.c_str());  // ENOENT for missing slots is fine
  }
  if (options_.max_rotated_files <= 0) std::remove(path_.c_str());
  ++rotations_;
  current_bytes_ = 0;
}

bool RotatingFileSink::Write(const std::string& line) {
  if (!EnsureOpen()) return false;
  if (options_.rotate_bytes > 0 && current_bytes_ > 0 &&
      current_bytes_ + line.size() > options_.rotate_bytes) {
    Rotate();
    if (!EnsureOpen()) return false;
  }
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    return false;
  }
  current_bytes_ += line.size();
  if (options_.fsync_each_write) Sync();
  return true;
}

void RotatingFileSink::Sync() {
  if (file_ == nullptr) return;
  std::fflush(file_);
  ::fsync(::fileno(file_));
}

// --- AsyncAuditWriter -------------------------------------------------------

AsyncAuditWriter::AsyncAuditWriter(std::unique_ptr<AuditStreamSink> sink)
    : AsyncAuditWriter(std::move(sink), Options(), nullptr) {}

AsyncAuditWriter::AsyncAuditWriter(std::unique_ptr<AuditStreamSink> sink,
                                   Options options,
                                   telemetry::MetricRegistry* registry)
    : sink_(std::move(sink)), options_(options) {
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (registry != nullptr) {
    written_counter_ = registry->GetCounter("audit_stream_written_total");
    dropped_counter_ = registry->GetCounter("audit_stream_dropped_total");
    error_counter_ = registry->GetCounter("audit_stream_errors_total");
    depth_gauge_ = registry->GetGauge("audit_stream_queue_depth");
  }
  drain_ = std::thread([this] { DrainLoop(); });
}

AsyncAuditWriter::~AsyncAuditWriter() { Stop(); }

bool AsyncAuditWriter::Offer(AuditRecord record) {
  bool wake_drain = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ || queue_.size() >= options_.queue_capacity) {
      ++dropped_;
      if (dropped_counter_ != nullptr) dropped_counter_->Inc();
      return false;
    }
    // Stamp the per-writer sequence under the queue lock so the numbers in
    // the stream file are contiguous in write order: any interior gap means
    // a record was lost, not reordered.
    record.seq = ++next_seq_;
    queue_.push_back(std::move(record));
    // Only a parked drain thread needs a wake-up; a busy one re-polls on
    // its own within a millisecond.  Skipping the notify keeps the futex
    // syscall off the request hot path (the queue-depth gauge is likewise
    // maintained by the drain thread only).
    wake_drain = drain_parked_;
  }
  if (wake_drain) cv_.notify_one();
  return true;
}

void AsyncAuditWriter::Flush() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    drained_cv_.wait(lock,
                     [this] { return queue_.empty() && in_flight_ == 0; });
  }
  if (sink_ != nullptr) sink_->Sync();
}

void AsyncAuditWriter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      if (drain_.joinable()) drain_.join();
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  if (drain_.joinable()) drain_.join();
  if (sink_ != nullptr) sink_->Sync();
}

void AsyncAuditWriter::DrainLoop() {
  std::size_t since_sync = 0;
  std::string line;
  std::vector<AuditRecord> batch;  // buffer ping-pongs with queue_
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (queue_.empty() && !stop_) {
      // Busy phase: self-paced 1 ms poll — producers enqueue without
      // notifying.  Only after an idle poll does the thread park in an
      // untimed wait (and announce it, so Offer knows to wake it).
      if (!cv_.wait_for(lock, std::chrono::milliseconds(1),
                        [this] { return stop_ || !queue_.empty(); })) {
        drain_parked_ = true;
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        drain_parked_ = false;
      }
    }
    if (queue_.empty() && stop_) break;

    // Take the batch; format + write with the lock released so producers
    // only ever contend with a vector swap, never with the sink.  `batch`
    // was cleared (capacity kept) after the previous round, so the swap
    // hands producers a warm buffer back.
    batch.swap(queue_);
    in_flight_ = batch.size();
    if (depth_gauge_ != nullptr) depth_gauge_->Set(0);
    lock.unlock();

    std::uint64_t wrote = 0;
    std::uint64_t errors = 0;
    for (const AuditRecord& record : batch) {
      line.clear();
      AppendAuditJsonl(record, &line);
      line.push_back('\n');
      if (sink_ != nullptr && sink_->Write(line)) {
        ++wrote;
        if (options_.sync_every > 0 && ++since_sync >= options_.sync_every) {
          sink_->Sync();
          since_sync = 0;
        }
      } else {
        ++errors;
      }
    }
    batch.clear();
    if (written_counter_ != nullptr && wrote > 0) written_counter_->Inc(wrote);
    if (error_counter_ != nullptr && errors > 0) error_counter_->Inc(errors);

    lock.lock();
    if (depth_gauge_ != nullptr) {
      depth_gauge_->Set(static_cast<std::int64_t>(queue_.size()));
    }
    written_ += wrote;
    write_errors_ += errors;
    in_flight_ = 0;
    if (queue_.empty()) drained_cv_.notify_all();
  }
}

std::uint64_t AsyncAuditWriter::written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return written_;
}

std::uint64_t AsyncAuditWriter::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::uint64_t AsyncAuditWriter::write_errors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_errors_;
}

std::size_t AsyncAuditWriter::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace gaa::audit
