// Notification services (gaa::core::NotificationService implementations).
//
// The paper's measured configuration sends e-mail to the administrator from
// inside the request path, which is why §8 reports 5.9 ms → 53.3 ms once
// notification is enabled (the mail hand-off dominates).  We model that
// with SimulatedSmtpNotifier: a synchronous sink whose delivery latency is
// configurable (default tuned to the same order as the paper: tens of ms).
//
// QueuedNotifier shows the obvious engineering fix (hand off to a
// background thread) and is used by the ablation benchmarks to quantify how
// much of the 80 % overhead is an artifact of synchronous delivery.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gaa/services.h"
#include "util/clock.h"

namespace gaa::audit {

struct Notification {
  util::TimePoint time_us = 0;
  std::string recipient;
  std::string subject;
  std::string body;
};

/// Synchronous notifier: Notify() blocks for the configured latency
/// (simulating the SMTP hand-off) and stores the message.
class SimulatedSmtpNotifier final : public core::NotificationService {
 public:
  /// `delivery_latency_us` is the blocking cost per notification.  47 ms
  /// reproduces the paper's gap (53.3 ms with notification vs 5.9 ms
  /// without).  Pass 0 for latency-free delivery in unit tests.
  explicit SimulatedSmtpNotifier(util::Clock* clock,
                                 util::DurationUs delivery_latency_us = 47'000)
      : clock_(clock), delivery_latency_us_(delivery_latency_us) {}

  bool Notify(const std::string& recipient, const std::string& subject,
              const std::string& body) override;

  /// Make subsequent deliveries fail (failure-injection tests).
  void SetFailing(bool failing) { failing_.store(failing); }
  void SetLatency(util::DurationUs us) { delivery_latency_us_ = us; }
  util::DurationUs latency() const { return delivery_latency_us_; }

  std::vector<Notification> Sent() const;
  std::size_t sent_count() const;
  std::size_t failed_count() const;
  void Clear();

 private:
  util::Clock* clock_;
  util::DurationUs delivery_latency_us_;
  std::atomic<bool> failing_{false};
  mutable std::mutex mu_;
  std::vector<Notification> sent_;
  std::size_t failed_ = 0;
};

/// Asynchronous notifier: Notify() enqueues and returns immediately; a
/// worker thread performs the (simulated) delivery.
class QueuedNotifier final : public core::NotificationService {
 public:
  explicit QueuedNotifier(util::Clock* clock,
                          util::DurationUs delivery_latency_us = 47'000);
  ~QueuedNotifier() override;

  QueuedNotifier(const QueuedNotifier&) = delete;
  QueuedNotifier& operator=(const QueuedNotifier&) = delete;

  bool Notify(const std::string& recipient, const std::string& subject,
              const std::string& body) override;

  /// Block until the queue drains (tests / shutdown).
  void Flush();

  std::size_t delivered_count() const;

 private:
  void WorkerLoop();

  util::Clock* clock_;
  util::DurationUs delivery_latency_us_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable drained_cv_;
  std::deque<Notification> queue_;
  std::size_t delivered_ = 0;
  bool stop_ = false;
  std::thread worker_;
};

/// Null notifier that always fails — failure injection for rr_cond_notify.
class FailingNotifier final : public core::NotificationService {
 public:
  bool Notify(const std::string&, const std::string&,
              const std::string&) override {
    ++attempts_;
    return false;
  }
  std::size_t attempts() const { return attempts_; }

 private:
  std::atomic<std::size_t> attempts_{0};
};

}  // namespace gaa::audit
