#include "util/clock.h"

#include <gtest/gtest.h>

namespace gaa::util {
namespace {

TEST(SimulatedClock, AdvanceAndSet) {
  SimulatedClock clock(1000);
  EXPECT_EQ(clock.Now(), 1000);
  clock.Advance(500);
  EXPECT_EQ(clock.Now(), 1500);
  clock.SetTime(42);
  EXPECT_EQ(clock.Now(), 42);
}

TEST(SimulatedClock, SleepAdvances) {
  SimulatedClock clock(0);
  clock.Sleep(250);
  EXPECT_EQ(clock.Now(), 250);
}

TEST(SimulatedClock, SecondOfDay) {
  // 12:00:00 UTC == 43200 seconds into the day.
  SimulatedClock clock(1053345600LL * kMicrosPerSecond);
  EXPECT_EQ(clock.SecondOfDay(), 43200);
  clock.Advance(30 * kMicrosPerMinute);
  EXPECT_EQ(clock.SecondOfDay(), 43200 + 1800);
}

TEST(RealClock, MonotonicEnough) {
  auto& clock = RealClock::Instance();
  TimePoint a = clock.Now();
  TimePoint b = clock.Now();
  EXPECT_GE(b, a);
  // Plausible current era (after 2020, before 2100).
  EXPECT_GT(a, 1577836800LL * kMicrosPerSecond);
  EXPECT_LT(a, 4102444800LL * kMicrosPerSecond);
}

TEST(Stopwatch, MeasuresElapsed) {
  Stopwatch sw;
  RealClock::Instance().Sleep(2000);  // 2 ms
  EXPECT_GE(sw.ElapsedUs(), 1500);
  sw.Restart();
  EXPECT_LT(sw.ElapsedUs(), 1'000'000);
}

TEST(FormatTimestamp, KnownInstant) {
  // 2003-05-19 12:00:00 UTC.
  EXPECT_EQ(FormatTimestamp(1053345600LL * kMicrosPerSecond),
            "2003-05-19 12:00:00.000");
  EXPECT_EQ(FormatTimestamp(1053345600LL * kMicrosPerSecond + 123'000),
            "2003-05-19 12:00:00.123");
}

TEST(FormatTimestamp, Epoch) {
  EXPECT_EQ(FormatTimestamp(0), "1970-01-01 00:00:00.000");
}

}  // namespace
}  // namespace gaa::util
