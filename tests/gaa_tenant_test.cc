// Tenant namespaces over the content-addressed IR store (DESIGN.md §14):
// structural hash canonicality, cross-tenant compiled-policy dedup, layered
// composition, memo/threat isolation between namespaces, Host-header tenant
// routing, and the differential guarantee that a tenant-scoped deployment is
// byte-identical to an equivalently configured single-namespace one.
#include <gtest/gtest.h>

#include <string>

#include "conditions/builtin.h"
#include "eacl/ir_store.h"
#include "gaa/api.h"
#include "gaa/system_state.h"
#include "http/doc_tree.h"
#include "http/request.h"
#include "integration/gaa_web_server.h"
#include "testing/helpers.h"

namespace gaa::core {
namespace {

using gaa::testing::MakeContext;
using gaa::testing::TestRig;
using util::Tristate;

// --- structural content hashes ---------------------------------------------

eacl::Condition Cond(std::string type, std::string auth, std::string value) {
  eacl::Condition c;
  c.type = std::move(type);
  c.def_auth = std::move(auth);
  c.value = std::move(value);
  return c;
}

eacl::Eacl GrantPolicy() {
  eacl::Eacl policy;
  policy.mode = eacl::CompositionMode::kNarrow;
  eacl::Entry entry;
  entry.right = {true, "apache", "*"};
  entry.pre.push_back(Cond("pre_cond_system_threat_level", "local", "=low"));
  policy.entries.push_back(std::move(entry));
  return policy;
}

TEST(IrHash, EqualStructureHashesEqual) {
  EXPECT_EQ(eacl::HashPolicy(GrantPolicy()), eacl::HashPolicy(GrantPolicy()));
  EXPECT_EQ(eacl::HashEntry(GrantPolicy().entries[0]),
            eacl::HashEntry(GrantPolicy().entries[0]));
  EXPECT_EQ(eacl::HashCondition(Cond("a", "b", "c")),
            eacl::HashCondition(Cond("a", "b", "c")));
}

TEST(IrHash, AnyFieldTweakChangesTheHash) {
  const auto base = eacl::HashPolicy(GrantPolicy());

  auto mode = GrantPolicy();
  mode.mode = eacl::CompositionMode::kExpand;
  EXPECT_NE(eacl::HashPolicy(mode), base);

  auto unset_mode = GrantPolicy();
  unset_mode.mode.reset();
  EXPECT_NE(eacl::HashPolicy(unset_mode), base);

  auto value = GrantPolicy();
  value.entries[0].pre[0].value = "=high";
  EXPECT_NE(eacl::HashPolicy(value), base);

  auto sign = GrantPolicy();
  sign.entries[0].right.positive = false;
  sign.entries[0].mid.clear();
  sign.entries[0].post.clear();
  EXPECT_NE(eacl::HashPolicy(sign), base);
}

TEST(IrHash, FieldBoundariesAreUnambiguous) {
  // Length-prefixed serialization: shifting a byte across a field boundary
  // must not collide ("ab"/"c" vs "a"/"bc").
  EXPECT_NE(eacl::HashCondition(Cond("ab", "c", "")),
            eacl::HashCondition(Cond("a", "bc", "")));
  EXPECT_NE(eacl::HashCondition(Cond("x", "ab", "c")),
            eacl::HashCondition(Cond("x", "a", "bc")));
}

TEST(IrHash, PhaseBlockPlacementIsPartOfTheHash) {
  auto pre = GrantPolicy();
  auto mid = GrantPolicy();
  mid.entries[0].mid = mid.entries[0].pre;
  mid.entries[0].pre.clear();
  EXPECT_NE(eacl::HashEntry(pre.entries[0]), eacl::HashEntry(mid.entries[0]));
}

// --- fixture ----------------------------------------------------------------

constexpr const char* kGrant = "pos_access_right apache *\n";
constexpr const char* kDeny = "neg_access_right apache *\n";

struct Stack {
  Stack() : api(&store, rig.services) {
    RoutineCatalog catalog;
    cond::RegisterBuiltinRoutines(catalog);
    EXPECT_TRUE(api.Initialize(catalog, cond::DefaultConfigText(), "").ok());
  }

  AuthzResult Go(const std::string& tenant,
                 const std::string& object = "/index.html") {
    RequestContext ctx = MakeContext("10.0.0.1", object);
    ctx.tenant = tenant;
    return api.Authorize(ctx.object, RequestedRight{"apache", ctx.operation},
                         ctx);
  }

  bool Memoized(const std::string& tenant,
                const std::string& object = "/index.html") {
    return api.DecisionIsMemoized(object, RequestedRight{"apache", "GET"},
                                  util::Ipv4Address::Parse("10.0.0.1").value(),
                                  tenant);
  }

  TestRig rig;
  PolicyStore store;
  GaaApi api;
};

// --- cross-tenant IR dedup ---------------------------------------------------

TEST(IrStoreDedup, IdenticalTenantBoilerplateInternsOnce) {
  Stack s;
  ASSERT_TRUE(s.store.AddTenantSystemPolicy("t1", kGrant).ok());
  const auto after_first = s.store.ir_store_stats();
  ASSERT_TRUE(s.store.AddTenantSystemPolicy("t2", kGrant).ok());
  const auto after_second = s.store.ir_store_stats();

  // Both tenants' boilerplate carries the same positional provenance name
  // ("system#0") and identical structure, so the second compile is a hit.
  EXPECT_GT(after_second.hits, after_first.hits);

  auto t1 = s.store.CurrentSnapshotFor("t1");
  auto t2 = s.store.CurrentSnapshotFor("t2");
  ASSERT_NE(t1, nullptr);
  ASSERT_NE(t2, nullptr);
  ASSERT_EQ(t1->system().size(), 1u);
  ASSERT_EQ(t2->system().size(), 1u);
  // Structural sharing, not just equal content: one immutable object.
  EXPECT_EQ(t1->system()[0].get(), t2->system()[0].get());
}

TEST(IrStoreDedup, SharedGlobalLayerIsOneObjectAcrossTenants) {
  Stack s;
  ASSERT_TRUE(s.store.SetLocalPolicy("/", kGrant).ok());
  ASSERT_TRUE(s.store.AddTenant("t1").ok());
  ASSERT_TRUE(s.store.AddTenant("t2").ok());

  auto def = s.store.CurrentSnapshot();
  auto t1 = s.store.CurrentSnapshotFor("t1");
  auto t2 = s.store.CurrentSnapshotFor("t2");
  ASSERT_NE(def, nullptr);
  ASSERT_NE(t1, nullptr);
  ASSERT_NE(t2, nullptr);
  EXPECT_EQ(def->locals().at("/").get(), t1->locals().at("/").get());
  EXPECT_EQ(def->locals().at("/").get(), t2->locals().at("/").get());
}

TEST(IrStoreDedup, DifferentStructureMissesAndDiverges) {
  Stack s;
  ASSERT_TRUE(s.store.AddTenantSystemPolicy("t1", kGrant).ok());
  const auto before = s.store.ir_store_stats();
  ASSERT_TRUE(s.store.AddTenantSystemPolicy("t2", kDeny).ok());
  const auto after = s.store.ir_store_stats();
  EXPECT_GT(after.misses, before.misses);

  auto t1 = s.store.CurrentSnapshotFor("t1");
  auto t2 = s.store.CurrentSnapshotFor("t2");
  EXPECT_NE(t1->system()[0].get(), t2->system()[0].get());
}

// --- layered composition -----------------------------------------------------

TEST(TenantLayering, TenantSystemPoliciesFollowGlobals) {
  Stack s;
  ASSERT_TRUE(s.store.AddSystemPolicy(std::string("eacl_mode 1\n") + kGrant)
                  .ok());
  ASSERT_TRUE(s.store.AddTenantSystemPolicy("acme", kDeny).ok());

  auto global_view = s.store.PoliciesForTenant("", "/x");
  EXPECT_EQ(global_view.system_policies.size(), 1u);

  auto tenant_view = s.store.PoliciesForTenant("acme", "/x");
  ASSERT_EQ(tenant_view.system_policies.size(), 2u);
  EXPECT_TRUE(tenant_view.system_policies[0].entries[0].right.positive);
  EXPECT_FALSE(tenant_view.system_policies[1].entries[0].right.positive);
}

TEST(TenantLayering, TenantLocalShadowsSamePrefixGlobal) {
  Stack s;
  ASSERT_TRUE(s.store.SetLocalPolicy("/", kGrant).ok());
  ASSERT_TRUE(s.store.SetLocalPolicy("/docs", kGrant).ok());
  ASSERT_TRUE(s.store.SetTenantLocalPolicy("acme", "/", kDeny).ok());

  auto view = s.store.PoliciesForTenant("acme", "/docs/guide.html");
  ASSERT_EQ(view.local_policies.size(), 2u);
  // "/" is the tenant's (shadowed); "/docs" falls through to the global.
  EXPECT_FALSE(view.local_policies[0].entries[0].right.positive);
  EXPECT_TRUE(view.local_policies[1].entries[0].right.positive);

  // The default namespace never sees the tenant overlay.
  auto global_view = s.store.PoliciesForTenant("", "/docs/guide.html");
  ASSERT_EQ(global_view.local_policies.size(), 2u);
  EXPECT_TRUE(global_view.local_policies[0].entries[0].right.positive);
}

TEST(TenantLayering, UnknownTenantDegradesToGlobalView) {
  Stack s;
  ASSERT_TRUE(s.store.SetLocalPolicy("/", kGrant).ok());
  EXPECT_EQ(s.Go("nope").status, Tristate::kYes);
  auto snap = s.store.CurrentSnapshotFor("nope");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->tenant(), "");
}

// --- memo isolation ----------------------------------------------------------

TEST(TenantMemo, ReloadFencesOnlyTheMutatedTenant) {
  Stack s;
  ASSERT_TRUE(s.store.SetLocalPolicy("/", kGrant).ok());
  ASSERT_TRUE(s.store.AddTenant("a").ok());
  ASSERT_TRUE(s.store.AddTenant("b").ok());

  EXPECT_EQ(s.Go("").status, Tristate::kYes);
  EXPECT_EQ(s.Go("a").status, Tristate::kYes);
  EXPECT_EQ(s.Go("b").status, Tristate::kYes);
  EXPECT_TRUE(s.Memoized(""));
  EXPECT_TRUE(s.Memoized("a"));
  EXPECT_TRUE(s.Memoized("b"));

  // Reload tenant b only: a's and the default namespace's memos stay warm.
  ASSERT_TRUE(s.store.SetTenantLocalPolicy("b", "/", kDeny).ok());
  EXPECT_FALSE(s.Memoized("b"));
  EXPECT_TRUE(s.Memoized(""));
  EXPECT_TRUE(s.Memoized("a"));

  EXPECT_EQ(s.Go("b").status, Tristate::kNo);
  EXPECT_EQ(s.Go("a").status, Tristate::kYes);
}

TEST(TenantMemo, GlobalMutationFencesEveryNamespace) {
  Stack s;
  ASSERT_TRUE(s.store.SetLocalPolicy("/", kGrant).ok());
  ASSERT_TRUE(s.store.AddTenant("a").ok());
  EXPECT_EQ(s.Go("").status, Tristate::kYes);
  EXPECT_EQ(s.Go("a").status, Tristate::kYes);
  ASSERT_TRUE(s.store.SetLocalPolicy("/", kDeny).ok());
  EXPECT_FALSE(s.Memoized(""));
  EXPECT_FALSE(s.Memoized("a"));
  EXPECT_EQ(s.Go("a").status, Tristate::kNo);
}

// --- per-tenant threat profile ----------------------------------------------

TEST(TenantThreat, OverrideAppliesOnlyToItsNamespace) {
  Stack s;
  ASSERT_TRUE(s.store
                  .SetLocalPolicy("/",
                                  "pos_access_right apache *\n"
                                  "pre_cond_system_threat_level local =low\n")
                  .ok());
  ASSERT_TRUE(s.store.AddTenant("hot").ok());

  EXPECT_EQ(s.Go("").status, Tristate::kYes);
  EXPECT_EQ(s.Go("hot").status, Tristate::kYes);

  s.rig.state.SetTenantThreatLevel("hot", ThreatLevel::kHigh);
  EXPECT_EQ(s.Go("hot").status, Tristate::kNo);
  EXPECT_EQ(s.Go("").status, Tristate::kYes);  // global profile untouched

  s.rig.state.ClearTenantThreatLevel("hot");
  EXPECT_EQ(s.Go("hot").status, Tristate::kYes);
}

TEST(TenantThreat, EpochMovesOnlyForTheTransitionedTenant) {
  TestRig rig;
  const auto cold_before = rig.state.TenantThreatEpoch("cold");
  const auto hot_before = rig.state.TenantThreatEpoch("hot");
  rig.state.SetTenantThreatLevel("hot", ThreatLevel::kHigh);
  EXPECT_GT(rig.state.TenantThreatEpoch("hot"), hot_before);
  EXPECT_EQ(rig.state.TenantThreatEpoch("cold"), cold_before);
  // Re-setting the same level is not a transition.
  const auto hot_mid = rig.state.TenantThreatEpoch("hot");
  rig.state.SetTenantThreatLevel("hot", ThreatLevel::kHigh);
  EXPECT_EQ(rig.state.TenantThreatEpoch("hot"), hot_mid);
  // Clearing back to the global profile is a transition again.
  rig.state.ClearTenantThreatLevel("hot");
  EXPECT_GT(rig.state.TenantThreatEpoch("hot"), hot_mid);
}

// --- differential: tenant == single-namespace --------------------------------

constexpr const char* kSysPolicy =
    "eacl_mode 1\n"
    "neg_access_right apache *\n"
    "pre_cond_regex gnu *phf*\n";

TEST(TenantDifferential, ByteIdenticalToSingleNamespaceStore) {
  web::GaaWebServer single(http::DocTree::DemoSite());
  ASSERT_TRUE(single.AddSystemPolicy(kSysPolicy).ok());
  ASSERT_TRUE(single.SetLocalPolicy("/", kGrant).ok());

  web::GaaWebServer multi(http::DocTree::DemoSite());
  ASSERT_TRUE(multi.AddTenant("acme", "acme.example").ok());
  ASSERT_TRUE(multi.AddTenantSystemPolicy("acme", kSysPolicy).ok());
  ASSERT_TRUE(multi.SetTenantLocalPolicy("acme", "/", kGrant).ok());

  for (const char* target :
       {"/index.html", "/docs/guide.html", "/cgi-bin/phf?Qalias=x",
        "/missing.html"}) {
    auto a = single.Get(target, "10.1.2.3");
    auto b = multi.HandleText(
        http::BuildGetRequest(target, {{"Host", "ACME.Example:8080"}}),
        "10.1.2.3");
    EXPECT_EQ(a.Serialize(), b.Serialize()) << target;
  }

  // Decision attribution is byte-identical too: same provenance names
  // ("system#0", "local:/"), same entry indices, same condition — the only
  // divergence is the tenant label itself.
  auto da = single.audit_log().ByCategory("decision");
  auto db = multi.audit_log().ByCategory("decision");
  ASSERT_EQ(da.size(), db.size());
  ASSERT_FALSE(da.empty());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da[i].message, db[i].message);
    EXPECT_EQ(da[i].decision, db[i].decision);
    EXPECT_EQ(da[i].policy, db[i].policy);
    EXPECT_EQ(da[i].entry, db[i].entry);
    EXPECT_EQ(da[i].condition, db[i].condition);
    EXPECT_EQ(da[i].client, db[i].client);
    EXPECT_EQ(da[i].tenant, "");
    EXPECT_EQ(db[i].tenant, "acme");
  }
}

// --- Host routing through the full integration -------------------------------

TEST(TenantRouting, HostVariantsDocRootsAndStatusView) {
  http::DocTree tree = http::DocTree::DemoSite();
  tree.AddDocument("/tenants/acme/index.html",
                   {"<html><body>acme tenant home</body></html>"});
  web::GaaWebServer server(std::move(tree));
  ASSERT_TRUE(server.SetLocalPolicy("/", kGrant).ok());
  ASSERT_TRUE(
      server.AddTenant("acme", "WWW.Acme.COM:8080", "/tenants/acme").ok());

  // Case, port and trailing-dot variants of the registered Host all land in
  // the tenant's doc root; the same logical path serves tenant content.
  for (const char* host :
       {"www.acme.com", "WWW.ACME.COM", "www.acme.com:443", "www.Acme.com."}) {
    auto r = server.HandleText(
        http::BuildGetRequest("/index.html", {{"Host", host}}), "10.1.2.3");
    EXPECT_EQ(r.status, http::StatusCode::kOk) << host;
    EXPECT_NE(r.BodyView().find("acme tenant home"),
              std::string_view::npos)
        << host;
  }

  // An unrouted Host stays in the default namespace and shared tree.
  auto def = server.HandleText(
      http::BuildGetRequest("/index.html", {{"Host", "other.example"}}),
      "10.1.2.3");
  EXPECT_EQ(def.status, http::StatusCode::kOk);
  EXPECT_NE(def.BodyView().find("Welcome to the demo site"),
            std::string_view::npos);

  // Flip the unknown-host policy: unclaimed Hosts are misdirected (421),
  // registered ones still resolve.
  server.set_unknown_host_policy(
      http::TenantRouter::UnknownHostPolicy::kReject);
  auto rejected = server.HandleText(
      http::BuildGetRequest("/index.html", {{"Host", "other.example"}}),
      "10.1.2.3");
  EXPECT_EQ(rejected.status, http::StatusCode::kMisdirectedRequest);
  auto routed = server.HandleText(
      http::BuildGetRequest("/index.html", {{"Host", "www.acme.com"}}),
      "10.1.2.3");
  EXPECT_EQ(routed.status, http::StatusCode::kOk);

  // The tenants status view reports the namespace and the IR store's dedup
  // counters.
  auto status = server.HandleText(
      http::BuildGetRequest("/__status/tenants", {{"Host", "www.acme.com"}}),
      "10.1.2.3");
  EXPECT_EQ(status.status, http::StatusCode::kOk);
  EXPECT_NE(status.BodyView().find("\"name\":\"acme\""),
            std::string_view::npos);
  EXPECT_NE(status.BodyView().find("\"ir_store\""), std::string_view::npos);
  EXPECT_NE(status.BodyView().find("\"routes\":1"), std::string_view::npos);
}

TEST(TenantRouting, PerTenantRequestCounterIsLabeled) {
  web::GaaWebServer server(http::DocTree::DemoSite());
  ASSERT_TRUE(server.SetLocalPolicy("/", kGrant).ok());
  ASSERT_TRUE(server.AddTenant("acme", "acme.example").ok());

  (void)server.Get("/index.html", "10.1.2.3");
  (void)server.HandleText(
      http::BuildGetRequest("/index.html", {{"Host", "acme.example"}}),
      "10.1.2.3");

  auto* reg = &server.telemetry().registry();
  auto* def = reg->GetCounter("tenant_requests_total", "tenant=\"default\"");
  auto* acme = reg->GetCounter("tenant_requests_total", "tenant=\"acme\"");
  ASSERT_NE(def, nullptr);
  ASSERT_NE(acme, nullptr);
  EXPECT_EQ(def->Value(), 1u);
  EXPECT_EQ(acme->Value(), 1u);
}

}  // namespace
}  // namespace gaa::core
