// Property-based tests of the EACL evaluation engine: random policies over
// pure synthetic conditions, checked against the ordered-evaluation
// invariants of DESIGN.md §5.
#include <gtest/gtest.h>

#include "gaa/api.h"
#include "testing/helpers.h"
#include "util/rng.h"

namespace gaa::core {
namespace {

using gaa::testing::MakeContext;
using gaa::testing::TestRig;
using util::Tristate;

/// Pure synthetic conditions: "pre_cond_sym" with value t/f/u (true, false,
/// unevaluated) so policies are data, not code.
void RegisterSyntheticConditions(GaaApi& api) {
  api.registry().Register(
      "pre_cond_sym", "*",
      [](const eacl::Condition& cond, const RequestContext&, EvalServices&) {
        if (cond.value == "t") return EvalOutcome::Yes();
        if (cond.value == "f") return EvalOutcome::No();
        return EvalOutcome::Unevaluated();
      });
  api.registry().Register(
      "rr_cond_sym", "*",
      [](const eacl::Condition& cond, const RequestContext&, EvalServices&) {
        if (cond.value == "t") return EvalOutcome::Yes();
        if (cond.value == "f") return EvalOutcome::No();
        return EvalOutcome::Unevaluated();
      });
}

eacl::Eacl RandomPolicy(util::Rng& rng, double unknown_prob = 0.15) {
  eacl::Eacl policy;
  std::size_t entries = 1 + rng.NextBelow(6);
  for (std::size_t i = 0; i < entries; ++i) {
    eacl::Entry entry;
    entry.right.positive = rng.NextBool(0.6);
    entry.right.def_auth = rng.NextBool(0.8) ? "apache" : "*";
    entry.right.value = rng.NextBool(0.5) ? "*" : (rng.NextBool(0.5) ? "GET" : "POST");
    std::size_t conds = rng.NextBelow(4);
    for (std::size_t c = 0; c < conds; ++c) {
      const char* value = rng.NextBool(unknown_prob)
                              ? "u"
                              : (rng.NextBool(0.5) ? "t" : "f");
      entry.pre.push_back({"pre_cond_sym", "local", value});
    }
    if (rng.NextBool(0.3)) {
      entry.request_result.push_back(
          {"rr_cond_sym", "local", rng.NextBool(0.8) ? "t" : "f"});
    }
    policy.entries.push_back(std::move(entry));
  }
  return policy;
}

struct Evaluator {
  Evaluator() : api(&store, rig.services) { RegisterSyntheticConditions(api); }

  Tristate Decide(const eacl::ComposedPolicy& composed,
                  const std::string& op = "GET") {
    RequestContext ctx = MakeContext("10.0.0.1", "/x", op);
    return api.CheckAuthorization(composed, RequestedRight{"apache", op}, ctx)
        .status;
  }

  TestRig rig;
  PolicyStore store;
  GaaApi api;
};

class EvalProperty : public ::testing::TestWithParam<int> {};

TEST_P(EvalProperty, NonMatchingEntriesAreInert) {
  util::Rng rng(GetParam());
  Evaluator eval;
  for (int trial = 0; trial < 40; ++trial) {
    eacl::Eacl policy = RandomPolicy(rng);
    auto composed = eacl::Compose({}, {policy});
    Tristate before = eval.Decide(composed);

    // Insert an entry for a different application at a random position.
    eacl::Entry alien;
    alien.right = {rng.NextBool(0.5), "sshd", "*"};
    eacl::Eacl mutated = policy;
    mutated.entries.insert(
        mutated.entries.begin() + rng.NextBelow(mutated.entries.size() + 1),
        alien);
    auto mutated_composed = eacl::Compose({}, {mutated});
    EXPECT_EQ(eval.Decide(mutated_composed), before);
  }
}

TEST_P(EvalProperty, FailingPreConditionEntriesAreInert) {
  util::Rng rng(GetParam() + 100);
  Evaluator eval;
  for (int trial = 0; trial < 40; ++trial) {
    eacl::Eacl policy = RandomPolicy(rng);
    auto composed = eacl::Compose({}, {policy});
    Tristate before = eval.Decide(composed);

    // An entry whose pre-block definitely fails cannot change anything, at
    // any position (its own rr conditions never fire either).
    eacl::Entry dead;
    dead.right = {rng.NextBool(0.5), "apache", "*"};
    dead.pre.push_back({"pre_cond_sym", "local", "f"});
    eacl::Eacl mutated = policy;
    mutated.entries.insert(
        mutated.entries.begin() + rng.NextBelow(mutated.entries.size() + 1),
        dead);
    auto mutated_composed = eacl::Compose({}, {mutated});
    EXPECT_EQ(eval.Decide(mutated_composed), before);
  }
}

TEST_P(EvalProperty, AppendingAfterPoliciesNeverFlipsDecidedOutcomes) {
  util::Rng rng(GetParam() + 200);
  Evaluator eval;
  for (int trial = 0; trial < 40; ++trial) {
    eacl::Eacl policy = RandomPolicy(rng, /*unknown_prob=*/0.0);
    auto composed = eacl::Compose({}, {policy});
    Tristate before = eval.Decide(composed);
    if (before == Tristate::kMaybe) continue;

    // Once some entry decides (YES/NO with pure conditions), appending
    // anything — even a contradictory unconditional entry — is dead code
    // IF an earlier entry applied.  If no entry applied (default deny),
    // appended entries may legitimately grant; so only check the
    // "applicable" case.
    RequestContext probe = MakeContext();
    auto authz = eval.api.CheckAuthorization(composed,
                                             RequestedRight{"apache", "GET"},
                                             probe);
    if (!authz.applicable) continue;

    eacl::Entry tail;
    tail.right = {before == Tristate::kNo, "apache", "*"};  // contradicts
    eacl::Eacl mutated = policy;
    mutated.entries.push_back(tail);
    auto mutated_composed = eacl::Compose({}, {mutated});
    EXPECT_EQ(eval.Decide(mutated_composed), before);
  }
}

TEST_P(EvalProperty, NarrowSelfCompositionIsIdempotent) {
  util::Rng rng(GetParam() + 300);
  Evaluator eval;
  for (int trial = 0; trial < 40; ++trial) {
    eacl::Eacl policy = RandomPolicy(rng);
    auto local_only = eacl::Compose({}, {policy});
    Tristate alone = eval.Decide(local_only);

    eacl::Eacl as_system = policy;
    as_system.mode = eacl::CompositionMode::kNarrow;
    auto self_composed = eacl::Compose({as_system}, {policy});
    EXPECT_EQ(eval.Decide(self_composed), alone);
  }
}

TEST_P(EvalProperty, CompositionModeOrderingEndToEnd) {
  util::Rng rng(GetParam() + 400);
  Evaluator eval;
  auto permissiveness = [](Tristate t) {
    return t == Tristate::kYes ? 2 : (t == Tristate::kMaybe ? 1 : 0);
  };
  for (int trial = 0; trial < 40; ++trial) {
    eacl::Eacl system_policy = RandomPolicy(rng);
    eacl::Eacl local_policy = RandomPolicy(rng);

    auto with_mode = [&](eacl::CompositionMode mode) {
      eacl::Eacl marked = system_policy;
      marked.mode = mode;
      return eval.Decide(eacl::Compose({marked}, {local_policy}));
    };
    Tristate expand = with_mode(eacl::CompositionMode::kExpand);
    Tristate narrow = with_mode(eacl::CompositionMode::kNarrow);
    // narrow is never more permissive than expand, end to end.
    EXPECT_LE(permissiveness(narrow), permissiveness(expand));
  }
}

TEST_P(EvalProperty, EvaluationIsDeterministic) {
  util::Rng rng(GetParam() + 500);
  Evaluator eval;
  for (int trial = 0; trial < 20; ++trial) {
    eacl::Eacl policy = RandomPolicy(rng);
    auto composed = eacl::Compose({}, {policy});
    Tristate first = eval.Decide(composed);
    for (int repeat = 0; repeat < 3; ++repeat) {
      EXPECT_EQ(eval.Decide(composed), first);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvalProperty, ::testing::Range(1, 13));

}  // namespace
}  // namespace gaa::core
