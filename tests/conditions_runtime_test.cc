#include <gtest/gtest.h>

#include "conditions/builtin.h"
#include "testing/helpers.h"

namespace gaa::cond {
namespace {

using gaa::testing::MakeCond;
using gaa::testing::MakeContext;
using gaa::testing::TestRig;
using util::Tristate;

class LimitTest : public ::testing::Test {
 protected:
  TestRig rig_;
};

TEST_F(LimitTest, CpuWithinAndExceeded) {
  auto routine = MakeCpuLimitRoutine({});
  auto ctx = MakeContext();
  ctx.stats.cpu_seconds = 0.01;
  EXPECT_EQ(routine(MakeCond("mid_cond_cpu", "local", "0.5"), ctx,
                    rig_.services)
                .status,
            Tristate::kYes);
  ctx.stats.cpu_seconds = 0.9;
  EXPECT_EQ(routine(MakeCond("mid_cond_cpu", "local", "0.5"), ctx,
                    rig_.services)
                .status,
            Tristate::kNo);
  // Exceeding resources is reported as suspicious behaviour (§3 item 6).
  EXPECT_EQ(rig_.ids.CountKind(core::ReportKind::kSuspiciousBehavior), 1u);
}

TEST_F(LimitTest, WallclockMemoryOutput) {
  auto ctx = MakeContext();
  ctx.stats.wall_us = 250'000;  // 250 ms
  ctx.stats.memory_bytes = 4 << 20;
  ctx.stats.bytes_written = 10'000;

  EXPECT_EQ(MakeWallclockLimitRoutine({})(
                MakeCond("mid_cond_wallclock", "local", "500"), ctx,
                rig_.services)
                .status,
            Tristate::kYes);
  EXPECT_EQ(MakeWallclockLimitRoutine({})(
                MakeCond("mid_cond_wallclock", "local", "100"), ctx,
                rig_.services)
                .status,
            Tristate::kNo);
  EXPECT_EQ(MakeMemoryLimitRoutine({})(
                MakeCond("mid_cond_memory", "local", "8388608"), ctx,
                rig_.services)
                .status,
            Tristate::kYes);
  EXPECT_EQ(MakeOutputLimitRoutine({})(
                MakeCond("mid_cond_output", "local", "1024"), ctx,
                rig_.services)
                .status,
            Tristate::kNo);
}

TEST_F(LimitTest, AdaptiveLimitViaVar) {
  auto routine = MakeCpuLimitRoutine({});
  auto ctx = MakeContext();
  ctx.stats.cpu_seconds = 0.3;
  rig_.state.SetVariable("cpu_cap", "0.5");
  EXPECT_EQ(routine(MakeCond("mid_cond_cpu", "local", "var:cpu_cap"), ctx,
                    rig_.services)
                .status,
            Tristate::kYes);
  rig_.state.SetVariable("cpu_cap", "0.1");
  EXPECT_EQ(routine(MakeCond("mid_cond_cpu", "local", "var:cpu_cap"), ctx,
                    rig_.services)
                .status,
            Tristate::kNo);
}

TEST_F(LimitTest, UnsetVarIsUnevaluated) {
  auto routine = MakeCpuLimitRoutine({});
  auto ctx = MakeContext();
  auto out = routine(MakeCond("mid_cond_cpu", "local", "var:unset"), ctx,
                     rig_.services);
  EXPECT_FALSE(out.evaluated);
}

TEST_F(LimitTest, NonNumericLimitFails) {
  auto routine = MakeCpuLimitRoutine({});
  auto ctx = MakeContext();
  EXPECT_EQ(routine(MakeCond("mid_cond_cpu", "local", "lots"), ctx,
                    rig_.services)
                .status,
            Tristate::kNo);
}

class PostLogTest : public ::testing::Test {
 protected:
  TestRig rig_;
  core::CondRoutine routine_ = MakePostLogRoutine({});
};

TEST_F(PostLogTest, LogsOnMatchingOutcome) {
  auto ctx = MakeContext("10.0.0.1", "/cgi-bin/search");
  ctx.stats.succeeded = false;
  ctx.stats.bytes_written = 123;
  routine_(MakeCond("post_cond_log", "local", "on:failure/ops"), ctx,
           rig_.services);
  auto records = rig_.audit.ByCategory("ops");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_NE(records[0].message.find("OP_FAIL"), std::string::npos);
  EXPECT_NE(records[0].message.find("bytes=123"), std::string::npos);
}

TEST_F(PostLogTest, SkipsOnNonMatchingOutcome) {
  auto ctx = MakeContext();
  ctx.stats.succeeded = true;
  routine_(MakeCond("post_cond_log", "local", "on:failure/ops"), ctx,
           rig_.services);
  EXPECT_EQ(rig_.audit.size(), 0u);
}

class IntegrityTest : public ::testing::Test {
 protected:
  TestRig rig_;
  core::CondRoutine routine_ = MakeIntegrityCheckRoutine({});
};

TEST_F(IntegrityTest, CleanOperationPasses) {
  auto ctx = MakeContext();
  auto out = routine_(MakeCond("post_cond_check_integrity", "local",
                               "/etc/passwd"),
                      ctx, rig_.services);
  EXPECT_EQ(out.status, Tristate::kYes);
  EXPECT_TRUE(rig_.ids.reports.empty());
}

TEST_F(IntegrityTest, WatchedFileTouchedAlerts) {
  // The §1 example: a modified /etc/passwd triggers a content check.
  auto ctx = MakeContext("203.0.113.9", "/cgi-bin/phf");
  ctx.stats.files_created = {"/etc/passwd"};
  auto out = routine_(MakeCond("post_cond_check_integrity", "local",
                               "/etc/passwd"),
                      ctx, rig_.services);
  EXPECT_EQ(out.status, Tristate::kNo);
  EXPECT_EQ(rig_.ids.CountKind(core::ReportKind::kSuspiciousBehavior), 1u);
  EXPECT_EQ(rig_.notifier.sent_count(), 1u);
  EXPECT_EQ(rig_.audit.CountCategory("integrity"), 1u);
}

TEST_F(IntegrityTest, GlobWatchesDirectories) {
  auto ctx = MakeContext();
  ctx.stats.files_created = {"/etc/shadow"};
  EXPECT_EQ(routine_(MakeCond("post_cond_check_integrity", "local", "/etc/*"),
                     ctx, rig_.services)
                .status,
            Tristate::kNo);
  ctx.stats.files_created = {"/tmp/scratch"};
  EXPECT_EQ(routine_(MakeCond("post_cond_check_integrity", "local", "/etc/*"),
                     ctx, rig_.services)
                .status,
            Tristate::kYes);
}

}  // namespace
}  // namespace gaa::cond
