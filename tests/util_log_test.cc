#include "util/log.h"

#include <gtest/gtest.h>

#include <vector>

namespace gaa::util {
namespace {

// The Logger is a process-wide singleton; each test restores the default
// sink set and level afterwards.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::Instance().SetMinLevel(LogLevel::kDebug);
    Logger::Instance().SetSinks({[this](LogLevel level, const std::string& m) {
      captured.emplace_back(level, m);
    }});
  }
  void TearDown() override {
    Logger::Instance().SetSinks({Logger::StderrSink()});
    Logger::Instance().SetMinLevel(LogLevel::kWarn);
  }
  std::vector<std::pair<LogLevel, std::string>> captured;
};

TEST_F(LogTest, StreamMacroFormats) {
  GAA_LOG(kInfo) << "x=" << 42 << " y=" << 1.5;
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured[0].second, "x=42 y=1.5");
}

TEST_F(LogTest, MinLevelFilters) {
  Logger::Instance().SetMinLevel(LogLevel::kError);
  GAA_LOG(kDebug) << "hidden";
  GAA_LOG(kWarn) << "hidden too";
  GAA_LOG(kError) << "visible";
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].second, "visible");
}

TEST_F(LogTest, MultipleSinksAllReceive) {
  int second_sink_count = 0;
  Logger::Instance().AddSink(
      [&](LogLevel, const std::string&) { ++second_sink_count; });
  GAA_LOG(kInfo) << "fan-out";
  EXPECT_EQ(captured.size(), 1u);
  EXPECT_EQ(second_sink_count, 1);
}

TEST(LogLevelNames, Stable) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace gaa::util
