// Scenario test: §7.2 "Application level Intrusion Detection".
//
// System-wide (narrow): members of the BadGuys group are denied.
// Local: requests matching *phf* / *test-cgi* are rejected; the response
// notifies the administrator and adds the source address to BadGuys, so
// follow-up probes with UNKNOWN signatures from the same host are blocked.
#include <gtest/gtest.h>

#include "http/doc_tree.h"
#include "integration/gaa_web_server.h"
#include "workload/trace.h"

namespace gaa::web {
namespace {

using http::StatusCode;

constexpr const char* kSystemPolicy = R"(
eacl_mode 1
neg_access_right * *
pre_cond_accessid GROUP local BadGuys
)";

constexpr const char* kLocalPolicy = R"(
# Entry 1: known CGI-abuse signatures are rejected with response actions.
neg_access_right apache *
pre_cond_regex gnu *phf* *test-cgi*
rr_cond_notify local on:failure/sysadmin/info:cgiexploit
rr_cond_update_log local on:failure/BadGuys/info:ip
# Entry 2: everything else is allowed.
pos_access_right apache *
)";

class IntrusionTest : public ::testing::Test {
 protected:
  IntrusionTest() : server_(http::DocTree::DemoSite(), MakeOptions()) {
    EXPECT_TRUE(server_.AddSystemPolicy(kSystemPolicy).ok());
    EXPECT_TRUE(server_.SetLocalPolicy("/", kLocalPolicy).ok());
  }

  static GaaWebServer::Options MakeOptions() {
    GaaWebServer::Options options;
    options.notification_latency_us = 0;  // latency-free for tests
    return options;
  }

  GaaWebServer server_;
};

TEST_F(IntrusionTest, BenignRequestsPass) {
  EXPECT_EQ(server_.Get("/index.html", "10.0.0.1").status, StatusCode::kOk);
  EXPECT_EQ(server_.Get("/cgi-bin/search?q=apache", "10.0.0.1").status,
            StatusCode::kOk);
}

TEST_F(IntrusionTest, PhfProbeIsRejected) {
  auto response =
      server_.Get("/cgi-bin/phf?Qalias=x%0a/bin/cat%20/etc/passwd",
                  "203.0.113.9");
  EXPECT_EQ(response.status, StatusCode::kForbidden);
}

TEST_F(IntrusionTest, ProbeNotifiesAdministrator) {
  server_.Get("/cgi-bin/phf?Qalias=x", "203.0.113.9");
  ASSERT_EQ(server_.notifier().sent_count(), 1u);
  auto sent = server_.notifier().Sent();
  EXPECT_NE(sent[0].subject.find("cgiexploit"), std::string::npos);
  EXPECT_NE(sent[0].body.find("203.0.113.9"), std::string::npos);
}

TEST_F(IntrusionTest, ProbeBlacklistsTheSource) {
  EXPECT_FALSE(server_.state().GroupContains("BadGuys", "203.0.113.9"));
  server_.Get("/cgi-bin/test-cgi?*", "203.0.113.9");
  EXPECT_TRUE(server_.state().GroupContains("BadGuys", "203.0.113.9"));
}

TEST_F(IntrusionTest, BlacklistBlocksUnknownSignatureFollowUps) {
  // The paper's key claim: "If the system identifies requests from an
  // address as matching known attack signature, then subsequent requests
  // from that host ... checking for vulnerabilities we might not yet know
  // about, can still be blocked."
  workload::TraceGenerator gen({});
  auto scan = gen.VulnerabilityScan("203.0.113.9", 5);
  ASSERT_EQ(scan.size(), 6u);

  // The first (known-signature) probe is rejected by the signature entry.
  auto first = server_.HandleText(scan[0].raw, scan[0].client_ip);
  EXPECT_EQ(first.status, StatusCode::kForbidden);

  // Every unknown-signature follow-up is blocked by the blacklist, even
  // though no signature matches them.
  for (std::size_t i = 1; i < scan.size(); ++i) {
    auto response = server_.HandleText(scan[i].raw, scan[i].client_ip);
    EXPECT_EQ(response.status, StatusCode::kForbidden) << scan[i].raw;
  }

  // A different (benign) host still gets through to the same URLs — the
  // block is per-source, not per-URL.
  auto other = server_.HandleText(scan[1].raw, "10.0.0.1");
  EXPECT_NE(other.status, StatusCode::kForbidden);
}

TEST_F(IntrusionTest, BlacklistIsSharedAcrossObjects) {
  server_.Get("/cgi-bin/phf?x", "203.0.113.9");
  // The blacklisted host is denied even plain static pages.
  EXPECT_EQ(server_.Get("/index.html", "203.0.113.9").status,
            StatusCode::kForbidden);
}

TEST_F(IntrusionTest, SignatureHitsAreReportedToIds) {
  server_.Get("/cgi-bin/phf?x", "203.0.113.9");
  EXPECT_GE(server_.ids().CountKind(core::ReportKind::kDetectedAttack), 1u);
}

TEST_F(IntrusionTest, RepeatedAttacksEscalateThreatLevel) {
  ASSERT_EQ(server_.state().threat_level(), core::ThreatLevel::kLow);
  for (int i = 0; i < 8; ++i) {
    server_.Get("/cgi-bin/phf?attempt=" + std::to_string(i),
                "203.0.113." + std::to_string(10 + i));
  }
  EXPECT_GT(static_cast<int>(server_.state().threat_level()),
            static_cast<int>(core::ThreatLevel::kLow));
}

TEST_F(IntrusionTest, FalsePositiveCheckOnBenignTrace) {
  // No benign request in the standard mix may be denied.
  workload::TraceOptions options;
  options.count = 300;
  options.attack_fraction = 0.0;
  workload::TraceGenerator gen(options);
  for (const auto& request : gen.Generate()) {
    if (request.kind == workload::RequestKind::kPrivatePage) continue;
    auto response = server_.HandleText(request.raw, request.client_ip);
    EXPECT_NE(response.status, StatusCode::kForbidden)
        << request.label << " " << request.raw;
  }
}

// --- additional §7.2 signatures ------------------------------------------------

constexpr const char* kExtendedLocalPolicy = R"(
neg_access_right apache *
pre_cond_regex gnu *phf* *test-cgi*
rr_cond_update_log local on:failure/BadGuys/info:ip
neg_access_right apache *
pre_cond_regex gnu *///////////////////*
neg_access_right apache *
pre_cond_regex gnu *%*
neg_access_right apache *
pre_cond_expr local cgi_input_length >1000
pos_access_right apache *
)";

class ExtendedSignatureTest : public ::testing::Test {
 protected:
  ExtendedSignatureTest() : server_(http::DocTree::DemoSite(), MakeOptions()) {
    EXPECT_TRUE(server_.SetLocalPolicy("/", kExtendedLocalPolicy).ok());
  }

  static GaaWebServer::Options MakeOptions() {
    GaaWebServer::Options options;
    options.notification_latency_us = 0;
    return options;
  }

  GaaWebServer server_;
};

TEST_F(ExtendedSignatureTest, SlashDosRejected) {
  auto response = server_.Get("/" + std::string(40, '/'), "203.0.113.9");
  EXPECT_EQ(response.status, StatusCode::kForbidden);
}

TEST_F(ExtendedSignatureTest, NimdaPercentRejected) {
  auto response = server_.Get(
      "/scripts/..%255c..%255cwinnt/system32/cmd.exe?/c+dir", "203.0.113.9");
  EXPECT_EQ(response.status, StatusCode::kForbidden);
}

TEST_F(ExtendedSignatureTest, BufferOverflowInputRejected) {
  auto response = server_.Get("/cgi-bin/search?q=" + std::string(1200, 'A'),
                              "203.0.113.9");
  EXPECT_EQ(response.status, StatusCode::kForbidden);
}

TEST_F(ExtendedSignatureTest, ThousandCharInputIsStillAllowed) {
  // Boundary: exactly 1000 characters of CGI input is NOT "longer than
  // 1000" and must pass.
  std::string query = "q=" + std::string(998, 'A');
  ASSERT_EQ(query.size(), 1000u);
  auto response = server_.Get("/cgi-bin/search?" + query, "10.0.0.1");
  EXPECT_EQ(response.status, StatusCode::kOk);
}

TEST_F(ExtendedSignatureTest, BenignStillPasses) {
  EXPECT_EQ(server_.Get("/index.html", "10.0.0.1").status, StatusCode::kOk);
  EXPECT_EQ(server_.Get("/docs/guide.html", "10.0.0.1").status,
            StatusCode::kOk);
}

}  // namespace
}  // namespace gaa::web
