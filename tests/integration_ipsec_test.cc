// The third application of the paper's trio: IPsec SA establishment under
// GAA policy, sharing system-wide state with the web and ssh paths.
#include <gtest/gtest.h>

#include "http/doc_tree.h"
#include "integration/gaa_web_server.h"
#include "integration/ipsec.h"

namespace gaa::web {
namespace {

using SaResult = IpsecGateway::SaResult;

GaaWebServer::Options TestOptions() {
  GaaWebServer::Options options;
  options.notification_latency_us = 0;
  return options;
}

class IpsecTest : public ::testing::Test {
 protected:
  IpsecTest()
      : server_(http::DocTree::DemoSite(), TestOptions()),
        gateway_(&server_.api()) {
    // SA policy: tunnels only from the corporate network.
    EXPECT_TRUE(server_
                    .SetLocalPolicy("/ipsec", R"(
pos_access_right ipsec establish_sa
pre_cond_location local 10.0.0.0/8
)")
                    .ok());
  }

  GaaWebServer server_;
  IpsecGateway gateway_;
};

TEST_F(IpsecTest, CorporatePeersEstablish) {
  EXPECT_EQ(gateway_.EstablishSa("10.1.2.3"), SaResult::kEstablished);
  EXPECT_TRUE(gateway_.HasSa("10.1.2.3"));
  EXPECT_EQ(gateway_.active_sa_count(), 1u);
}

TEST_F(IpsecTest, OutsidePeersDenied) {
  EXPECT_EQ(gateway_.EstablishSa("198.51.100.7"), SaResult::kDenied);
  EXPECT_FALSE(gateway_.HasSa("198.51.100.7"));
  EXPECT_EQ(gateway_.denied_count(), 1u);
}

TEST_F(IpsecTest, Teardown) {
  gateway_.EstablishSa("10.1.2.3");
  EXPECT_TRUE(gateway_.TeardownSa("10.1.2.3"));
  EXPECT_FALSE(gateway_.TeardownSa("10.1.2.3"));
  EXPECT_FALSE(gateway_.HasSa("10.1.2.3"));
}

TEST_F(IpsecTest, IdentityGatedSa) {
  ASSERT_TRUE(server_
                  .SetLocalPolicy("/ipsec", R"(
pos_access_right ipsec establish_sa
pre_cond_accessid USER ipsec *
)")
                  .ok());
  // Anonymous proposal: GAA_MAYBE — the gateway asks for certificates.
  EXPECT_EQ(gateway_.EstablishSa("10.1.2.3"), SaResult::kMoreCredentials);
  EXPECT_FALSE(gateway_.HasSa("10.1.2.3"));
  // With a peer identity, the SA comes up.
  EXPECT_EQ(gateway_.EstablishSa("10.1.2.3", "gw.branch.example.org"),
            SaResult::kEstablished);
}

TEST_F(IpsecTest, LockdownTearsTunnelsDown) {
  // The §7.1 mandatory lockdown applies to tunnels: RevalidateAll() drops
  // SAs that current policy no longer authorizes.
  ASSERT_TRUE(server_
                  .AddSystemPolicy(R"(
eacl_mode 1
neg_access_right * *
pre_cond_system_threat_level local =high
)")
                  .ok());
  ASSERT_EQ(gateway_.EstablishSa("10.1.2.3"), SaResult::kEstablished);
  ASSERT_EQ(gateway_.EstablishSa("10.4.5.6"), SaResult::kEstablished);
  EXPECT_EQ(gateway_.active_sa_count(), 2u);

  server_.state().SetThreatLevel(core::ThreatLevel::kHigh);
  EXPECT_EQ(gateway_.EstablishSa("10.7.8.9"), SaResult::kDenied);
  EXPECT_EQ(gateway_.RevalidateAll(), 2u);
  EXPECT_EQ(gateway_.active_sa_count(), 0u);

  server_.state().SetThreatLevel(core::ThreatLevel::kLow);
  EXPECT_EQ(gateway_.EstablishSa("10.1.2.3"), SaResult::kEstablished);
  EXPECT_EQ(gateway_.RevalidateAll(), 0u);
}

TEST_F(IpsecTest, WebSideBlacklistBlocksTunnels) {
  ASSERT_TRUE(server_
                  .AddSystemPolicy(R"(
eacl_mode 1
neg_access_right * *
pre_cond_accessid GROUP local BadGuys
)")
                  .ok());
  ASSERT_TRUE(server_
                  .SetLocalPolicy("/", R"(
neg_access_right apache *
pre_cond_regex gnu *phf*
rr_cond_update_log local on:failure/BadGuys/info:ip
pos_access_right apache *
)")
                  .ok());
  ASSERT_EQ(gateway_.EstablishSa("10.1.2.3"), SaResult::kEstablished);
  // The host attacks the web server, lands on the shared blacklist...
  server_.Get("/cgi-bin/phf?x", "10.1.2.3");
  ASSERT_TRUE(server_.state().GroupContains("BadGuys", "10.1.2.3"));
  // ...new SA proposals are denied and revalidation drops the live tunnel.
  EXPECT_EQ(gateway_.EstablishSa("10.99.0.1"), SaResult::kEstablished);
  EXPECT_EQ(gateway_.RevalidateAll(), 1u);
  EXPECT_FALSE(gateway_.HasSa("10.1.2.3"));
  EXPECT_TRUE(gateway_.HasSa("10.99.0.1"));
}

}  // namespace
}  // namespace gaa::web
