// Execution-control over long-running operations: the mid-condition phase
// runs BETWEEN steps of a streaming CGI and aborts it mid-flight (paper
// phase 3: "to detect malicious behavior in real-time (e.g., a user
// process consumes excessive system resources)").
#include <gtest/gtest.h>

#include "http/doc_tree.h"
#include "integration/gaa_web_server.h"
#include "util/config.h"

namespace gaa::web {
namespace {

using http::StatusCode;

GaaWebServer::Options TestOptions() {
  GaaWebServer::Options options;
  options.notification_latency_us = 0;
  return options;
}

TEST(StreamingExecution, RunsToCompletionWithoutLimits) {
  GaaWebServer server(http::DocTree::DemoSite(), TestOptions());
  ASSERT_TRUE(server.SetLocalPolicy("/", "pos_access_right apache *\n").ok());
  auto response = server.Get("/cgi-bin/bigreport", "10.0.0.1");
  EXPECT_EQ(response.status, StatusCode::kOk);
  // All 20 sections.
  EXPECT_NE(response.body.find("report section 19"), std::string::npos);
}

TEST(StreamingExecution, CpuLimitAbortsMidOperation) {
  GaaWebServer server(http::DocTree::DemoSite(), TestOptions());
  // 0.2 cpu-seconds allows ~8 of the 20 x 25 ms steps.
  ASSERT_TRUE(server
                  .SetLocalPolicy("/", R"(
pos_access_right apache *
mid_cond_cpu local 0.2
)")
                  .ok());
  auto response = server.Get("/cgi-bin/bigreport", "10.0.0.1");
  EXPECT_EQ(response.status, StatusCode::kForbidden);
  EXPECT_NE(response.body.find("aborted"), std::string::npos);
  // The abort was a *mid-flight* kill, reported as suspicious behaviour.
  EXPECT_GE(server.ids().CountKind(core::ReportKind::kSuspiciousBehavior), 1u);
}

TEST(StreamingExecution, OutputLimitAbortsEarly) {
  GaaWebServer server(http::DocTree::DemoSite(), TestOptions());
  ASSERT_TRUE(server
                  .SetLocalPolicy("/", R"(
pos_access_right apache *
mid_cond_output local 64
)")
                  .ok());
  auto response = server.Get("/cgi-bin/bigreport", "10.0.0.1");
  EXPECT_EQ(response.status, StatusCode::kForbidden);
}

TEST(StreamingExecution, AdaptiveCpuCapViaVariable) {
  // The IDS tightens the cap at runtime; the very next operation feels it.
  GaaWebServer server(http::DocTree::DemoSite(), TestOptions());
  ASSERT_TRUE(server
                  .SetLocalPolicy("/", R"(
pos_access_right apache *
mid_cond_cpu local var:gaa.cpu_cap
)")
                  .ok());
  server.ids().PushAdaptiveValue("gaa.cpu_cap", "10.0");
  EXPECT_EQ(server.Get("/cgi-bin/bigreport", "10.0.0.1").status,
            StatusCode::kOk);
  server.ids().PushAdaptiveValue("gaa.cpu_cap", "0.1");
  EXPECT_EQ(server.Get("/cgi-bin/bigreport", "10.0.0.1").status,
            StatusCode::kForbidden);
}

TEST(StreamingExecution, PostConditionsSeeAbortAsFailure) {
  GaaWebServer server(http::DocTree::DemoSite(), TestOptions());
  ASSERT_TRUE(server
                  .SetLocalPolicy("/", R"(
pos_access_right apache *
mid_cond_cpu local 0.1
post_cond_log local on:failure/aborted_ops
)")
                  .ok());
  server.Get("/cgi-bin/bigreport", "10.0.0.1");
  EXPECT_EQ(server.audit_log().CountCategory("aborted_ops"), 1u);
}

TEST(HeadMethod, NoBodyButLengthPreserved) {
  GaaWebServer server(http::DocTree::DemoSite(), TestOptions());
  ASSERT_TRUE(server.SetLocalPolicy("/", "pos_access_right apache *\n").ok());
  auto get = server.Get("/index.html", "10.0.0.1");
  std::string raw = "HEAD /index.html HTTP/1.1\r\nHost: x\r\n\r\n";
  auto head = server.HandleText(raw, "10.0.0.1");
  EXPECT_EQ(head.status, StatusCode::kOk);
  EXPECT_TRUE(head.BodyView().empty());
  EXPECT_EQ(head.headers.at("Content-Length"),
            std::to_string(get.BodySize()));
}

TEST(DiskBackedPolicies, LoadFromFiles) {
  std::string dir = ::testing::TempDir();
  std::string system_path = dir + "/system.eacl";
  std::string local_path = dir + "/local.eacl";
  ASSERT_TRUE(util::WriteStringToFile(system_path,
                                      "eacl_mode 1\nneg_access_right * *\n"
                                      "pre_cond_system_threat_level local "
                                      "=high\n")
                  .ok());
  ASSERT_TRUE(util::WriteStringToFile(local_path,
                                      "pos_access_right apache *\n")
                  .ok());

  GaaWebServer server(http::DocTree::DemoSite(), TestOptions());
  ASSERT_TRUE(server.policy_store().AddSystemPolicyFile(system_path).ok());
  ASSERT_TRUE(server.policy_store().SetLocalPolicyFile("/", local_path).ok());

  EXPECT_EQ(server.Get("/index.html", "10.0.0.1").status, StatusCode::kOk);
  server.state().SetThreatLevel(core::ThreatLevel::kHigh);
  EXPECT_EQ(server.Get("/index.html", "10.0.0.1").status,
            StatusCode::kForbidden);

  EXPECT_FALSE(
      server.policy_store().AddSystemPolicyFile("/no/such/file").ok());
}

}  // namespace
}  // namespace gaa::web
