#include "util/ip.h"

#include <gtest/gtest.h>

namespace gaa::util {
namespace {

TEST(Ipv4Address, ParseValid) {
  auto a = Ipv4Address::Parse("128.9.0.1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->ToString(), "128.9.0.1");
  EXPECT_EQ(a->bits(), 0x80090001u);
}

TEST(Ipv4Address, ParseBoundaries) {
  EXPECT_TRUE(Ipv4Address::Parse("0.0.0.0").has_value());
  EXPECT_TRUE(Ipv4Address::Parse("255.255.255.255").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("256.0.0.1").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3.-4").has_value());
}

TEST(Ipv4Address, Ordering) {
  auto a = Ipv4Address::Parse("10.0.0.1").value();
  auto b = Ipv4Address::Parse("10.0.0.2").value();
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(a == a);
  EXPECT_TRUE(a != b);
}

TEST(CidrBlock, ContainsPrefix) {
  auto block = CidrBlock::Parse("128.9.0.0/16").value();
  EXPECT_TRUE(block.Contains(Ipv4Address::Parse("128.9.1.2").value()));
  EXPECT_TRUE(block.Contains(Ipv4Address::Parse("128.9.255.255").value()));
  EXPECT_FALSE(block.Contains(Ipv4Address::Parse("128.10.0.0").value()));
  EXPECT_EQ(block.ToString(), "128.9.0.0/16");
}

TEST(CidrBlock, HostWithoutPrefix) {
  auto block = CidrBlock::Parse("10.1.2.3").value();
  EXPECT_EQ(block.prefix_len(), 32);
  EXPECT_TRUE(block.Contains(Ipv4Address::Parse("10.1.2.3").value()));
  EXPECT_FALSE(block.Contains(Ipv4Address::Parse("10.1.2.4").value()));
}

TEST(CidrBlock, ApachePartialOctets) {
  // Apache "Allow from 128.9" == 128.9.0.0/16.
  auto block = CidrBlock::Parse("128.9").value();
  EXPECT_EQ(block.prefix_len(), 16);
  EXPECT_TRUE(block.Contains(Ipv4Address::Parse("128.9.42.42").value()));
  EXPECT_FALSE(block.Contains(Ipv4Address::Parse("128.8.0.0").value()));
}

TEST(CidrBlock, ZeroPrefixMatchesEverything) {
  auto block = CidrBlock::Parse("0.0.0.0/0").value();
  EXPECT_TRUE(block.Contains(Ipv4Address::Parse("1.2.3.4").value()));
  EXPECT_TRUE(block.Contains(Ipv4Address::Parse("255.255.255.255").value()));
}

TEST(CidrBlock, NormalizesBaseToMask) {
  auto block = CidrBlock::Parse("128.9.42.42/16").value();
  EXPECT_EQ(block.base().ToString(), "128.9.0.0");
}

TEST(CidrBlock, RejectsGarbage) {
  EXPECT_FALSE(CidrBlock::Parse("").has_value());
  EXPECT_FALSE(CidrBlock::Parse("1.2.3.4/33").has_value());
  EXPECT_FALSE(CidrBlock::Parse("1.2.3.4/-1").has_value());
  EXPECT_FALSE(CidrBlock::Parse("hello/8").has_value());
  EXPECT_FALSE(CidrBlock::Parse("1.2.3.4.5/8").has_value());
}

}  // namespace
}  // namespace gaa::util
