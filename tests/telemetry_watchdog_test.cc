// Slow-request watchdog + tracer slow-path: in-flight flagging, pinning,
// slow-retired hook, capacity knobs, and the JSON exposition views.
#include "telemetry/watchdog.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "telemetry/exposition.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace gaa::telemetry {
namespace {

// Watchdog tests drive ScanOnce() directly (poll_interval_us = 0 keeps the
// monitor thread from starting), so there are no timing races: a deadline
// of -1 µs makes every in-flight request "late" deterministically.
SlowRequestWatchdog::Options ManualScan(std::int64_t deadline_us) {
  SlowRequestWatchdog::Options opts;
  opts.deadline_us = deadline_us;
  opts.poll_interval_us = 0;
  return opts;
}

TEST(Watchdog, FlagsInflightRequestPastDeadline) {
  Tracer tracer;
  MetricRegistry registry;
  SlowRequestWatchdog dog(&tracer, &registry, ManualScan(-1));

  auto trace = tracer.Begin();
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(dog.ScanOnce(), 1u);
  EXPECT_EQ(dog.ScanOnce(), 0u);  // already flagged, not re-reported
  EXPECT_EQ(registry.GetCounter("slow_requests_total")->Value(), 1u);
  EXPECT_EQ(dog.flagged_total(), 1u);

  tracer.Finish(std::move(trace));
  auto pinned = tracer.Pinned();
  ASSERT_EQ(pinned.size(), 1u);
  EXPECT_TRUE(pinned[0].slow);
}

TEST(Watchdog, FastRequestsAreNotFlagged) {
  Tracer tracer;
  MetricRegistry registry;
  SlowRequestWatchdog dog(&tracer, &registry,
                          ManualScan(60'000'000));  // one-minute deadline

  auto trace = tracer.Begin();
  EXPECT_EQ(dog.ScanOnce(), 0u);
  tracer.Finish(std::move(trace));
  EXPECT_TRUE(tracer.Pinned().empty());
  auto recent = tracer.Recent();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_FALSE(recent[0].slow);
}

TEST(Watchdog, HookReceivesFlagEvents) {
  Tracer tracer;
  std::vector<SlowRequestWatchdog::SlowEvent> events;
  SlowRequestWatchdog dog(&tracer, nullptr, ManualScan(-1),
                          [&](const SlowRequestWatchdog::SlowEvent& ev) {
                            events.push_back(ev);
                          });
  auto t1 = tracer.Begin();
  auto t2 = tracer.Begin();
  EXPECT_EQ(dog.ScanOnce(), 2u);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].trace_id, events[1].trace_id);
  tracer.Finish(std::move(t1));
  tracer.Finish(std::move(t2));
}

TEST(Watchdog, SlowRetiredHookRunsOnFinishWithCompleteSpans) {
  Tracer tracer;
  MetricRegistry registry;
  SlowRequestWatchdog dog(&tracer, &registry, ManualScan(-1));

  std::vector<RequestTrace> retired;
  tracer.set_slow_retired_hook(
      [&](const RequestTrace& t) { retired.push_back(t); });

  auto trace = tracer.Begin();
  trace->method = "GET";
  trace->target = "/slow.cgi";
  {
    ScopedSpan span(trace.get(), "handler");
  }
  ASSERT_EQ(dog.ScanOnce(), 1u);
  tracer.Finish(std::move(trace));

  ASSERT_EQ(retired.size(), 1u);
  EXPECT_EQ(retired[0].target, "/slow.cgi");
  EXPECT_TRUE(retired[0].slow);
  ASSERT_EQ(retired[0].spans().size(), 1u);
  EXPECT_EQ(retired[0].spans()[0].name, "handler");
  EXPECT_NE(retired[0].spans()[0].end_us, 0);
}

TEST(Watchdog, PinnedRingSurvivesFastTrafficEviction) {
  Tracer tracer(/*capacity=*/4);
  SlowRequestWatchdog dog(&tracer, nullptr, ManualScan(-1));

  auto slow = tracer.Begin();
  const std::uint64_t slow_id = slow->id();
  ASSERT_EQ(dog.ScanOnce(), 1u);
  tracer.Finish(std::move(slow));

  // A burst of fast requests evicts the slow trace from the main ring...
  for (int i = 0; i < 16; ++i) tracer.Finish(tracer.Begin());
  bool in_ring = false;
  for (const auto& t : tracer.Recent()) {
    if (t.id() == slow_id) in_ring = true;
  }
  EXPECT_FALSE(in_ring);

  // ...but the pinned ring still has it.
  auto pinned = tracer.Pinned();
  ASSERT_EQ(pinned.size(), 1u);
  EXPECT_EQ(pinned[0].id(), slow_id);
}

TEST(Watchdog, MonitorThreadScansWithoutManualCalls) {
  Tracer tracer;
  MetricRegistry registry;
  SlowRequestWatchdog::Options opts;
  opts.deadline_us = -1;
  opts.poll_interval_us = 1'000;  // 1 ms poll
  SlowRequestWatchdog dog(&tracer, &registry, opts);

  auto trace = tracer.Begin();
  Counter* counter = registry.GetCounter("slow_requests_total");
  for (int i = 0; i < 500 && counter->Value() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(counter->Value(), 1u);
  tracer.Finish(std::move(trace));
  dog.Stop();
}

TEST(Tracer, CapacityKnobsResizeRings) {
  Tracer tracer(/*capacity=*/128);
  tracer.set_capacity(2);
  EXPECT_EQ(tracer.capacity(), 2u);
  for (int i = 0; i < 8; ++i) tracer.Finish(tracer.Begin());
  EXPECT_EQ(tracer.Recent().size(), 2u);

  tracer.set_pinned_capacity(1);
  MetricRegistry registry;
  SlowRequestWatchdog dog(&tracer, &registry, ManualScan(-1));
  for (int i = 0; i < 3; ++i) {
    auto t = tracer.Begin();
    dog.ScanOnce();
    tracer.Finish(std::move(t));
  }
  EXPECT_EQ(tracer.Pinned().size(), 1u);
}

TEST(Tracer, InflightTracksBeginAndFinish) {
  Tracer tracer;
  EXPECT_EQ(tracer.inflight(), 0u);
  auto t1 = tracer.Begin();
  auto t2 = tracer.Begin();
  EXPECT_EQ(tracer.inflight(), 2u);
  tracer.Finish(std::move(t1));
  EXPECT_EQ(tracer.inflight(), 1u);
  tracer.Finish(std::move(t2));
  EXPECT_EQ(tracer.inflight(), 0u);
}

// --- exposition ------------------------------------------------------------

TEST(Exposition, TracesJsonCarriesSlowFlag) {
  Tracer tracer;
  MetricRegistry registry;
  SlowRequestWatchdog dog(&tracer, &registry, ManualScan(-1));
  auto t = tracer.Begin();
  dog.ScanOnce();
  tracer.Finish(std::move(t));

  const std::string json = RenderTracesJson(tracer);
  EXPECT_NE(json.find("\"slow\":true"), std::string::npos);
  const std::string slow_json = RenderSlowTracesJson(tracer);
  EXPECT_NE(slow_json.find("\"slow\":true"), std::string::npos);
}

TEST(Exposition, MetricsJsonHasQuantileSummaries) {
  MetricRegistry registry;
  registry.GetCounter("requests_total")->Inc(3);
  Histogram* h = registry.GetHistogram("latency_us", "", {10, 100, 1000});
  for (int i = 0; i < 100; ++i) h->Record(50);

  const std::string json = RenderMetricsJson(registry);
  EXPECT_NE(json.find("\"name\":\"requests_total\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":3"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"latency_us\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":100"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

TEST(Exposition, PoliciesJsonGroupsEntryCountersAndConditions) {
  MetricRegistry registry;
  registry
      .GetCounter("eacl_entry_decisions_total",
                  "policy=\"system#0\",entry=\"0\",outcome=\"yes\"")
      ->Inc(7);
  registry
      .GetCounter("eacl_entry_decisions_total",
                  "policy=\"system#0\",entry=\"1\",outcome=\"no\"")
      ->Inc(2);
  registry
      .GetCounter("eacl_entry_decisions_total",
                  "policy=\"local:/cgi-bin\",entry=\"0\",outcome=\"maybe\"")
      ->Inc(1);
  registry
      .GetHistogram("gaa_cond_eval_us",
                    "cond=\"pre_cond_access_id_ip\",auth=\"router\"",
                    {1, 10, 100})
      ->Record(5);

  const std::string json = RenderPoliciesJson(registry);
  EXPECT_NE(json.find("\"policy\":\"system#0\""), std::string::npos);
  EXPECT_NE(json.find("\"policy\":\"local:/cgi-bin\""), std::string::npos);
  EXPECT_NE(json.find("\"yes\":7"), std::string::npos);
  EXPECT_NE(json.find("\"no\":2"), std::string::npos);
  EXPECT_NE(json.find("\"maybe\":1"), std::string::npos);
  EXPECT_NE(json.find("\"cond\":\"pre_cond_access_id_ip\""),
            std::string::npos);
  EXPECT_NE(json.find("\"auth\":\"router\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);
}

}  // namespace
}  // namespace gaa::telemetry
