// Tests for PolicyStore's paper-faithful parse-on-retrieve mode (the §9
// caching rationale: the paper's gaa_get_object_policy_info re-read and
// re-translated policy files per request).
#include <gtest/gtest.h>

#include "gaa/api.h"
#include "gaa/policy_store.h"
#include "testing/helpers.h"

namespace gaa::core {
namespace {

using gaa::testing::MakeContext;
using gaa::testing::TestRig;
using util::Tristate;

TEST(ParseOnRetrieve, SameDecisionsAsPreParsed) {
  const char* system_text =
      "eacl_mode 1\nneg_access_right * *\n"
      "pre_cond_sym local f\n";  // inert (condition false)
  const char* local_text =
      "neg_access_right apache GET\npre_cond_sym local t\n"
      "pos_access_right apache *\n";

  for (bool parse_on_retrieve : {false, true}) {
    TestRig rig;
    PolicyStore store;
    store.SetParseOnRetrieve(parse_on_retrieve);
    ASSERT_TRUE(store.AddSystemPolicy(system_text).ok());
    ASSERT_TRUE(store.SetLocalPolicy("/", local_text).ok());
    GaaApi api(&store, rig.services);
    api.registry().Register(
        "pre_cond_sym", "*",
        [](const eacl::Condition& cond, const RequestContext&,
           EvalServices&) {
          return cond.value == "t" ? EvalOutcome::Yes() : EvalOutcome::No();
        });
    auto ctx = MakeContext();
    EXPECT_EQ(api.Authorize("/x", {"apache", "GET"}, ctx).status,
              Tristate::kNo)
        << "parse_on_retrieve=" << parse_on_retrieve;
    ctx = MakeContext();
    EXPECT_EQ(api.Authorize("/x", {"apache", "POST"}, ctx).status,
              Tristate::kYes)
        << "parse_on_retrieve=" << parse_on_retrieve;
  }
}

TEST(ParseOnRetrieve, RetrievalReflectsRemovalAndReplacement) {
  PolicyStore store;
  store.SetParseOnRetrieve(true);
  ASSERT_TRUE(store.SetLocalPolicy("/", "pos_access_right apache *\n").ok());
  EXPECT_EQ(store.PoliciesFor("/x").local_policies.size(), 1u);
  ASSERT_TRUE(store
                  .SetLocalPolicy("/", "neg_access_right apache *\n"
                                       "pos_access_right apache GET\n")
                  .ok());
  auto composed = store.PoliciesFor("/x");
  ASSERT_EQ(composed.local_policies.size(), 1u);
  EXPECT_EQ(composed.local_policies[0].entries.size(), 2u);
  EXPECT_TRUE(store.RemoveLocalPolicy("/"));
  EXPECT_TRUE(store.PoliciesFor("/x").local_policies.empty());
}

TEST(ParseOnRetrieve, ClearDropsTexts) {
  PolicyStore store;
  store.SetParseOnRetrieve(true);
  ASSERT_TRUE(store.AddSystemPolicy("pos_access_right a b\n").ok());
  ASSERT_TRUE(store.SetLocalPolicy("/", "pos_access_right a b\n").ok());
  store.Clear();
  auto composed = store.PoliciesFor("/x");
  EXPECT_TRUE(composed.system_policies.empty());
  EXPECT_TRUE(composed.local_policies.empty());
}

TEST(ParseOnRetrieve, ModeStillComposesFromSystemText) {
  PolicyStore store;
  store.SetParseOnRetrieve(true);
  ASSERT_TRUE(
      store.AddSystemPolicy("eacl_mode 2\npos_access_right apache *\n").ok());
  ASSERT_TRUE(store.SetLocalPolicy("/", "neg_access_right * *\n").ok());
  auto composed = store.PoliciesFor("/x");
  EXPECT_EQ(composed.mode, eacl::CompositionMode::kStop);
  EXPECT_TRUE(composed.local_policies.empty());  // stop drops local
}

}  // namespace
}  // namespace gaa::core
