// Open-loop load generator (EXPERIMENTS.md E7): the determinism contract
// (a schedule is a pure function of the options), arrival-process shape,
// scenario composition, and a small end-to-end run over real sockets.
#include "workload/loadgen.h"

#include <gtest/gtest.h>

#include <memory>

#include "http/doc_tree.h"
#include "http/tcp_server.h"
#include "util/clock.h"

namespace gaa::workload {
namespace {

TEST(LoadGenerator, ScheduleIsDeterministic) {
  LoadgenOptions options;
  options.seed = 1234;
  options.rate_rps = 500;
  options.total_requests = 300;
  options.connections = 7;
  LoadGenerator a(options, MixedScenario());
  LoadGenerator b(options, MixedScenario());
  auto sa = a.BuildSchedule();
  auto sb = b.BuildSchedule();
  ASSERT_EQ(sa.size(), sb.size());
  ASSERT_EQ(sa.size(), options.total_requests);
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].intended_us, sb[i].intended_us) << i;
    EXPECT_EQ(sa[i].connection, sb[i].connection) << i;
    EXPECT_EQ(sa[i].request.kind, sb[i].request.kind) << i;
    EXPECT_EQ(sa[i].request.raw, sb[i].request.raw) << i;
    EXPECT_EQ(sa[i].request.client_ip, sb[i].request.client_ip) << i;
  }
}

TEST(LoadGenerator, SeedChangesSchedule) {
  LoadgenOptions a_options;
  a_options.seed = 1;
  a_options.total_requests = 200;
  LoadgenOptions b_options = a_options;
  b_options.seed = 2;
  auto sa = LoadGenerator(a_options, MixedScenario()).BuildSchedule();
  auto sb = LoadGenerator(b_options, MixedScenario()).BuildSchedule();
  bool arrivals_differ = false;
  bool content_differs = false;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    if (sa[i].intended_us != sb[i].intended_us) arrivals_differ = true;
    if (sa[i].request.raw != sb[i].request.raw) content_differs = true;
  }
  EXPECT_TRUE(arrivals_differ);
  EXPECT_TRUE(content_differs);
}

TEST(LoadGenerator, DeterministicArrivalsAreEvenlySpaced) {
  LoadgenOptions options;
  options.arrivals = ArrivalProcess::kDeterministic;
  options.rate_rps = 1000;  // 1ms gap
  options.total_requests = 50;
  auto schedule = LoadGenerator(options, BenignScenario()).BuildSchedule();
  ASSERT_EQ(schedule.size(), 50u);
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_EQ(schedule[i].intended_us, static_cast<std::int64_t>(i * 1000));
  }
}

TEST(LoadGenerator, PoissonArrivalsMatchOfferedRateOnAverage) {
  LoadgenOptions options;
  options.arrivals = ArrivalProcess::kPoisson;
  options.rate_rps = 2000;
  options.total_requests = 4000;
  auto schedule = LoadGenerator(options, BenignScenario()).BuildSchedule();
  // Mean interarrival over 4k exponential gaps should be within 10% of
  // 1/rate, and arrivals must be monotone.
  double span_us = static_cast<double>(schedule.back().intended_us);
  double mean_gap = span_us / static_cast<double>(schedule.size() - 1);
  EXPECT_NEAR(mean_gap, 500.0, 50.0);
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_GE(schedule[i].intended_us, schedule[i - 1].intended_us);
  }
}

TEST(LoadGenerator, ScenariosCoverTheWidenedAttackCorpus) {
  // The adversarial scenario must exercise every attack kind, including
  // the PR-8 additions, and the mixed scenario must stay ~90% benign.
  auto adversarial = AdversarialScenario();
  bool has_slow = false, has_smuggle = false, has_traversal = false,
       has_flood = false, has_poison = false;
  for (const auto& [kind, weight] : adversarial.mix) {
    EXPECT_TRUE(IsAttackKind(kind)) << RequestKindName(kind);
    if (kind == RequestKind::kSlowHeaders) has_slow = true;
    if (kind == RequestKind::kSmugglingProbe) has_smuggle = true;
    if (kind == RequestKind::kPathTraversal) has_traversal = true;
    if (kind == RequestKind::kHeaderFlood) has_flood = true;
    if (kind == RequestKind::kCachePoison) has_poison = true;
  }
  EXPECT_TRUE(has_slow && has_smuggle && has_traversal && has_flood &&
              has_poison);

  double benign_weight = 0, total_weight = 0;
  for (const auto& [kind, weight] : MixedScenario().mix) {
    total_weight += weight;
    if (!IsAttackKind(kind)) benign_weight += weight;
  }
  EXPECT_NEAR(benign_weight / total_weight, 0.9, 0.01);
}

TEST(LoadGenerator, RunAgainstRealServerCompletesBenignLoad) {
  util::SimulatedClock clock(0);
  http::DocTree tree = http::DocTree::DemoSite();
  http::AllowAllController controller;
  http::WebServer server(&tree, &controller, &clock);
  http::TcpServer::Options tcp_options;
  tcp_options.reactor_shards = 2;
  tcp_options.worker_threads = 2;
  http::TcpServer tcp(&server, tcp_options);
  auto started = tcp.Start();
  ASSERT_TRUE(started.ok()) << started.error().ToString();

  LoadgenOptions options;
  options.rate_rps = 400;
  options.total_requests = 80;
  options.connections = 4;
  LoadGenerator gen(options, BenignScenario());
  LoadResult result = gen.Run(tcp.port());
  tcp.Stop();

  EXPECT_EQ(result.sent, 80u);
  EXPECT_EQ(result.responded, 80u);
  EXPECT_EQ(result.transport_errors, 0u);
  EXPECT_EQ(result.latency.count, 80u);
  EXPECT_EQ(result.benign_latency.count, 80u);
  EXPECT_GT(result.latency.max, 0u);
  // Open-loop latency can never undercut the closed-loop service time.
  EXPECT_GE(result.latency.Quantile(0.99), result.service.Quantile(0.5));
  std::uint64_t ok = 0;
  for (const auto& [kind, stats] : result.by_kind) ok += stats.ok_2xx;
  EXPECT_EQ(ok, 80u);
}

TEST(LoadGenerator, PartialKindsExpectNoResponse) {
  util::SimulatedClock clock(0);
  http::DocTree tree = http::DocTree::DemoSite();
  http::AllowAllController controller;
  http::WebServer server(&tree, &controller, &clock);
  http::TcpServer::Options tcp_options;
  tcp_options.reactor_shards = 1;
  tcp_options.worker_threads = 1;
  http::TcpServer tcp(&server, tcp_options);
  auto started = tcp.Start();
  ASSERT_TRUE(started.ok()) << started.error().ToString();

  LoadgenOptions options;
  options.rate_rps = 200;
  options.total_requests = 10;
  options.connections = 2;
  LoadScenario slow{"slowloris", {{RequestKind::kSlowHeaders, 1.0}}};
  LoadResult result = LoadGenerator(options, slow).Run(tcp.port());
  tcp.Stop();

  EXPECT_EQ(result.sent, 10u);
  EXPECT_EQ(result.responded, 0u);
  // Abandoned half-requests are the *point* of the scenario, not errors.
  EXPECT_EQ(result.transport_errors, 0u);
  auto it = result.by_kind.find("slow_headers");
  ASSERT_NE(it, result.by_kind.end());
  EXPECT_EQ(it->second.no_response, 10u);
}

}  // namespace
}  // namespace gaa::workload
