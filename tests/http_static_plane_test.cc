// The static content plane (DESIGN.md §11): HTTP date machinery, strong
// validators, pre-serialized header templates (byte-identical to the
// dynamic path's serializer), and RFC 7232 conditional-GET evaluation.
#include "http/static_plane.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "http/doc_tree.h"
#include "http/response.h"

namespace gaa::http {
namespace {

TEST(HttpDate, FormatsImfFixdate) {
  // RFC 7231's own example date, and the epoch.
  EXPECT_EQ(FormatHttpDate(784111777), "Sun, 06 Nov 1994 08:49:37 GMT");
  EXPECT_EQ(FormatHttpDate(0), "Thu, 01 Jan 1970 00:00:00 GMT");
  char buf[kHttpDateBytes];
  EXPECT_EQ(FormatHttpDate(784111777, buf), kHttpDateBytes);
  EXPECT_EQ(std::string(buf, kHttpDateBytes), "Sun, 06 Nov 1994 08:49:37 GMT");
}

TEST(HttpDate, ParseRoundTrip) {
  for (std::int64_t t : {std::int64_t{0}, std::int64_t{784111777},
                         std::int64_t{951868800},    // leap-year Feb 29
                         std::int64_t{1700000000},   // a modern date
                         std::int64_t{4102444799}}) {  // 2099-12-31 23:59:59
    auto parsed = ParseHttpDate(FormatHttpDate(t));
    ASSERT_TRUE(parsed.has_value()) << FormatHttpDate(t);
    EXPECT_EQ(*parsed, t);
  }
}

TEST(HttpDate, RejectsObsoleteAndMalformedFormats) {
  // RFC 7232 §3.3: an unparsable If-Modified-Since is treated as absent,
  // so the parser must cleanly refuse the two obsolete date forms.
  EXPECT_FALSE(ParseHttpDate("Sunday, 06-Nov-94 08:49:37 GMT").has_value());
  EXPECT_FALSE(ParseHttpDate("Sun Nov  6 08:49:37 1994").has_value());
  EXPECT_FALSE(ParseHttpDate("").has_value());
  EXPECT_FALSE(ParseHttpDate("not a date at all, honest").has_value());
  EXPECT_FALSE(ParseHttpDate("Sun, 06 Nov 1994 08:49:37 PST").has_value());
  EXPECT_FALSE(ParseHttpDate("Sun, 06 Xyz 1994 08:49:37 GMT").has_value());
  // Surrounding optional whitespace is trimmed, as for any header value.
  EXPECT_TRUE(ParseHttpDate(" Sun, 06 Nov 1994 08:49:37 GMT ").has_value());
}

TEST(HttpDateCacheTest, LineMatchesFormatterAndCachesWithinSecond) {
  HttpDateCache cache;
  char line[HttpDateCache::kLineBytes];
  ASSERT_EQ(cache.Line(784111777'000000, line), HttpDateCache::kLineBytes);
  EXPECT_EQ(std::string(line, HttpDateCache::kLineBytes),
            "Date: Sun, 06 Nov 1994 08:49:37 GMT\r\n");
  // Sub-second advance: same cached line.
  char again[HttpDateCache::kLineBytes];
  cache.Line(784111777'999999, again);
  EXPECT_EQ(std::memcmp(line, again, HttpDateCache::kLineBytes), 0);
  // Next second: re-rendered.
  cache.Line(784111778'000000, again);
  EXPECT_EQ(std::string(again, HttpDateCache::kLineBytes),
            "Date: Sun, 06 Nov 1994 08:49:38 GMT\r\n");
}

TEST(ComputeEtagTest, QuotedStableAndContentSensitive) {
  std::string a = ComputeEtag("hello");
  EXPECT_EQ(a.front(), '"');
  EXPECT_EQ(a.back(), '"');
  EXPECT_EQ(a, ComputeEtag("hello"));
  EXPECT_NE(a, ComputeEtag("hello!"));
  EXPECT_NE(ComputeEtag(""), ComputeEtag(std::string(1, '\0')));
}

class StaticPlaneTest : public ::testing::Test {
 protected:
  StaticPlaneTest() : tree_(DocTree::DemoSite()) {
    plane_ = std::make_unique<StaticContentPlane>(&tree_, "gaa-httpd");
  }

  DocTree tree_;
  std::unique_ptr<StaticContentPlane> plane_;
};

TEST_F(StaticPlaneTest, BuildsOneEntryPerDocument) {
  EXPECT_EQ(plane_->size(), tree_.document_count());
  const auto* entry = plane_->Find("/index.html");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->body, tree_.FindDocument("/index.html")->content);
  EXPECT_EQ(entry->content_type, "text/html");
  EXPECT_EQ(entry->etag, ComputeEtag(entry->body));
  EXPECT_EQ(plane_->Find("/cgi-bin/search"), nullptr);  // CGI: dynamic
  EXPECT_EQ(plane_->Find("/nope"), nullptr);
}

TEST_F(StaticPlaneTest, TemplatesMatchDynamicSerializerByteForByte) {
  // The tentpole invariant: template pre + Date line + post must equal
  // what HttpResponse::SerializeHead() produces for the same response.
  const auto* entry = plane_->Find("/docs/guide.html");
  ASSERT_NE(entry, nullptr);
  const char* kDate = "Sun, 06 Nov 1994 08:49:37 GMT";
  for (bool keep : {false, true}) {
    HttpResponse ok;
    ok.status = StatusCode::kOk;
    ok.headers["Content-Type"] = entry->content_type;
    ok.headers["ETag"] = entry->etag;
    ok.headers["Last-Modified"] = entry->last_modified;
    ok.headers["Server"] = "gaa-httpd";
    ok.headers["Connection"] = keep ? "keep-alive" : "close";
    ok.headers["Date"] = kDate;
    ok.body_view = entry->body;
    const auto& head200 = entry->head200[keep ? 1 : 0];
    EXPECT_EQ(head200.pre + "Date: " + kDate + "\r\n" + head200.post,
              ok.SerializeHead());

    HttpResponse nm;
    nm.status = StatusCode::kNotModified;
    nm.headers["Content-Length"] = "0";
    nm.headers["ETag"] = entry->etag;
    nm.headers["Last-Modified"] = entry->last_modified;
    nm.headers["Server"] = "gaa-httpd";
    nm.headers["Connection"] = keep ? "keep-alive" : "close";
    nm.headers["Date"] = kDate;
    const auto& head304 = entry->head304[keep ? 1 : 0];
    EXPECT_EQ(head304.pre + "Date: " + kDate + "\r\n" + head304.post,
              nm.SerializeHead());
  }
}

TEST_F(StaticPlaneTest, NotModifiedEvaluation) {
  const auto* entry = plane_->Find("/index.html");
  ASSERT_NE(entry, nullptr);

  // If-None-Match: exact, list, star, weak prefix; mismatch fails.
  EXPECT_TRUE(NotModified(entry->etag, {}, *entry));
  EXPECT_TRUE(NotModified("\"zzz\", " + entry->etag, {}, *entry));
  EXPECT_TRUE(NotModified("*", {}, *entry));
  EXPECT_TRUE(NotModified("W/" + entry->etag, {}, *entry));
  EXPECT_FALSE(NotModified("\"zzz\"", {}, *entry));

  // If-Modified-Since: not modified at-or-after the stamp; unparsable or
  // older stamps mean "send the full response".
  std::string at_mtime = FormatHttpDate(entry->mtime_s);
  std::string later = FormatHttpDate(entry->mtime_s + 3600);
  EXPECT_TRUE(NotModified({}, at_mtime, *entry));
  EXPECT_TRUE(NotModified({}, later, *entry));
  EXPECT_FALSE(NotModified({}, "garbage", *entry));
  EXPECT_FALSE(NotModified({}, {}, *entry));

  // An If-None-Match mismatch wins over a matching If-Modified-Since
  // (RFC 7232 §3.3: IMS is ignored when INM is present).
  EXPECT_FALSE(NotModified("\"zzz\"", at_mtime, *entry));
}

}  // namespace
}  // namespace gaa::http
