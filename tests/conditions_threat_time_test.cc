#include <gtest/gtest.h>

#include "conditions/builtin.h"
#include "conditions/trigger.h"
#include "testing/helpers.h"

namespace gaa::cond {
namespace {

using core::ThreatLevel;
using gaa::testing::MakeCond;
using gaa::testing::MakeContext;
using gaa::testing::TestRig;
using util::Tristate;

// --- trigger / value helpers -------------------------------------------------

TEST(ParseTrigger, Variants) {
  auto t = ParseTrigger("on:failure/sysadmin/info:cgiexploit");
  EXPECT_EQ(t.trigger, Trigger::kOnFailure);
  EXPECT_EQ(t.rest, "sysadmin/info:cgiexploit");
  EXPECT_EQ(ParseTrigger("on:success/x").trigger, Trigger::kOnSuccess);
  EXPECT_EQ(ParseTrigger("on:any/x").trigger, Trigger::kOnAny);
  EXPECT_EQ(ParseTrigger("no-prefix").trigger, Trigger::kOnAny);
  EXPECT_EQ(ParseTrigger("no-prefix").rest, "no-prefix");
  EXPECT_EQ(ParseTrigger("on:failure").rest, "");
}

TEST(TriggerFires, Semantics) {
  EXPECT_TRUE(TriggerFires(Trigger::kOnSuccess, true));
  EXPECT_FALSE(TriggerFires(Trigger::kOnSuccess, false));
  EXPECT_TRUE(TriggerFires(Trigger::kOnFailure, false));
  EXPECT_FALSE(TriggerFires(Trigger::kOnFailure, true));
  EXPECT_TRUE(TriggerFires(Trigger::kOnAny, true));
  EXPECT_TRUE(TriggerFires(Trigger::kOnAny, false));
}

TEST(ResolveValue, VarIndirection) {
  TestRig rig;
  EXPECT_EQ(ResolveValue("plain", &rig.state).value(), "plain");
  EXPECT_FALSE(ResolveValue("var:missing", &rig.state).has_value());
  rig.state.SetVariable("limit", "500");
  EXPECT_EQ(ResolveValue("var:limit", &rig.state).value(), "500");
  EXPECT_FALSE(ResolveValue("var:x", nullptr).has_value());
}

TEST(ExpandPlaceholders, IpAndUser) {
  auto ctx = MakeContext("9.8.7.6");
  EXPECT_EQ(ExpandPlaceholders("failed:%ip", ctx), "failed:9.8.7.6");
  EXPECT_EQ(ExpandPlaceholders("u:%user", ctx), "u:anonymous");
  ctx.user = "alice";
  EXPECT_EQ(ExpandPlaceholders("u:%user", ctx), "u:alice");
}

TEST(ParseCmpOp, Operators) {
  EXPECT_EQ(ParseCmpOp(">=5").op, CmpOp::kGe);
  EXPECT_EQ(ParseCmpOp(">=5").rest, "5");
  EXPECT_EQ(ParseCmpOp("<=x").op, CmpOp::kLe);
  EXPECT_EQ(ParseCmpOp("!=a").op, CmpOp::kNe);
  EXPECT_EQ(ParseCmpOp(">low").op, CmpOp::kGt);
  EXPECT_EQ(ParseCmpOp("<high").op, CmpOp::kLt);
  EXPECT_EQ(ParseCmpOp("=high").op, CmpOp::kEq);
  EXPECT_EQ(ParseCmpOp("bare").op, CmpOp::kEq);
  EXPECT_EQ(ParseCmpOp("bare").rest, "bare");
}

// --- threat level -------------------------------------------------------------

class ThreatCondTest : public ::testing::Test {
 protected:
  TestRig rig_;
  core::CondRoutine routine_ = MakeThreatLevelRoutine({});

  Tristate Eval(const std::string& value) {
    auto ctx = MakeContext();
    return routine_(MakeCond("pre_cond_system_threat_level", "local", value),
                    ctx, rig_.services)
        .status;
  }
};

TEST_F(ThreatCondTest, EqualityAndOrdering) {
  rig_.state.SetThreatLevel(ThreatLevel::kLow);
  EXPECT_EQ(Eval("=low"), Tristate::kYes);
  EXPECT_EQ(Eval("=high"), Tristate::kNo);
  EXPECT_EQ(Eval(">low"), Tristate::kNo);

  rig_.state.SetThreatLevel(ThreatLevel::kMedium);
  EXPECT_EQ(Eval(">low"), Tristate::kYes);
  EXPECT_EQ(Eval("<high"), Tristate::kYes);
  EXPECT_EQ(Eval(">=medium"), Tristate::kYes);

  rig_.state.SetThreatLevel(ThreatLevel::kHigh);
  EXPECT_EQ(Eval("=high"), Tristate::kYes);
  EXPECT_EQ(Eval("!=low"), Tristate::kYes);
  EXPECT_EQ(Eval("<=medium"), Tristate::kNo);
}

TEST_F(ThreatCondTest, BadLiteralFails) {
  EXPECT_EQ(Eval("=catastrophic"), Tristate::kNo);
}

TEST_F(ThreatCondTest, VarIndirection) {
  rig_.state.SetThreatLevel(ThreatLevel::kMedium);
  rig_.state.SetVariable("lockdown_at", "medium");
  EXPECT_EQ(Eval(">=var:lockdown_at"), Tristate::kYes);
  auto ctx = MakeContext();
  auto out = routine_(MakeCond("pre_cond_system_threat_level", "local",
                               ">=var:unset_var"),
                      ctx, rig_.services);
  EXPECT_FALSE(out.evaluated);
}

TEST_F(ThreatCondTest, NoStateMeansUnevaluated) {
  core::EvalServices bare;
  auto ctx = MakeContext();
  auto out = routine_(MakeCond("pre_cond_system_threat_level", "local", "=low"),
                      ctx, bare);
  EXPECT_EQ(out.status, Tristate::kMaybe);
  EXPECT_FALSE(out.evaluated);
}

// --- time window ----------------------------------------------------------------

class TimeCondTest : public ::testing::Test {
 protected:
  TestRig rig_;  // clock starts at 12:00:00 UTC
  core::CondRoutine routine_ = MakeTimeWindowRoutine({});

  Tristate Eval(const std::string& value) {
    auto ctx = MakeContext();
    return routine_(MakeCond("pre_cond_time", "local", value), ctx,
                    rig_.services)
        .status;
  }
};

TEST_F(TimeCondTest, InsideAndOutside) {
  EXPECT_EQ(Eval("09:00-17:00"), Tristate::kYes);
  EXPECT_EQ(Eval("13:00-17:00"), Tristate::kNo);
  EXPECT_EQ(Eval("00:00-12:00"), Tristate::kNo);  // [start, end)
  EXPECT_EQ(Eval("12:00-12:01"), Tristate::kYes);
}

TEST_F(TimeCondTest, MultipleWindows) {
  EXPECT_EQ(Eval("00:00-01:00 11:30-12:30"), Tristate::kYes);
  EXPECT_EQ(Eval("00:00-01:00 02:00-03:00"), Tristate::kNo);
}

TEST_F(TimeCondTest, MidnightWrap) {
  EXPECT_EQ(Eval("22:00-06:00"), Tristate::kNo);  // noon is outside
  rig_.clock.Advance(12LL * util::kMicrosPerHour);  // now 00:00
  EXPECT_EQ(Eval("22:00-06:00"), Tristate::kYes);
}

TEST_F(TimeCondTest, MalformedWindowFails) {
  EXPECT_EQ(Eval("not-a-window"), Tristate::kNo);
  EXPECT_EQ(Eval("25:00-26:00"), Tristate::kNo);
}

TEST_F(TimeCondTest, AdaptiveVarWindow) {
  rig_.state.SetVariable("hours", "11:00-13:00");
  EXPECT_EQ(Eval("var:hours"), Tristate::kYes);
  rig_.state.SetVariable("hours", "14:00-15:00");
  EXPECT_EQ(Eval("var:hours"), Tristate::kNo);
}

// --- location ---------------------------------------------------------------------

TEST(LocationCond, CidrLists) {
  TestRig rig;
  auto routine = MakeLocationRoutine({});
  auto inside = MakeContext("10.0.0.5");
  auto outside = MakeContext("192.168.1.1");
  auto cond = MakeCond("pre_cond_location", "local", "10.0.0.0/8 172.16.0.0/12");
  EXPECT_EQ(routine(cond, inside, rig.services).status, Tristate::kYes);
  EXPECT_EQ(routine(cond, outside, rig.services).status, Tristate::kNo);
}

TEST(LocationCond, VarIndirection) {
  TestRig rig;
  auto routine = MakeLocationRoutine({});
  auto ctx = MakeContext("10.0.0.5");
  rig.state.SetVariable("allowed_nets", "10.0.0.0/8");
  EXPECT_EQ(routine(MakeCond("pre_cond_location", "local", "var:allowed_nets"),
                    ctx, rig.services)
                .status,
            Tristate::kYes);
  auto out = routine(MakeCond("pre_cond_location", "local", "var:nope"), ctx,
                     rig.services);
  EXPECT_FALSE(out.evaluated);
}

}  // namespace
}  // namespace gaa::cond
