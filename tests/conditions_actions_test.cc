#include <gtest/gtest.h>

#include "conditions/builtin.h"
#include "testing/helpers.h"

namespace gaa::cond {
namespace {

using gaa::testing::MakeCond;
using gaa::testing::MakeContext;
using gaa::testing::TestRig;
using util::Tristate;

class NotifyTest : public ::testing::Test {
 protected:
  TestRig rig_;
  core::CondRoutine routine_ = MakeNotifyRoutine(
      {{"recipient.sysadmin", "sysadmin@example.org"}});
};

TEST_F(NotifyTest, FiresOnFailureTrigger) {
  auto ctx = MakeContext("203.0.113.9", "/cgi-bin/phf");
  ctx.request_granted = false;  // denied request
  auto out = routine_(
      MakeCond("rr_cond_notify", "local", "on:failure/sysadmin/info:cgiexploit"),
      ctx, rig_.services);
  EXPECT_EQ(out.status, Tristate::kYes);
  ASSERT_EQ(rig_.notifier.sent_count(), 1u);
  auto sent = rig_.notifier.Sent();
  EXPECT_EQ(sent[0].recipient, "sysadmin@example.org");  // alias resolved
  EXPECT_NE(sent[0].subject.find("cgiexploit"), std::string::npos);
  EXPECT_NE(sent[0].body.find("203.0.113.9"), std::string::npos);
}

TEST_F(NotifyTest, SkipsWhenTriggerDoesNotMatch) {
  auto ctx = MakeContext();
  ctx.request_granted = true;  // granted, but trigger wants failure
  auto out = routine_(
      MakeCond("rr_cond_notify", "local", "on:failure/sysadmin/info:x"), ctx,
      rig_.services);
  EXPECT_EQ(out.status, Tristate::kYes);
  EXPECT_EQ(rig_.notifier.sent_count(), 0u);
}

TEST_F(NotifyTest, DeliveryFailureFailsCondition) {
  rig_.notifier.SetFailing(true);
  auto ctx = MakeContext();
  ctx.request_granted = false;
  auto out = routine_(
      MakeCond("rr_cond_notify", "local", "on:failure/sysadmin/info:x"), ctx,
      rig_.services);
  EXPECT_EQ(out.status, Tristate::kNo);
}

TEST_F(NotifyTest, NoNotifierServiceFailsCondition) {
  core::EvalServices bare;
  auto ctx = MakeContext();
  ctx.request_granted = false;
  auto out = routine_(
      MakeCond("rr_cond_notify", "local", "on:failure/sysadmin/info:x"), ctx,
      bare);
  EXPECT_EQ(out.status, Tristate::kNo);
}

TEST_F(NotifyTest, PostPhaseUsesOperationOutcome) {
  auto ctx = MakeContext();
  ctx.stats.succeeded = false;  // op failed; no request_granted set
  routine_(MakeCond("post_cond_notify", "local", "on:failure/sysadmin/info:op"),
           ctx, rig_.services);
  EXPECT_EQ(rig_.notifier.sent_count(), 1u);
}

class UpdateLogTest : public ::testing::Test {
 protected:
  TestRig rig_;
  core::CondRoutine routine_ = MakeUpdateLogRoutine({});
};

TEST_F(UpdateLogTest, AddsClientIpToGroup) {
  // The §7.2 response: add the suspicious source to BadGuys.
  auto ctx = MakeContext("203.0.113.9");
  ctx.request_granted = false;
  auto out = routine_(
      MakeCond("rr_cond_update_log", "local", "on:failure/BadGuys/info:ip"),
      ctx, rig_.services);
  EXPECT_EQ(out.status, Tristate::kYes);
  EXPECT_TRUE(rig_.state.GroupContains("BadGuys", "203.0.113.9"));
  // And it audited the blacklist change.
  EXPECT_EQ(rig_.audit.CountCategory("blacklist"), 1u);
}

TEST_F(UpdateLogTest, AddsUserWhenRequested) {
  auto ctx = MakeContext();
  ctx.user = "mallory";
  ctx.authenticated = true;
  ctx.request_granted = false;
  routine_(MakeCond("rr_cond_update_log", "local", "on:failure/Banned/info:user"),
           ctx, rig_.services);
  EXPECT_TRUE(rig_.state.GroupContains("Banned", "mallory"));
}

TEST_F(UpdateLogTest, NotTriggeredLeavesGroupAlone) {
  auto ctx = MakeContext("203.0.113.9");
  ctx.request_granted = true;
  routine_(MakeCond("rr_cond_update_log", "local", "on:failure/BadGuys/info:ip"),
           ctx, rig_.services);
  EXPECT_FALSE(rig_.state.GroupContains("BadGuys", "203.0.113.9"));
}

TEST_F(UpdateLogTest, MissingGroupFails) {
  auto ctx = MakeContext();
  ctx.request_granted = false;
  EXPECT_EQ(routine_(MakeCond("rr_cond_update_log", "local", "on:failure/"),
                     ctx, rig_.services)
                .status,
            Tristate::kNo);
}

class AuditCondTest : public ::testing::Test {
 protected:
  TestRig rig_;
  core::CondRoutine routine_ = MakeAuditRoutine({});
};

TEST_F(AuditCondTest, RecordsGrantAndDeny) {
  auto ctx = MakeContext("10.0.0.1", "/private/report.html");
  ctx.request_granted = true;
  routine_(MakeCond("rr_cond_audit", "local", "on:any/access"), ctx,
           rig_.services);
  ctx.request_granted = false;
  routine_(MakeCond("rr_cond_audit", "local", "on:any/access"), ctx,
           rig_.services);
  auto records = rig_.audit.ByCategory("access");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_NE(records[0].message.find("GRANT"), std::string::npos);
  EXPECT_NE(records[1].message.find("DENY"), std::string::npos);
  EXPECT_NE(records[1].message.find("/private/report.html"),
            std::string::npos);
}

TEST_F(AuditCondTest, NoSinkFails) {
  core::EvalServices bare;
  auto ctx = MakeContext();
  ctx.request_granted = true;
  EXPECT_EQ(routine_(MakeCond("rr_cond_audit", "local", "on:any/x"), ctx,
                     bare)
                .status,
            Tristate::kNo);
}

class RecordEventTest : public ::testing::Test {
 protected:
  TestRig rig_;
  core::CondRoutine routine_ = MakeRecordEventRoutine({});
};

TEST_F(RecordEventTest, RecordsWithPlaceholderKey) {
  auto ctx = MakeContext("10.9.8.7");
  ctx.request_granted = false;
  routine_(MakeCond("rr_cond_record_event", "local", "on:failure/probe:%ip/30"),
           ctx, rig_.services);
  EXPECT_EQ(rig_.state.CountEvents("probe:10.9.8.7",
                                   30 * util::kMicrosPerSecond),
            1u);
}

TEST_F(RecordEventTest, PairsWithThresholdCondition) {
  // record_event on failures + threshold pre-condition == the paper's
  // "number of failed login attempts within a given period" detector.
  auto record = MakeRecordEventRoutine({});
  auto threshold = MakeThresholdRoutine({});
  auto ctx = MakeContext("203.0.113.5");
  auto thr_cond = MakeCond("pre_cond_threshold", "local", "login:%ip 3 60");
  auto rec_cond = MakeCond("rr_cond_record_event", "local",
                           "on:failure/login:%ip/60");
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(threshold(thr_cond, ctx, rig_.services).status, Tristate::kYes)
        << "attempt " << i;
    ctx.request_granted = false;
    record(rec_cond, ctx, rig_.services);
    ctx.request_granted.reset();
  }
  EXPECT_EQ(threshold(thr_cond, ctx, rig_.services).status, Tristate::kNo);
}

}  // namespace
}  // namespace gaa::cond
