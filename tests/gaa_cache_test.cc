#include "gaa/cache.h"

#include <gtest/gtest.h>

#include "eacl/parser.h"

namespace gaa::core {
namespace {

eacl::ComposedPolicy MakePolicy(const std::string& text) {
  auto parsed = eacl::ParseEacl(text);
  EXPECT_TRUE(parsed.ok());
  return eacl::Compose({std::move(parsed).take()}, {});
}

TEST(PolicyCache, MissThenHit) {
  PolicyCache cache(4);
  EXPECT_FALSE(cache.Get("/a", 1).has_value());
  cache.Put("/a", 1, MakePolicy("pos_access_right apache *\n"));
  auto hit = cache.Get("/a", 1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->TotalEntries(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PolicyCache, StaleVersionIsMissAndEvicts) {
  PolicyCache cache(4);
  cache.Put("/a", 1, MakePolicy("pos_access_right apache *\n"));
  EXPECT_FALSE(cache.Get("/a", 2).has_value());
  EXPECT_EQ(cache.size(), 0u);  // stale entry evicted
}

TEST(PolicyCache, LruEviction) {
  PolicyCache cache(2);
  cache.Put("/a", 1, MakePolicy("pos_access_right apache *\n"));
  cache.Put("/b", 1, MakePolicy("pos_access_right apache *\n"));
  // Touch /a so /b becomes the LRU victim.
  EXPECT_TRUE(cache.Get("/a", 1).has_value());
  cache.Put("/c", 1, MakePolicy("pos_access_right apache *\n"));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Get("/a", 1).has_value());
  EXPECT_FALSE(cache.Get("/b", 1).has_value());
  EXPECT_TRUE(cache.Get("/c", 1).has_value());
}

TEST(PolicyCache, PutSameKeyUpdates) {
  PolicyCache cache(2);
  cache.Put("/a", 1, MakePolicy("pos_access_right apache *\n"));
  cache.Put("/a", 2,
            MakePolicy("pos_access_right apache *\npos_access_right x y\n"));
  EXPECT_EQ(cache.size(), 1u);
  auto hit = cache.Get("/a", 2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->TotalEntries(), 2u);
}

TEST(PolicyCache, ZeroCapacityNeverStores) {
  PolicyCache cache(0);
  cache.Put("/a", 1, MakePolicy("pos_access_right apache *\n"));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get("/a", 1).has_value());
}

TEST(PolicyCache, Clear) {
  PolicyCache cache(4);
  cache.Put("/a", 1, MakePolicy("pos_access_right apache *\n"));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get("/a", 1).has_value());
}

}  // namespace
}  // namespace gaa::core
