#include "http/htpasswd.h"

#include <gtest/gtest.h>

namespace gaa::http {
namespace {

TEST(HtpasswdStore, SetCheckRemove) {
  HtpasswdStore store;
  store.SetUser("alice", "wonder");
  EXPECT_TRUE(store.Check("alice", "wonder"));
  EXPECT_FALSE(store.Check("alice", "wrong"));
  EXPECT_FALSE(store.Check("bob", "wonder"));
  EXPECT_TRUE(store.HasUser("alice"));
  EXPECT_FALSE(store.HasUser("bob"));
  EXPECT_TRUE(store.RemoveUser("alice"));
  EXPECT_FALSE(store.RemoveUser("alice"));
  EXPECT_FALSE(store.Check("alice", "wonder"));
}

TEST(HtpasswdStore, ReplacePassword) {
  HtpasswdStore store;
  store.SetUser("alice", "old");
  store.SetUser("alice", "new");
  EXPECT_FALSE(store.Check("alice", "old"));
  EXPECT_TRUE(store.Check("alice", "new"));
  EXPECT_EQ(store.size(), 1u);
}

TEST(HtpasswdStore, PasswordsAreNotStoredInPlaintext) {
  HtpasswdStore store;
  store.SetUser("alice", "hunter2");
  std::string serialized = store.Serialize();
  EXPECT_EQ(serialized.find("hunter2"), std::string::npos);
  EXPECT_NE(serialized.find("alice:"), std::string::npos);
}

TEST(HtpasswdStore, SerializeParseRoundTrip) {
  HtpasswdStore store;
  store.SetUser("alice", "wonder");
  store.SetUser("bob", "builder");
  auto parsed = HtpasswdStore::Parse(store.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().Check("alice", "wonder"));
  EXPECT_TRUE(parsed.value().Check("bob", "builder"));
  EXPECT_FALSE(parsed.value().Check("alice", "builder"));
}

TEST(HtpasswdStore, ParseSkipsCommentsAndBlanks) {
  auto parsed = HtpasswdStore::Parse("# comment\n\nalice:00$11\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().HasUser("alice"));
}

TEST(HtpasswdStore, ParseRejectsMalformedLines) {
  EXPECT_FALSE(HtpasswdStore::Parse("nocolon\n").ok());
  EXPECT_FALSE(HtpasswdStore::Parse(":empty-user\n").ok());
}

TEST(HtpasswdStore, DifferentUsersDifferentHashes) {
  // Per-user salting: same password, different stored entries.
  HtpasswdStore store;
  store.SetUser("alice", "same");
  store.SetUser("bob", "same");
  std::string s = store.Serialize();
  auto alice_pos = s.find("alice:");
  auto bob_pos = s.find("bob:");
  ASSERT_NE(alice_pos, std::string::npos);
  ASSERT_NE(bob_pos, std::string::npos);
  std::string alice_hash = s.substr(alice_pos + 6, 33);
  std::string bob_hash = s.substr(bob_pos + 4, 33);
  EXPECT_NE(alice_hash, bob_hash);
}

TEST(HtpasswdRegistry, GetOrCreateAndFind) {
  HtpasswdRegistry registry;
  EXPECT_EQ(registry.Find("staff"), nullptr);
  registry.GetOrCreate("staff").SetUser("alice", "w");
  const HtpasswdStore* store = registry.Find("staff");
  ASSERT_NE(store, nullptr);
  EXPECT_TRUE(store->Check("alice", "w"));
  // Same name returns the same store.
  registry.GetOrCreate("staff").SetUser("bob", "b");
  EXPECT_TRUE(registry.Find("staff")->Check("bob", "b"));
}

}  // namespace
}  // namespace gaa::http
