// Shared test fixtures and fakes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "audit/audit_log.h"
#include "audit/notification.h"
#include "gaa/api.h"
#include "gaa/policy_store.h"
#include "gaa/registry.h"
#include "gaa/services.h"
#include "gaa/system_state.h"
#include "util/clock.h"
#include "util/ip.h"

namespace gaa::testing {

/// IdsChannel fake that records reports and answers spoofing queries from a
/// fixed set.
class RecordingIds final : public core::IdsChannel {
 public:
  void Report(const core::IdsReport& report) override {
    reports.push_back(report);
  }
  bool SuspectedSpoofing(const std::string& source_ip) override {
    for (const auto& ip : spoofed)
      if (ip == source_ip) return true;
    return false;
  }
  std::size_t CountKind(core::ReportKind kind) const {
    std::size_t n = 0;
    for (const auto& r : reports)
      if (r.kind == kind) ++n;
    return n;
  }

  std::vector<core::IdsReport> reports;
  std::vector<std::string> spoofed;
};

/// Everything a condition/evaluation test needs, wired to a simulated clock
/// and latency-free notification.
struct TestRig {
  TestRig()
      : clock(1053345600LL * util::kMicrosPerSecond),  // 2003-05-19 12:00 UTC
        state(&clock),
        audit(&clock),
        notifier(&clock, /*delivery_latency_us=*/0) {
    services.state = &state;
    services.clock = &clock;
    services.notifier = &notifier;
    services.audit = &audit;
    services.ids = &ids;
  }

  util::SimulatedClock clock;
  core::SystemState state;
  audit::AuditLog audit;
  audit::SimulatedSmtpNotifier notifier;
  RecordingIds ids;
  core::EvalServices services;
};

/// A request context with sensible defaults for condition tests.
inline core::RequestContext MakeContext(
    const std::string& client_ip = "10.0.0.1",
    const std::string& object = "/index.html",
    const std::string& operation = "GET") {
  core::RequestContext ctx;
  ctx.application = "apache";
  ctx.operation = operation;
  ctx.object = object;
  ctx.raw_url = object;
  ctx.client_ip = util::Ipv4Address::Parse(client_ip).value();
  return ctx;
}

inline eacl::Condition MakeCond(const std::string& type,
                                const std::string& def_auth,
                                const std::string& value) {
  return eacl::Condition{type, def_auth, value};
}

}  // namespace gaa::testing
