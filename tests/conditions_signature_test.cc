#include <gtest/gtest.h>

#include "conditions/builtin.h"
#include "testing/helpers.h"

namespace gaa::cond {
namespace {

using gaa::testing::MakeCond;
using gaa::testing::MakeContext;
using gaa::testing::TestRig;
using util::Tristate;

class SignatureTest : public ::testing::Test {
 protected:
  TestRig rig_;
  core::CondRoutine routine_ =
      MakeGlobSignatureRoutine({{"attack_type", "cgi_exploit"},
                                {"severity", "8"}});
};

TEST_F(SignatureTest, MatchesPhfProbe) {
  auto ctx = MakeContext("203.0.113.9", "/cgi-bin/phf");
  ctx.raw_url = "/cgi-bin/phf?Qalias=x%0a/bin/cat%20/etc/passwd";
  auto out = routine_(MakeCond("pre_cond_regex", "gnu", "*phf* *test-cgi*"),
                      ctx, rig_.services);
  EXPECT_EQ(out.status, Tristate::kYes);
}

TEST_F(SignatureTest, NoMatchOnBenignRequest) {
  auto ctx = MakeContext("10.0.0.1", "/index.html");
  auto out = routine_(MakeCond("pre_cond_regex", "gnu", "*phf* *test-cgi*"),
                      ctx, rig_.services);
  EXPECT_EQ(out.status, Tristate::kNo);
  EXPECT_TRUE(rig_.ids.reports.empty());
}

TEST_F(SignatureTest, MatchReportsDetectedAttackToIds) {
  auto ctx = MakeContext("203.0.113.9", "/cgi-bin/test-cgi");
  ctx.raw_url = "/cgi-bin/test-cgi?*";
  routine_(MakeCond("pre_cond_regex", "gnu", "*test-cgi*"), ctx,
           rig_.services);
  ASSERT_EQ(rig_.ids.reports.size(), 1u);
  const auto& report = rig_.ids.reports[0];
  EXPECT_EQ(report.kind, core::ReportKind::kDetectedAttack);
  EXPECT_EQ(report.attack_type, "cgi_exploit");
  EXPECT_EQ(report.severity, 8);
  EXPECT_EQ(report.source_ip, "203.0.113.9");
}

TEST_F(SignatureTest, QueryIsPartOfSubject) {
  auto ctx = MakeContext("10.0.0.1", "/cgi-bin/search");
  ctx.raw_url = "/cgi-bin/search";
  ctx.query = "q=phf-manual";
  auto out = routine_(MakeCond("pre_cond_regex", "gnu", "*phf*"), ctx,
                      rig_.services);
  EXPECT_EQ(out.status, Tristate::kYes);
}

TEST_F(SignatureTest, SlashDosSignature) {
  auto ctx = MakeContext("203.0.113.9", "/");
  ctx.raw_url = "/" + std::string(40, '/');
  EXPECT_EQ(routine_(MakeCond("pre_cond_regex", "gnu",
                              "*///////////////////*"),
                     ctx, rig_.services)
                .status,
            Tristate::kYes);
}

TEST_F(SignatureTest, NimdaPercentSignature) {
  auto ctx = MakeContext("203.0.113.9", "/scripts/cmd.exe");
  ctx.raw_url = "/scripts/..%255c..%255cwinnt/system32/cmd.exe?/c+dir";
  EXPECT_EQ(routine_(MakeCond("pre_cond_regex", "gnu", "*%*"), ctx,
                     rig_.services)
                .status,
            Tristate::kYes);
}

// --- expr ---------------------------------------------------------------------

class ExprTest : public ::testing::Test {
 protected:
  TestRig rig_;
  core::CondRoutine routine_ = MakeExprRoutine({});
};

TEST_F(ExprTest, CgiInputLength) {
  auto ctx = MakeContext("10.0.0.1", "/cgi-bin/search");
  ctx.query = std::string(1200, 'A');
  // The paper's buffer-overflow detector: input longer than 1000.
  EXPECT_EQ(routine_(MakeCond("pre_cond_expr", "local",
                              "cgi_input_length >1000"),
                     ctx, rig_.services)
                .status,
            Tristate::kYes);
  ctx.query = "q=hello";
  EXPECT_EQ(routine_(MakeCond("pre_cond_expr", "local",
                              "cgi_input_length >1000"),
                     ctx, rig_.services)
                .status,
            Tristate::kNo);
}

TEST_F(ExprTest, SlashCountAndUrlLength) {
  auto ctx = MakeContext("10.0.0.1", "/a/b");
  ctx.raw_url = "/////////a";
  EXPECT_EQ(routine_(MakeCond("pre_cond_expr", "local", "slash_count >=9"),
                     ctx, rig_.services)
                .status,
            Tristate::kYes);
  EXPECT_EQ(routine_(MakeCond("pre_cond_expr", "local", "url_length <100"),
                     ctx, rig_.services)
                .status,
            Tristate::kYes);
}

TEST_F(ExprTest, RequestParamField) {
  auto ctx = MakeContext();
  ctx.AddParam("header_count", "apache", "150");
  EXPECT_EQ(routine_(MakeCond("pre_cond_expr", "local", "header_count >100"),
                     ctx, rig_.services)
                .status,
            Tristate::kYes);
}

TEST_F(ExprTest, MissingFieldIsUnevaluated) {
  auto ctx = MakeContext();
  auto out = routine_(MakeCond("pre_cond_expr", "local", "no_such_field >1"),
                      ctx, rig_.services);
  EXPECT_EQ(out.status, Tristate::kMaybe);
  EXPECT_FALSE(out.evaluated);
}

TEST_F(ExprTest, AdaptiveThresholdViaVar) {
  // The IDS tightens gaa.max_cgi_input as the threat level rises (§3).
  auto ctx = MakeContext();
  ctx.query = std::string(600, 'B');
  rig_.state.SetVariable("gaa.max_cgi_input", "1000");
  EXPECT_EQ(routine_(MakeCond("pre_cond_expr", "local",
                              "cgi_input_length >var:gaa.max_cgi_input"),
                     ctx, rig_.services)
                .status,
            Tristate::kNo);
  rig_.state.SetVariable("gaa.max_cgi_input", "500");
  EXPECT_EQ(routine_(MakeCond("pre_cond_expr", "local",
                              "cgi_input_length >var:gaa.max_cgi_input"),
                     ctx, rig_.services)
                .status,
            Tristate::kYes);
}

TEST_F(ExprTest, MalformedValueFails) {
  auto ctx = MakeContext();
  EXPECT_EQ(routine_(MakeCond("pre_cond_expr", "local", ""), ctx,
                     rig_.services)
                .status,
            Tristate::kNo);
  EXPECT_EQ(routine_(MakeCond("pre_cond_expr", "local",
                              "cgi_input_length >abc"),
                     ctx, rig_.services)
                .status,
            Tristate::kNo);
}

// --- threshold ------------------------------------------------------------------

class ThresholdTest : public ::testing::Test {
 protected:
  TestRig rig_;
  core::CondRoutine routine_ = MakeThresholdRoutine({});
};

TEST_F(ThresholdTest, BelowLimitHoldsThenTrips) {
  auto ctx = MakeContext("10.0.0.1");
  auto cond = MakeCond("pre_cond_threshold", "local", "failed_auth:%ip 3 60");
  EXPECT_EQ(routine_(cond, ctx, rig_.services).status, Tristate::kYes);
  rig_.state.RecordEvent("failed_auth:10.0.0.1", 60 * util::kMicrosPerSecond);
  rig_.state.RecordEvent("failed_auth:10.0.0.1", 60 * util::kMicrosPerSecond);
  EXPECT_EQ(routine_(cond, ctx, rig_.services).status, Tristate::kYes);
  rig_.state.RecordEvent("failed_auth:10.0.0.1", 60 * util::kMicrosPerSecond);
  EXPECT_EQ(routine_(cond, ctx, rig_.services).status, Tristate::kNo);
  // Violation was reported to the IDS (§3 item 4).
  EXPECT_EQ(rig_.ids.CountKind(core::ReportKind::kThresholdViolation), 1u);
}

TEST_F(ThresholdTest, WindowExpiryResets) {
  auto ctx = MakeContext("10.0.0.1");
  auto cond = MakeCond("pre_cond_threshold", "local", "k:%ip 1 10");
  rig_.state.RecordEvent("k:10.0.0.1", 10 * util::kMicrosPerSecond);
  EXPECT_EQ(routine_(cond, ctx, rig_.services).status, Tristate::kNo);
  rig_.clock.Advance(11 * util::kMicrosPerSecond);
  EXPECT_EQ(routine_(cond, ctx, rig_.services).status, Tristate::kYes);
}

TEST_F(ThresholdTest, PerSourceIsolation) {
  auto attacker = MakeContext("203.0.113.9");
  auto benign = MakeContext("10.0.0.1");
  auto cond = MakeCond("pre_cond_threshold", "local", "f:%ip 1 60");
  rig_.state.RecordEvent("f:203.0.113.9", 60 * util::kMicrosPerSecond);
  EXPECT_EQ(routine_(cond, attacker, rig_.services).status, Tristate::kNo);
  EXPECT_EQ(routine_(cond, benign, rig_.services).status, Tristate::kYes);
}

TEST_F(ThresholdTest, MalformedValueFails) {
  auto ctx = MakeContext();
  EXPECT_EQ(routine_(MakeCond("pre_cond_threshold", "local", "just_key"), ctx,
                     rig_.services)
                .status,
            Tristate::kNo);
  EXPECT_EQ(routine_(MakeCond("pre_cond_threshold", "local", "k x 60"), ctx,
                     rig_.services)
                .status,
            Tristate::kNo);
}

// --- redirect --------------------------------------------------------------------

TEST(RedirectCond, AlwaysUnevaluated) {
  TestRig rig;
  auto routine = MakeRedirectRoutine({});
  auto ctx = MakeContext();
  auto out = routine(MakeCond("pre_cond_redirect", "local",
                              "http://replica.example.org/"),
                     ctx, rig.services);
  EXPECT_EQ(out.status, Tristate::kMaybe);
  EXPECT_FALSE(out.evaluated);
}

}  // namespace
}  // namespace gaa::cond
