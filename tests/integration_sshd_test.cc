// Multi-application test: the same GAA-API instance (and the same
// system-wide policies) protecting an sshd-like login daemon alongside the
// web server — the genericity claim of §1/§9.
#include <gtest/gtest.h>

#include "http/doc_tree.h"
#include "integration/gaa_web_server.h"
#include "integration/sshd.h"

namespace gaa::web {
namespace {

using LoginResult = SshDaemon::LoginResult;

GaaWebServer::Options TestOptions() {
  GaaWebServer::Options options;
  options.notification_latency_us = 0;
  return options;
}

class SshdTest : public ::testing::Test {
 protected:
  SshdTest()
      : server_(http::DocTree::DemoSite(), TestOptions()),
        sshd_(&server_.api(), &server_.passwords()) {
    sshd_.AddUser("root", "toor");
    // Local policy for the sshd object: authenticated users only.
    EXPECT_TRUE(server_
                    .SetLocalPolicy("/sshd", R"(
pos_access_right sshd login
pre_cond_accessid USER sshd *
)")
                    .ok());
  }

  GaaWebServer server_;
  SshDaemon sshd_;
};

TEST_F(SshdTest, GoodLoginAccepted) {
  EXPECT_EQ(sshd_.Login("root", "toor", "10.0.0.1"), LoginResult::kAccepted);
  EXPECT_EQ(sshd_.accepted_count(), 1u);
}

TEST_F(SshdTest, BadPasswordRejectedAndCounted) {
  EXPECT_EQ(sshd_.Login("root", "wrong", "203.0.113.5"),
            LoginResult::kBadCredentials);
  EXPECT_EQ(sshd_.bad_credentials_count(), 1u);
  EXPECT_EQ(server_.state().CountEvents("failed_auth:203.0.113.5",
                                        60 * util::kMicrosPerSecond),
            1u);
}

TEST_F(SshdTest, SystemWideBlacklistAppliesToSsh) {
  // The §7.2 claim: the BadGuys blacklist lives in the system-wide policy,
  // so a host blacklisted through the *web* path is denied *ssh* too.
  ASSERT_TRUE(server_
                  .AddSystemPolicy(R"(
eacl_mode 1
neg_access_right * *
pre_cond_accessid GROUP local BadGuys
)")
                  .ok());
  ASSERT_TRUE(server_
                  .SetLocalPolicy("/", R"(
neg_access_right apache *
pre_cond_regex gnu *phf*
rr_cond_update_log local on:failure/BadGuys/info:ip
pos_access_right apache *
)")
                  .ok());

  // ssh works before the host misbehaves on the web.
  EXPECT_EQ(sshd_.Login("root", "toor", "203.0.113.9"),
            LoginResult::kAccepted);

  // The host probes the web server and gets blacklisted...
  server_.Get("/cgi-bin/phf?Qalias=x", "203.0.113.9");
  ASSERT_TRUE(server_.state().GroupContains("BadGuys", "203.0.113.9"));

  // ...and is now denied ssh even with the right password.
  EXPECT_EQ(sshd_.Login("root", "toor", "203.0.113.9"), LoginResult::kDenied);
  // Other hosts are unaffected.
  EXPECT_EQ(sshd_.Login("root", "toor", "10.0.0.1"), LoginResult::kAccepted);
}

TEST_F(SshdTest, LockdownAppliesAcrossApplications) {
  ASSERT_TRUE(server_
                  .AddSystemPolicy(R"(
eacl_mode 1
neg_access_right * *
pre_cond_system_threat_level local =high
)")
                  .ok());
  server_.state().SetThreatLevel(core::ThreatLevel::kHigh);
  EXPECT_EQ(sshd_.Login("root", "toor", "10.0.0.1"), LoginResult::kDenied);
  server_.state().SetThreatLevel(core::ThreatLevel::kLow);
  EXPECT_EQ(sshd_.Login("root", "toor", "10.0.0.1"), LoginResult::kAccepted);
}

TEST_F(SshdTest, SshPasswordGuessLockout) {
  // Gate logins on the failed-auth threshold — §1's password-guessing
  // countermeasure for ssh.
  ASSERT_TRUE(server_
                  .SetLocalPolicy("/sshd", R"(
pos_access_right sshd login
pre_cond_threshold local failed_auth:%ip 3 60
pre_cond_accessid USER sshd *
)")
                  .ok());
  // The failed attempt is recorded before policy evaluation, so the third
  // bad guess trips the threshold itself and is already denied by policy.
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(sshd_.Login("root", "guess", "203.0.113.5"),
              LoginResult::kBadCredentials);
  }
  EXPECT_EQ(sshd_.Login("root", "guess", "203.0.113.5"),
            LoginResult::kDenied);
  // Even the correct password is now locked out from that source.
  EXPECT_EQ(sshd_.Login("root", "toor", "203.0.113.5"), LoginResult::kDenied);
  // A different source is fine.
  EXPECT_EQ(sshd_.Login("root", "toor", "10.0.0.1"), LoginResult::kAccepted);
}

}  // namespace
}  // namespace gaa::web
