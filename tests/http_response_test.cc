#include "http/response.h"

#include <gtest/gtest.h>

namespace gaa::http {
namespace {

TEST(HttpResponse, SerializeBasics) {
  HttpResponse r = HttpResponse::Make(StatusCode::kOk, "hello");
  std::string text = r.Serialize();
  EXPECT_NE(text.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(text.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_NE(text.find("\r\n\r\nhello"), std::string::npos);
}

TEST(HttpResponse, DefaultBodyNamesStatus) {
  HttpResponse r = HttpResponse::Make(StatusCode::kForbidden);
  EXPECT_NE(r.body.find("403"), std::string::npos);
  EXPECT_NE(r.body.find("Forbidden"), std::string::npos);
}

TEST(HttpResponse, AuthRequiredChallenge) {
  HttpResponse r = HttpResponse::AuthRequired("staff-area");
  EXPECT_EQ(r.status, StatusCode::kUnauthorized);
  EXPECT_EQ(r.headers.at("WWW-Authenticate"), "Basic realm=\"staff-area\"");
}

TEST(HttpResponse, Redirect) {
  HttpResponse r = HttpResponse::Redirect("http://replica.example.org/x");
  EXPECT_EQ(r.status, StatusCode::kFound);
  EXPECT_EQ(r.headers.at("Location"), "http://replica.example.org/x");
}

TEST(StatusReason, Names) {
  EXPECT_STREQ(StatusReason(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusReason(StatusCode::kUnauthorized), "Unauthorized");
  EXPECT_STREQ(StatusReason(StatusCode::kForbidden), "Forbidden");
  EXPECT_STREQ(StatusReason(StatusCode::kNotFound), "Not Found");
  EXPECT_STREQ(StatusReason(StatusCode::kUriTooLong), "URI Too Long");
  EXPECT_STREQ(StatusReason(StatusCode::kServiceUnavailable),
               "Service Unavailable");
}

TEST(HttpResponse, ExplicitContentLengthNotDuplicated) {
  HttpResponse r = HttpResponse::Make(StatusCode::kOk, "abc");
  r.headers["Content-Length"] = "3";
  std::string text = r.Serialize();
  EXPECT_EQ(text.find("Content-Length"), text.rfind("Content-Length"));
}

}  // namespace
}  // namespace gaa::http
