#include "http/response.h"

#include <gtest/gtest.h>

namespace gaa::http {
namespace {

TEST(HttpResponse, SerializeBasics) {
  HttpResponse r = HttpResponse::Make(StatusCode::kOk, "hello");
  std::string text = r.Serialize();
  EXPECT_NE(text.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(text.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_NE(text.find("\r\n\r\nhello"), std::string::npos);
}

TEST(HttpResponse, DefaultBodyNamesStatus) {
  HttpResponse r = HttpResponse::Make(StatusCode::kForbidden);
  EXPECT_NE(r.body.find("403"), std::string::npos);
  EXPECT_NE(r.body.find("Forbidden"), std::string::npos);
}

TEST(HttpResponse, AuthRequiredChallenge) {
  HttpResponse r = HttpResponse::AuthRequired("staff-area");
  EXPECT_EQ(r.status, StatusCode::kUnauthorized);
  EXPECT_EQ(r.headers.at("WWW-Authenticate"), "Basic realm=\"staff-area\"");
}

TEST(HttpResponse, Redirect) {
  HttpResponse r = HttpResponse::Redirect("http://replica.example.org/x");
  EXPECT_EQ(r.status, StatusCode::kFound);
  EXPECT_EQ(r.headers.at("Location"), "http://replica.example.org/x");
}

TEST(StatusReason, Names) {
  EXPECT_STREQ(StatusReason(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusReason(StatusCode::kUnauthorized), "Unauthorized");
  EXPECT_STREQ(StatusReason(StatusCode::kForbidden), "Forbidden");
  EXPECT_STREQ(StatusReason(StatusCode::kNotFound), "Not Found");
  EXPECT_STREQ(StatusReason(StatusCode::kUriTooLong), "URI Too Long");
  EXPECT_STREQ(StatusReason(StatusCode::kServiceUnavailable),
               "Service Unavailable");
}

TEST(HttpResponse, ExplicitContentLengthNotDuplicated) {
  HttpResponse r = HttpResponse::Make(StatusCode::kOk, "abc");
  r.headers["Content-Length"] = "3";
  std::string text = r.Serialize();
  EXPECT_EQ(text.find("Content-Length"), text.rfind("Content-Length"));
}

TEST(HttpResponse, LowercaseContentLengthAlsoSuppressesAutoLength) {
  // Regression: the duplicate check was case-sensitive, so a handler
  // setting "content-length" produced two conflicting length headers —
  // exactly the framing ambiguity the transport rejects inbound.
  HttpResponse r = HttpResponse::Make(StatusCode::kOk, "abc");
  r.headers["content-length"] = "3";
  std::string text = r.SerializeHead();
  EXPECT_NE(text.find("content-length: 3\r\n"), std::string::npos);
  EXPECT_EQ(text.find("Content-Length:"), std::string::npos);
}

TEST(HttpResponse, ExplicitAndAutoLengthSerializeIdentically) {
  // The auto Content-Length is emitted at its sorted map position, so a
  // response that states its length (HEAD, 304) and one that lets the
  // serializer compute it produce byte-identical heads.
  HttpResponse autolen = HttpResponse::Make(StatusCode::kOk, "abcde");
  HttpResponse expl = HttpResponse::Make(StatusCode::kOk, "abcde");
  expl.headers["Content-Length"] = "5";
  EXPECT_EQ(autolen.SerializeHead(), expl.SerializeHead());
}

TEST(HttpResponse, BodyViewSerializesLikeOwnedBody) {
  static const std::string kBacking = "hello";
  HttpResponse owned = HttpResponse::Make(StatusCode::kOk, "hello");
  HttpResponse viewed;
  viewed.status = StatusCode::kOk;
  viewed.headers = owned.headers;
  viewed.body_view = kBacking;
  EXPECT_EQ(viewed.BodySize(), 5u);
  EXPECT_EQ(viewed.Serialize(), owned.Serialize());
  viewed.ClearBody();
  EXPECT_TRUE(viewed.BodyView().empty());
  EXPECT_EQ(viewed.BodySize(), 0u);
}

TEST(StatusReason, NotModified) {
  EXPECT_STREQ(StatusReason(StatusCode::kNotModified), "Not Modified");
}

}  // namespace
}  // namespace gaa::http
