#include "util/strings.h"

#include <gtest/gtest.h>

namespace gaa::util {
namespace {

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(Trim("  hello \t\r\n"), "hello");
  EXPECT_EQ(Trim("hello"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t "), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(Split, KeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, SingleFieldWithoutSeparator) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitWhitespace, CollapsesRuns) {
  auto parts = SplitWhitespace("  a \t b\n\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitWhitespace, EmptyAndBlank) {
  EXPECT_TRUE(SplitWhitespace("").empty());
  EXPECT_TRUE(SplitWhitespace("   \t\n").empty());
}

TEST(EqualsIgnoreCase, Basics) {
  EXPECT_TRUE(EqualsIgnoreCase("Order", "ORDER"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abcd"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(ToLowerStartsEnds, Basics) {
  EXPECT_EQ(ToLower("MiXeD123"), "mixed123");
  EXPECT_TRUE(StartsWith("pre_cond_time", "pre_cond_"));
  EXPECT_FALSE(StartsWith("pre", "pre_cond_"));
  EXPECT_TRUE(EndsWith("file.html", ".html"));
  EXPECT_FALSE(EndsWith("html", ".html"));
}

TEST(Join, Basics) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(ParseInt, AcceptsAndRejects) {
  EXPECT_EQ(ParseInt("42").value(), 42);
  EXPECT_EQ(ParseInt("-7").value(), -7);
  EXPECT_EQ(ParseInt(" 13 ").value(), 13);
  EXPECT_FALSE(ParseInt("").has_value());
  EXPECT_FALSE(ParseInt("12x").has_value());
  EXPECT_FALSE(ParseInt("4 2").has_value());
}

TEST(ParseDouble, AcceptsAndRejects) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-0.25").value(), -0.25);
  EXPECT_FALSE(ParseDouble("abc").has_value());
  EXPECT_FALSE(ParseDouble("1.2.3").has_value());
}

TEST(UrlDecode, DecodesEscapes) {
  EXPECT_EQ(UrlDecode("%2Fetc%2Fpasswd").value(), "/etc/passwd");
  EXPECT_EQ(UrlDecode("a+b").value(), "a b");
  EXPECT_EQ(UrlDecode("plain").value(), "plain");
  EXPECT_EQ(UrlDecode("x%0Ay").value(), "x\ny");
}

TEST(UrlDecode, RejectsMalformedEscapes) {
  EXPECT_FALSE(UrlDecode("%").has_value());
  EXPECT_FALSE(UrlDecode("%2").has_value());
  EXPECT_FALSE(UrlDecode("%zz").has_value());
  EXPECT_FALSE(UrlDecode("abc%").has_value());
}

TEST(CountChar, CountsSlashes) {
  EXPECT_EQ(CountChar("///a//", '/'), 5u);
  EXPECT_EQ(CountChar("", '/'), 0u);
}

TEST(ReplaceAll, Basics) {
  EXPECT_EQ(ReplaceAll("a%ip-b%ip", "%ip", "1.2.3.4"), "a1.2.3.4-b1.2.3.4");
  EXPECT_EQ(ReplaceAll("abc", "x", "y"), "abc");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");  // non-overlapping
}

TEST(IsPrintableAscii, DetectsControlBytes) {
  EXPECT_TRUE(IsPrintableAscii("GET / HTTP/1.1"));
  EXPECT_FALSE(IsPrintableAscii(std::string("a\x01b")));
  EXPECT_FALSE(IsPrintableAscii("caf\xc3\xa9"));
}

TEST(Base64, EncodeKnownVectors) {
  EXPECT_EQ(Base64Encode(""), "");
  EXPECT_EQ(Base64Encode("f"), "Zg==");
  EXPECT_EQ(Base64Encode("fo"), "Zm8=");
  EXPECT_EQ(Base64Encode("foo"), "Zm9v");
  EXPECT_EQ(Base64Encode("foobar"), "Zm9vYmFy");
  EXPECT_EQ(Base64Encode("alice:wonder"), "YWxpY2U6d29uZGVy");
}

TEST(Base64, DecodeKnownVectors) {
  EXPECT_EQ(Base64Decode("Zm9vYmFy").value(), "foobar");
  EXPECT_EQ(Base64Decode("Zg==").value(), "f");
  EXPECT_EQ(Base64Decode("").value(), "");
}

TEST(Base64, RejectsGarbage) {
  EXPECT_FALSE(Base64Decode("a").has_value());       // bad length
  EXPECT_FALSE(Base64Decode("a!aa").has_value());    // bad character
  EXPECT_FALSE(Base64Decode("=aaa").has_value());    // padding first
  EXPECT_FALSE(Base64Decode("ab=c").has_value());    // data after padding
}

// Property: decode(encode(x)) == x over assorted binary strings.
class Base64RoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(Base64RoundTrip, Identity) {
  int seed = GetParam();
  std::string data;
  for (int i = 0; i < seed * 7 + 1; ++i) {
    data.push_back(static_cast<char>((seed * 131 + i * 17) & 0xff));
  }
  auto round = Base64Decode(Base64Encode(data));
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(*round, data);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Base64RoundTrip, ::testing::Range(0, 24));

}  // namespace
}  // namespace gaa::util
