#include "eacl/parser.h"

#include <gtest/gtest.h>

#include "eacl/printer.h"
#include "util/rng.h"

namespace gaa::eacl {
namespace {

// The section 7.1 system-wide policy, verbatim (underscored syntax).
constexpr const char* kLockdownSystem = R"(
eacl_mode 1            # narrow
# EACL entry 1
neg_access_right * *
pre_cond_system_threat_level local =high
)";

// The section 7.2 local policy.
constexpr const char* kIntrusionLocal = R"(
# EACL entry 1
neg_access_right apache *
pre_cond_regex gnu *phf* *test-cgi*
rr_cond_notify local on:failure/sysadmin/info:cgiexploit
rr_cond_update_log local on:failure/BadGuys/info:ip
# EACL entry 2
pos_access_right apache *
)";

TEST(ParseEacl, LockdownSystemPolicy) {
  auto result = ParseEacl(kLockdownSystem);
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  const Eacl& eacl = result.value();
  ASSERT_TRUE(eacl.mode.has_value());
  EXPECT_EQ(*eacl.mode, CompositionMode::kNarrow);
  ASSERT_EQ(eacl.entries.size(), 1u);
  const Entry& entry = eacl.entries[0];
  EXPECT_FALSE(entry.right.positive);
  EXPECT_EQ(entry.right.def_auth, "*");
  EXPECT_EQ(entry.right.value, "*");
  ASSERT_EQ(entry.pre.size(), 1u);
  EXPECT_EQ(entry.pre[0].type, "pre_cond_system_threat_level");
  EXPECT_EQ(entry.pre[0].def_auth, "local");
  EXPECT_EQ(entry.pre[0].value, "=high");
}

TEST(ParseEacl, IntrusionLocalPolicy) {
  auto result = ParseEacl(kIntrusionLocal);
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  const Eacl& eacl = result.value();
  EXPECT_FALSE(eacl.mode.has_value());
  ASSERT_EQ(eacl.entries.size(), 2u);
  const Entry& e1 = eacl.entries[0];
  EXPECT_FALSE(e1.right.positive);
  ASSERT_EQ(e1.pre.size(), 1u);
  // Multi-signature value keeps its internal space.
  EXPECT_EQ(e1.pre[0].value, "*phf* *test-cgi*");
  ASSERT_EQ(e1.request_result.size(), 2u);
  EXPECT_EQ(e1.request_result[0].type, "rr_cond_notify");
  EXPECT_EQ(e1.request_result[1].type, "rr_cond_update_log");
  const Entry& e2 = eacl.entries[1];
  EXPECT_TRUE(e2.right.positive);
  EXPECT_TRUE(e2.pre.empty());
}

TEST(ParseEacl, AllFourBlocks) {
  auto result = ParseEacl(R"(
pos_access_right apache GET
pre_cond_time local 09:00-17:00
rr_cond_audit local on:any/access
mid_cond_cpu local 0.5
post_cond_log local on:failure/ops
)");
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  const Entry& e = result.value().entries[0];
  EXPECT_EQ(e.pre.size(), 1u);
  EXPECT_EQ(e.request_result.size(), 1u);
  EXPECT_EQ(e.mid.size(), 1u);
  EXPECT_EQ(e.post.size(), 1u);
}

TEST(ParseEacl, ModeSpellings) {
  EXPECT_EQ(*ParseEacl("eacl_mode 0").value().mode, CompositionMode::kExpand);
  EXPECT_EQ(*ParseEacl("eacl_mode expand").value().mode,
            CompositionMode::kExpand);
  EXPECT_EQ(*ParseEacl("eacl_mode narrow").value().mode,
            CompositionMode::kNarrow);
  EXPECT_EQ(*ParseEacl("eacl_mode 2").value().mode, CompositionMode::kStop);
  EXPECT_EQ(*ParseEacl("eacl_mode stop").value().mode, CompositionMode::kStop);
}

TEST(ParseEacl, EmptyPolicyIsValid) {
  auto result = ParseEacl("# nothing but comments\n\n");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().entries.empty());
}

TEST(ParseEaclErrors, ConditionBeforeEntry) {
  auto result = ParseEacl("pre_cond_time local 09:00-17:00\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, util::ErrorCode::kParseError);
  EXPECT_NE(result.error().message.find("before any entry"),
            std::string::npos);
}

TEST(ParseEaclErrors, BadMode) {
  EXPECT_FALSE(ParseEacl("eacl_mode 7").ok());
  EXPECT_FALSE(ParseEacl("eacl_mode").ok());
  EXPECT_FALSE(ParseEacl("eacl_mode 1 2").ok());
}

TEST(ParseEaclErrors, ModeAfterEntry) {
  EXPECT_FALSE(ParseEacl("pos_access_right a b\neacl_mode 1\n").ok());
}

TEST(ParseEaclErrors, DuplicateMode) {
  EXPECT_FALSE(ParseEacl("eacl_mode 1\neacl_mode 1\n").ok());
}

TEST(ParseEaclErrors, MalformedRight) {
  EXPECT_FALSE(ParseEacl("pos_access_right apache\n").ok());
  EXPECT_FALSE(ParseEacl("pos_access_right apache GET extra\n").ok());
  EXPECT_FALSE(ParseEacl("neg_access_right ap@che *\n").ok());
}

TEST(ParseEaclErrors, UnknownDirective) {
  auto result = ParseEacl("grant_all please\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("unknown directive"),
            std::string::npos);
}

TEST(ParseEaclErrors, NegativeRightRejectsMidPost) {
  // BNF: nright carries only pre and rr blocks.
  EXPECT_FALSE(
      ParseEacl("neg_access_right apache *\nmid_cond_cpu local 1\n").ok());
  EXPECT_FALSE(
      ParseEacl("neg_access_right apache *\npost_cond_log local x\n").ok());
  EXPECT_TRUE(
      ParseEacl("neg_access_right apache *\nrr_cond_audit local on:any/a\n")
          .ok());
}

TEST(ParseEaclErrors, ErrorsCarryLineNumbers) {
  auto result = ParseEacl("pos_access_right a b\n\nbogus_directive x\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("line 3"), std::string::npos);
}

TEST(PrintEacl, RoundTripsPaperPolicies) {
  for (const char* text : {kLockdownSystem, kIntrusionLocal}) {
    auto first = ParseEacl(text);
    ASSERT_TRUE(first.ok());
    std::string printed = PrintEacl(first.value());
    auto second = ParseEacl(printed);
    ASSERT_TRUE(second.ok()) << printed;
    EXPECT_EQ(first.value(), second.value()) << printed;
  }
}

// Property: print → parse is the identity on randomly generated policies.
class PrinterRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(PrinterRoundTrip, Identity) {
  util::Rng rng(GetParam());
  Eacl eacl;
  if (rng.NextBool(0.5)) {
    eacl.mode = static_cast<CompositionMode>(rng.NextBelow(3));
  }
  const char* auths[] = {"apache", "sshd", "*", "local"};
  const char* cond_types[] = {"pre_cond_time", "pre_cond_regex",
                              "rr_cond_notify", "mid_cond_cpu",
                              "post_cond_log"};
  std::size_t entries = 1 + rng.NextBelow(5);
  for (std::size_t i = 0; i < entries; ++i) {
    Entry entry;
    entry.right.positive = rng.NextBool(0.7);
    entry.right.def_auth = auths[rng.NextBelow(4)];
    entry.right.value = rng.NextBool(0.5) ? "*" : "GET";
    std::size_t conds = rng.NextBelow(4);
    for (std::size_t c = 0; c < conds; ++c) {
      Condition cond;
      cond.type = cond_types[rng.NextBelow(5)];
      auto phase = PhaseFromConditionType(cond.type).value();
      if (!entry.right.positive && (phase == CondPhase::kMid ||
                                    phase == CondPhase::kPost)) {
        continue;  // keep the policy BNF-valid
      }
      cond.def_auth = auths[rng.NextBelow(4)];
      cond.value = rng.NextBool(0.5) ? "v" + std::to_string(rng.NextBelow(10))
                                     : "a b c";
      entry.block(phase).push_back(cond);
    }
    eacl.entries.push_back(std::move(entry));
  }
  auto reparsed = ParseEacl(PrintEacl(eacl));
  ASSERT_TRUE(reparsed.ok()) << PrintEacl(eacl);
  EXPECT_EQ(reparsed.value(), eacl) << PrintEacl(eacl);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrinterRoundTrip, ::testing::Range(1, 33));

}  // namespace
}  // namespace gaa::eacl
