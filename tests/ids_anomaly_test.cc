#include "ids/anomaly.h"

#include <string>

#include <gtest/gtest.h>

#include "telemetry/metrics.h"
#include "util/rng.h"

namespace gaa::ids {
namespace {

RequestFeatures Feat(const std::string& principal, const std::string& path,
                     double qlen, double depth) {
  RequestFeatures f;
  f.principal = principal;
  f.path = path;
  f.query_length = qlen;
  f.url_depth = depth;
  return f;
}

class AnomalyTest : public ::testing::Test {
 protected:
  AnomalyTest() : clock_(0), detector_(&clock_) {}

  void TrainTypical(const std::string& principal, int n) {
    util::Rng rng(7);
    const char* paths[] = {"/index.html", "/docs/guide.html",
                           "/cgi-bin/search"};
    for (int i = 0; i < n; ++i) {
      clock_.Advance(util::kMicrosPerSecond);
      detector_.Train(Feat(principal, paths[rng.NextBelow(3)],
                           8 + static_cast<double>(rng.NextBelow(8)), 2));
    }
  }

  util::SimulatedClock clock_;
  AnomalyDetector detector_;
};

TEST(RunningStat, WelfordMeanVariance) {
  RunningStat stat;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.Add(x);
  EXPECT_DOUBLE_EQ(stat.mean, 5.0);
  EXPECT_NEAR(stat.Variance(), 4.571428, 1e-5);  // sample variance
}

TEST(RunningStat, ZScoreWithFloor) {
  RunningStat stat;
  stat.Add(10.0);
  stat.Add(10.0);  // stddev 0 -> floor applies
  EXPECT_DOUBLE_EQ(stat.ZScore(14.0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(stat.ZScore(10.0, 2.0), 0.0);
}

TEST(RunningStat, TinySampleScoresZero) {
  RunningStat stat;
  stat.Add(5.0);
  EXPECT_DOUBLE_EQ(stat.ZScore(50.0), 0.0);
}

TEST_F(AnomalyTest, ImmatureProfileNeverFlags) {
  detector_.Train(Feat("10.0.0.1", "/index.html", 10, 2));
  EXPECT_DOUBLE_EQ(detector_.Score(Feat("10.0.0.1", "/weird", 5000, 9)), 0.0);
  EXPECT_FALSE(detector_.IsAnomalous(Feat("10.0.0.1", "/weird", 5000, 9)));
}

TEST_F(AnomalyTest, UnknownPrincipalScoresZero) {
  EXPECT_DOUBLE_EQ(detector_.Score(Feat("1.2.3.4", "/x", 9999, 9)), 0.0);
}

TEST_F(AnomalyTest, TrainedProfileFlagsOutliers) {
  TrainTypical("10.0.0.1", 50);
  // Typical request: low score.
  EXPECT_FALSE(
      detector_.IsAnomalous(Feat("10.0.0.1", "/index.html", 10, 2)));
  // Buffer-overflow-sized query on a never-seen path: flagged.
  EXPECT_TRUE(
      detector_.IsAnomalous(Feat("10.0.0.1", "/cgi-bin/phf", 1200, 2)));
}

TEST_F(AnomalyTest, NoveltyAloneIsNotEnough) {
  TrainTypical("10.0.0.1", 50);
  // New path but otherwise typical: novelty weight (1.5) < threshold (3.0).
  EXPECT_FALSE(detector_.IsAnomalous(Feat("10.0.0.1", "/docs/new.html", 10, 2)));
}

TEST_F(AnomalyTest, ObserveDoesNotPoisonProfileWithAttacks) {
  TrainTypical("10.0.0.1", 50);
  std::size_t before = detector_.TrainingCount("10.0.0.1");
  double score = detector_.Observe(Feat("10.0.0.1", "/cgi-bin/phf", 1500, 2));
  EXPECT_GE(score, 3.0);
  EXPECT_EQ(detector_.TrainingCount("10.0.0.1"), before);  // not trained
  detector_.Observe(Feat("10.0.0.1", "/index.html", 10, 2));
  EXPECT_EQ(detector_.TrainingCount("10.0.0.1"), before + 1);
}

TEST_F(AnomalyTest, ProfilesAreSeparatedByPrincipal) {
  TrainTypical("10.0.0.1", 50);
  EXPECT_EQ(detector_.profile_count(), 1u);
  // The other principal has no profile; nothing is flagged for it.
  EXPECT_FALSE(detector_.IsAnomalous(Feat("10.0.0.2", "/cgi-bin/phf", 1500, 2)));
}

TEST(AnomalyLru, ProfileCountIsBoundedByMaxProfiles) {
  util::SimulatedClock clock(0);
  AnomalyDetector::Options options;
  options.max_profiles = 3;
  AnomalyDetector detector(&clock, options);
  for (int i = 0; i < 10; ++i) {
    clock.Advance(util::kMicrosPerSecond);
    detector.Train(Feat("10.0.0." + std::to_string(i), "/index.html", 10, 2));
  }
  EXPECT_EQ(detector.profile_count(), 3u);
  // The three most recently trained principals survive.
  EXPECT_EQ(detector.TrainingCount("10.0.0.9"), 1u);
  EXPECT_EQ(detector.TrainingCount("10.0.0.8"), 1u);
  EXPECT_EQ(detector.TrainingCount("10.0.0.7"), 1u);
  EXPECT_EQ(detector.TrainingCount("10.0.0.0"), 0u);
}

TEST(AnomalyLru, RetrainingRefreshesRecency) {
  util::SimulatedClock clock(0);
  AnomalyDetector::Options options;
  options.max_profiles = 2;
  AnomalyDetector detector(&clock, options);
  detector.Train(Feat("10.0.0.1", "/a", 10, 2));
  detector.Train(Feat("10.0.0.2", "/a", 10, 2));
  // Touch 10.0.0.1 again: 10.0.0.2 becomes least-recently-trained.
  clock.Advance(util::kMicrosPerSecond);
  detector.Train(Feat("10.0.0.1", "/a", 10, 2));
  detector.Train(Feat("10.0.0.3", "/a", 10, 2));
  EXPECT_EQ(detector.profile_count(), 2u);
  EXPECT_EQ(detector.TrainingCount("10.0.0.1"), 2u);
  EXPECT_EQ(detector.TrainingCount("10.0.0.3"), 1u);
  EXPECT_EQ(detector.TrainingCount("10.0.0.2"), 0u);  // evicted
}

TEST(AnomalyLru, ZeroMeansUnbounded) {
  util::SimulatedClock clock(0);
  AnomalyDetector::Options options;
  options.max_profiles = 0;
  AnomalyDetector detector(&clock, options);
  for (int i = 0; i < 200; ++i) {
    detector.Train(Feat("10.1.0." + std::to_string(i), "/a", 10, 2));
  }
  EXPECT_EQ(detector.profile_count(), 200u);
}

TEST(AnomalyLru, GaugeTracksResidentProfiles) {
  util::SimulatedClock clock(0);
  AnomalyDetector::Options options;
  options.max_profiles = 4;
  AnomalyDetector detector(&clock, options);
  telemetry::MetricRegistry registry;
  detector.AttachMetrics(&registry);
  for (int i = 0; i < 8; ++i) {
    detector.Train(Feat("10.2.0." + std::to_string(i), "/a", 10, 2));
  }
  EXPECT_EQ(registry.GetGauge("ids_anomaly_profiles")->Value(), 4);
}

}  // namespace
}  // namespace gaa::ids
