// The async structured audit stream: JSONL round-trip, rotation, backpressure
// (drop accounting), and the core contract — Record() never blocks on a slow
// sink.
#include "audit/audit_stream.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <thread>

#include "audit/audit_log.h"
#include "telemetry/metrics.h"
#include "util/clock.h"
#include "util/config.h"

namespace gaa::audit {
namespace {

AuditRecord MakeRecord(const std::string& message) {
  AuditRecord r;
  r.time_us = 42;
  r.category = "test";
  r.message = message;
  return r;
}

std::string TempPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  for (int i = 1; i <= 8; ++i) {
    std::remove((path + "." + std::to_string(i)).c_str());
  }
  return path;
}

// --- JSONL format ----------------------------------------------------------

TEST(AuditJsonl, RoundTripsAllFields) {
  AuditRecord r;
  r.time_us = 1053345600000000;
  r.category = "decision";
  r.message = "denied \"quoted\" with\nnewline and \\ backslash \x01";
  r.trace_id = 77;
  r.client = "10.1.2.3";
  r.decision = "no";
  r.policy = "local:/cgi-bin";
  r.entry = 2;
  r.condition = "pre_cond_time_window";

  auto parsed = ParseAuditJsonl(FormatAuditJsonl(r) + "\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();
  ASSERT_EQ(parsed.value().size(), 1u);
  const AuditRecord& back = parsed.value()[0];
  EXPECT_EQ(back.time_us, r.time_us);
  EXPECT_EQ(back.category, r.category);
  EXPECT_EQ(back.message, r.message);
  EXPECT_EQ(back.trace_id, r.trace_id);
  EXPECT_EQ(back.client, r.client);
  EXPECT_EQ(back.decision, r.decision);
  EXPECT_EQ(back.policy, r.policy);
  EXPECT_EQ(back.entry, r.entry);
  EXPECT_EQ(back.condition, r.condition);
}

TEST(AuditJsonl, OmitsEmptyFieldsAndParsesDefaults) {
  const std::string line = FormatAuditJsonl(MakeRecord("plain"));
  EXPECT_EQ(line.find("client"), std::string::npos);
  EXPECT_EQ(line.find("entry"), std::string::npos);

  auto parsed = ParseAuditJsonl(line);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value()[0].entry, -1);
  EXPECT_TRUE(parsed.value()[0].decision.empty());
}

TEST(AuditJsonl, MalformedLineReportsLineNumber) {
  const std::string good = FormatAuditJsonl(MakeRecord("ok"));
  auto parsed = ParseAuditJsonl(good + "\n{not json}\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("line 2"), std::string::npos);
}

TEST(AuditJsonl, IgnoresUnknownKeysForForwardCompatibility) {
  auto parsed = ParseAuditJsonl(
      "{\"ts_us\":5,\"category\":\"c\",\"message\":\"m\",\"future\":\"x\"}\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value()[0].category, "c");
}

// --- rotation --------------------------------------------------------------

TEST(RotatingFileSink, RotatesBySizeAndKeepsNewestInBasePath) {
  const std::string path = TempPath("rotate_test.jsonl");
  RotatingFileSink::Options opts;
  opts.rotate_bytes = 64;
  opts.max_rotated_files = 2;
  RotatingFileSink sink(path, opts);

  // Each line is 40 bytes: two fit under the 64-byte threshold only once.
  const std::string line(39, 'x');
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(sink.Write(line + "\n"));
  }
  sink.Sync();
  EXPECT_GE(sink.rotations(), 2u);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(path + ".1"));
  // The live file stayed under the threshold.
  EXPECT_LE(std::filesystem::file_size(path), 80u);
}

TEST(RotatingFileSink, DropsOldestBeyondMaxRotatedFiles) {
  const std::string path = TempPath("rotate_cap_test.jsonl");
  RotatingFileSink::Options opts;
  opts.rotate_bytes = 16;
  opts.max_rotated_files = 1;
  RotatingFileSink sink(path, opts);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(sink.Write("0123456789abcde\n"));
  }
  sink.Sync();
  EXPECT_TRUE(std::filesystem::exists(path + ".1"));
  EXPECT_FALSE(std::filesystem::exists(path + ".2"));
}

// --- replay after restart --------------------------------------------------

TEST(AuditPipeline, ReplayAfterRestartParsesRotatedStream) {
  const std::string path = TempPath("replay_test.jsonl");
  util::SimulatedClock clock(1'000'000);

  {
    AuditLog log(&clock);
    AuditLog::StreamOptions opts;
    // Segments of ~8 records: forces rotation mid-run while keeping all 20
    // records inside the retained window (4 rotated segments + live file).
    opts.rotate_bytes = 1024;
    opts.max_rotated_files = 4;
    log.AttachFileStream(path, opts);
    for (int i = 0; i < 20; ++i) {
      core::AuditEvent event;
      event.category = "decision";
      event.message = "record " + std::to_string(i);
      event.client = "10.0.0.1";
      event.decision = "no";
      event.policy = "system#0";
      event.entry = i % 3;
      log.Record(event);
    }
    log.Flush();
  }  // "server shutdown": writer drained and stopped

  ASSERT_TRUE(std::filesystem::exists(path + ".1"))
      << "stream never rotated; the replay below would not prove anything";

  // "Restart": read back every segment, oldest first, and reconstruct.
  std::vector<AuditRecord> replayed;
  for (int i = 4; i >= 1; --i) {
    auto text = util::ReadFileToString(path + "." + std::to_string(i));
    if (!text.ok()) continue;
    auto parsed = ParseAuditJsonl(text.value());
    ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();
    for (auto& r : parsed.value()) replayed.push_back(std::move(r));
  }
  auto text = util::ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  auto parsed = ParseAuditJsonl(text.value());
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();
  for (auto& r : parsed.value()) replayed.push_back(std::move(r));

  ASSERT_EQ(replayed.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(replayed[i].message, "record " + std::to_string(i));
    EXPECT_EQ(replayed[i].entry, i % 3);
    EXPECT_EQ(replayed[i].policy, "system#0");
  }
}

// --- backpressure ----------------------------------------------------------

/// A sink whose Write blocks until released — simulates a hung disk.
class BlockingSink : public AuditStreamSink {
 public:
  bool Write(const std::string&) override {
    std::unique_lock<std::mutex> lock(mu_);
    ++writes_started_;
    started_cv_.notify_all();
    cv_.wait(lock, [this] { return released_; });
    return true;
  }

  void WaitUntilBlocked() {
    std::unique_lock<std::mutex> lock(mu_);
    started_cv_.wait(lock, [this] { return writes_started_ > 0; });
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable started_cv_;
  int writes_started_ = 0;
  bool released_ = false;
};

TEST(AuditPipeline, RecordNeverBlocksOnSlowSink) {
  util::SimulatedClock clock(0);
  AuditLog log(&clock);
  auto sink = std::make_unique<BlockingSink>();
  BlockingSink* blocking = sink.get();
  AuditLog::StreamOptions opts;
  opts.queue_capacity = 8;
  log.AttachStream(std::move(sink), opts);

  // Jam the drain thread inside Write().
  log.Record("test", "first");
  blocking->WaitUntilBlocked();

  // With the sink wedged, a burst far beyond the queue capacity must come
  // back quickly: Record() drops, it does not wait.
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 1000; ++i) {
    log.Record("test", "burst " + std::to_string(i));
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            1000)
      << "Record() appears to block on the wedged sink";

  // Every record still reached the in-memory ring.
  EXPECT_EQ(log.size(), 1001u);
  // The overflow was dropped and accounted, not silently lost.
  EXPECT_GT(log.stream_dropped(), 0u);
  EXPECT_GE(log.file_errors(), log.stream_dropped());

  blocking->Release();
  log.Flush();
}

TEST(AuditPipeline, DropAccountingUnderFullQueue) {
  telemetry::MetricRegistry registry;
  auto sink = std::make_unique<BlockingSink>();
  BlockingSink* blocking = sink.get();
  AsyncAuditWriter::Options opts;
  opts.queue_capacity = 4;
  AsyncAuditWriter writer(std::move(sink), opts, &registry);

  ASSERT_TRUE(writer.Offer(MakeRecord("w0")));  // drain thread takes this one
  blocking->WaitUntilBlocked();
  // Fill the queue exactly, then overflow it.
  int accepted = 0, dropped = 0;
  for (int i = 0; i < 10; ++i) {
    if (writer.Offer(MakeRecord("r" + std::to_string(i)))) ++accepted;
    else ++dropped;
  }
  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(dropped, 6);
  EXPECT_EQ(writer.dropped(), 6u);
  EXPECT_EQ(
      registry.GetCounter("audit_stream_dropped_total")->Value(), 6u);

  blocking->Release();
  writer.Flush();
  EXPECT_EQ(writer.written(), 5u);  // 1 wedged + 4 queued
  EXPECT_EQ(
      registry.GetCounter("audit_stream_written_total")->Value(), 5u);
}

TEST(AuditPipeline, FlushWaitsForQueuedRecords) {
  const std::string path = TempPath("flush_test.jsonl");
  util::SimulatedClock clock(0);
  AuditLog log(&clock);
  log.AttachFileStream(path);
  for (int i = 0; i < 100; ++i) log.Record("c", "m" + std::to_string(i));
  log.Flush();
  auto text = util::ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  auto parsed = ParseAuditJsonl(text.value());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().size(), 100u);
  EXPECT_EQ(log.stream_written(), 100u);
}

}  // namespace
}  // namespace gaa::audit
