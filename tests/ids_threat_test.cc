#include "ids/threat_service.h"

#include <gtest/gtest.h>

namespace gaa::ids {
namespace {

using core::ThreatLevel;

class ThreatServiceTest : public ::testing::Test {
 protected:
  ThreatServiceTest() : clock_(0), state_(&clock_) {}

  ThreatService::Options QuickOptions() {
    ThreatService::Options opts;
    opts.window_us = 60 * util::kMicrosPerSecond;
    opts.medium_score = 10.0;
    opts.high_score = 30.0;
    opts.decay_us = 120 * util::kMicrosPerSecond;
    return opts;
  }

  util::SimulatedClock clock_;
  core::SystemState state_;
};

TEST_F(ThreatServiceTest, StartsLow) {
  ThreatService svc(&state_, &clock_, QuickOptions());
  EXPECT_EQ(svc.level(), ThreatLevel::kLow);
  EXPECT_EQ(state_.threat_level(), ThreatLevel::kLow);
}

TEST_F(ThreatServiceTest, EscalatesToMediumThenHigh) {
  ThreatService svc(&state_, &clock_, QuickOptions());
  svc.ReportAlert(6.0);
  EXPECT_EQ(svc.level(), ThreatLevel::kLow);
  svc.ReportAlert(6.0);  // score 12 >= 10
  EXPECT_EQ(svc.level(), ThreatLevel::kMedium);
  EXPECT_EQ(state_.threat_level(), ThreatLevel::kMedium);
  svc.ReportAlert(10.0);
  svc.ReportAlert(10.0);  // score 32 >= 30
  EXPECT_EQ(svc.level(), ThreatLevel::kHigh);
}

TEST_F(ThreatServiceTest, WindowScoreExpires) {
  ThreatService svc(&state_, &clock_, QuickOptions());
  svc.ReportAlert(8.0);
  EXPECT_DOUBLE_EQ(svc.WindowScore(), 8.0);
  clock_.Advance(61 * util::kMicrosPerSecond);
  EXPECT_DOUBLE_EQ(svc.WindowScore(), 0.0);
}

TEST_F(ThreatServiceTest, DecaysOneNotchPerQuietPeriod) {
  ThreatService svc(&state_, &clock_, QuickOptions());
  svc.ReportAlert(40.0);
  EXPECT_EQ(svc.level(), ThreatLevel::kHigh);
  // Quiet for one decay period: high -> medium.
  clock_.Advance(125 * util::kMicrosPerSecond);
  svc.Tick();
  EXPECT_EQ(svc.level(), ThreatLevel::kMedium);
  // Another quiet period: medium -> low.
  clock_.Advance(125 * util::kMicrosPerSecond);
  svc.Tick();
  EXPECT_EQ(svc.level(), ThreatLevel::kLow);
}

TEST_F(ThreatServiceTest, NoDecayWhileAlertsKeepComing) {
  ThreatService svc(&state_, &clock_, QuickOptions());
  svc.ReportAlert(40.0);
  EXPECT_EQ(svc.level(), ThreatLevel::kHigh);
  for (int i = 0; i < 4; ++i) {
    clock_.Advance(30 * util::kMicrosPerSecond);
    svc.ReportAlert(40.0);
  }
  EXPECT_EQ(svc.level(), ThreatLevel::kHigh);
}

TEST_F(ThreatServiceTest, ForceLevelOverrides) {
  ThreatService svc(&state_, &clock_, QuickOptions());
  svc.ForceLevel(ThreatLevel::kHigh);
  EXPECT_EQ(svc.level(), ThreatLevel::kHigh);
  EXPECT_EQ(state_.threat_level(), ThreatLevel::kHigh);
  svc.ForceLevel(ThreatLevel::kLow);
  EXPECT_EQ(svc.level(), ThreatLevel::kLow);
}

TEST(ThreatLevelParse, Names) {
  EXPECT_EQ(core::ParseThreatLevel("low"), core::ThreatLevel::kLow);
  EXPECT_EQ(core::ParseThreatLevel("MEDIUM"), core::ThreatLevel::kMedium);
  EXPECT_EQ(core::ParseThreatLevel("High"), core::ThreatLevel::kHigh);
  EXPECT_FALSE(core::ParseThreatLevel("severe").has_value());
  EXPECT_STREQ(core::ThreatLevelName(core::ThreatLevel::kMedium), "medium");
}

}  // namespace
}  // namespace gaa::ids
