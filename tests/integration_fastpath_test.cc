// Inline fast path × GAA pipeline: differential tests proving the
// memoized-decision event-loop serve is observably identical to the worker
// path — same response bytes, same audit records and EACL attribution,
// same trace span structure (plus the `transport.inline_serve` marker) —
// and that non-memoizable decisions (identity-dependent MAYBE) and policy
// reloads always fall back to the full pipeline.  Threat-fenced decisions
// memoize but die on every threat-level transition (DESIGN.md §12).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "audit/audit_log.h"
#include "http/doc_tree.h"
#include "http/request.h"
#include "http/tcp_server.h"
#include "integration/gaa_web_server.h"

namespace gaa::web {
namespace {

/// Four disjoint policy subtrees (no "/" local policy, so nothing shadows):
///   /pub      unconditional grant        -> pure terminal YES, memoized
///   /deny     unconditional denial       -> pure terminal NO, memoized
///   /auth     grant gated on a USER id   -> MAYBE for anonymous, never memoized
///   /volatile grant gated on threat level -> threat-fenced, memoized per epoch
http::DocTree FastpathSite() {
  http::DocTree tree;
  tree.AddDocument("/pub/page.html", {"<html>public</html>"});
  tree.AddDocument("/deny/page.html", {"<html>secret</html>"});
  tree.AddDocument("/auth/page.html", {"<html>members</html>"});
  tree.AddDocument("/volatile/page.html", {"<html>guarded</html>"});
  return tree;
}

class FastpathTest : public ::testing::Test {
 protected:
  FastpathTest() : gws_(FastpathSite()) {
    EXPECT_TRUE(gws_.SetLocalPolicy("/pub", "pos_access_right apache *\n").ok());
    EXPECT_TRUE(
        gws_.SetLocalPolicy("/deny", "neg_access_right apache *\n").ok());
    EXPECT_TRUE(gws_.SetLocalPolicy("/auth",
                                    "pos_access_right apache *\n"
                                    "pre_cond_accessid USER apache alice\n")
                    .ok());
    EXPECT_TRUE(
        gws_.SetLocalPolicy("/volatile",
                            "pos_access_right apache *\n"
                            "pre_cond_system_threat_level local <high\n")
            .ok());

    http::TcpServer::Options fast_options;
    fast_options.reactor_shards = 1;
    fast_ = std::make_unique<http::TcpServer>(&gws_.server(), fast_options);
    auto started = fast_->Start();
    EXPECT_TRUE(started.ok()) << started.error().ToString();

    http::TcpServer::Options slow_options = fast_options;
    slow_options.inline_fast_path = false;
    slow_ = std::make_unique<http::TcpServer>(&gws_.server(), slow_options);
    started = slow_->Start();
    EXPECT_TRUE(started.ok()) << started.error().ToString();
  }

  std::string FetchFast(const std::string& target) {
    http::TcpClient client(fast_->port());
    auto response = client.RoundTrip(http::BuildGetRequest(target));
    EXPECT_TRUE(response.ok()) << response.error().ToString();
    return response.ok() ? response.value() : std::string();
  }

  std::string FetchSlow(const std::string& target) {
    http::TcpClient client(slow_->port());
    auto response = client.RoundTrip(http::BuildGetRequest(target));
    EXPECT_TRUE(response.ok()) << response.error().ToString();
    return response.ok() ? response.value() : std::string();
  }

  static std::vector<std::string> SpanNames(
      const telemetry::RequestTrace& trace) {
    std::vector<std::string> names;
    for (const auto& span : trace.spans()) {
      names.emplace_back(span.name);
    }
    return names;
  }

  GaaWebServer gws_;
  std::unique_ptr<http::TcpServer> fast_;
  std::unique_ptr<http::TcpServer> slow_;
};

TEST_F(FastpathTest, MemoizedGrantServesInlineWithIdenticalBytes) {
  // First request on the fast server: memo is cold, goes to a worker.
  std::string first = FetchFast("/pub/page.html");
  EXPECT_EQ(fast_->inline_served(), 0u);
  // Second request: the terminal YES is memoized, served on the loop.
  std::string second = FetchFast("/pub/page.html");
  EXPECT_EQ(fast_->inline_served(), 1u);
  // Worker-only server for the same target.
  std::string worker = FetchSlow("/pub/page.html");

  EXPECT_NE(first.find("200 OK"), std::string::npos);
  EXPECT_EQ(first, second);
  EXPECT_EQ(second, worker);
}

TEST_F(FastpathTest, MemoizedDenialServesInlineWithIdenticalAuditRecords) {
  std::string first = FetchFast("/deny/page.html");   // cold -> worker
  std::string second = FetchFast("/deny/page.html");  // memo hit -> inline
  std::string worker = FetchSlow("/deny/page.html");  // worker path
  EXPECT_EQ(fast_->inline_served(), 1u);

  EXPECT_NE(first.find("403 Forbidden"), std::string::npos);
  EXPECT_EQ(first, second);
  EXPECT_EQ(second, worker);

  // Every denial is audited — inline serves included — with the same EACL
  // attribution (policy / entry / condition) as the worker path.
  auto decisions = gws_.audit_log().ByCategory("decision");
  ASSERT_EQ(decisions.size(), 3u);
  const auto& inline_rec = decisions[1];
  const auto& worker_rec = decisions[2];
  EXPECT_EQ(inline_rec.decision, worker_rec.decision);
  EXPECT_EQ(inline_rec.policy, worker_rec.policy);
  EXPECT_EQ(inline_rec.entry, worker_rec.entry);
  EXPECT_EQ(inline_rec.condition, worker_rec.condition);
  // Distinct requests keep distinct trace correlation ids.
  EXPECT_NE(inline_rec.trace_id, worker_rec.trace_id);
  EXPECT_NE(inline_rec.trace_id, 0u);
}

TEST_F(FastpathTest, IdentityDependentMaybeNeverServesInline) {
  // Anonymous requests against the USER-gated subtree resolve MAYBE ->
  // 401 challenge; MAYBE is not a terminal decision and must not memoize.
  std::string first = FetchFast("/auth/page.html");
  std::string second = FetchFast("/auth/page.html");
  EXPECT_NE(first.find("401"), std::string::npos);
  EXPECT_EQ(first, second);
  EXPECT_EQ(fast_->inline_served(), 0u);
}

TEST_F(FastpathTest, ThreatFencedDecisionMemoizesUntilLevelTransition) {
  // A literal threat-level comparison is threat-fenced (DESIGN.md §12):
  // it memoizes like a pure decision, so the second request serves inline.
  std::string first = FetchFast("/volatile/page.html");
  std::string second = FetchFast("/volatile/page.html");
  EXPECT_NE(first.find("200 OK"), std::string::npos);
  EXPECT_EQ(first, second);
  EXPECT_EQ(fast_->inline_served(), 1u);

  // A threat transition bumps the SystemState epoch, invalidating the
  // memoized YES exactly as a policy reload would: the very next request
  // falls off the inline path, re-evaluates and is denied.
  gws_.state().SetThreatLevel(core::ThreatLevel::kHigh);
  std::string under_attack = FetchFast("/volatile/page.html");
  EXPECT_EQ(under_attack.find("200 OK"), std::string::npos);
  EXPECT_EQ(fast_->inline_served(), 1u);

  // Decay back down is a transition too: the memoized lockdown denial dies
  // with the epoch and service resumes immediately.
  gws_.state().SetThreatLevel(core::ThreatLevel::kLow);
  std::string recovered = FetchFast("/volatile/page.html");
  EXPECT_NE(recovered.find("200 OK"), std::string::npos);
}

TEST_F(FastpathTest, ThreatTransitionMatchesInterpretedPathByteForByte) {
  // Differential proof for the threat→memo fence: at every step of a
  // low→high→low threat cycle, the memoizing fast server and the
  // worker-only server (which re-evaluates through the full pipeline every
  // time) return byte-identical responses.  If the epoch fence ever served
  // a stale memo, the fast bytes would diverge from the slow ones.
  auto roundtrip_both = [&] {
    std::string fast = FetchFast("/volatile/page.html");
    std::string slow = FetchSlow("/volatile/page.html");
    EXPECT_EQ(fast, slow);
    return fast;
  };
  EXPECT_NE(roundtrip_both().find("200 OK"), std::string::npos);
  EXPECT_NE(roundtrip_both().find("200 OK"), std::string::npos);  // memo hit

  gws_.state().SetThreatLevel(core::ThreatLevel::kHigh);
  EXPECT_NE(roundtrip_both().find("403 Forbidden"), std::string::npos);
  EXPECT_NE(roundtrip_both().find("403 Forbidden"), std::string::npos);

  gws_.state().SetThreatLevel(core::ThreatLevel::kLow);
  EXPECT_NE(roundtrip_both().find("200 OK"), std::string::npos);
}

TEST_F(FastpathTest, InlineTraceCarriesMarkerSpanAndSkipsQueue) {
  // Warm the memo through the worker-only server, then take one worker
  // memo-hit and one inline memo-hit: the pipeline stages must match span
  // for span (a cold request would differ for a different reason — the
  // decision-cache hit skips the gaa.* evaluation spans on both paths).
  FetchSlow("/pub/page.html");  // cold -> worker, memoizes
  FetchSlow("/pub/page.html");  // memo hit, worker path
  FetchFast("/pub/page.html");  // memo hit, inline path
  ASSERT_EQ(fast_->inline_served(), 1u);

  auto recent = gws_.telemetry().tracer().Recent(2);
  ASSERT_EQ(recent.size(), 2u);
  auto worker_spans = SpanNames(recent[0]);
  auto inline_spans = SpanNames(recent[1]);

  auto has = [](const std::vector<std::string>& names, const char* want) {
    for (const auto& name : names) {
      if (name == want) return true;
    }
    return false;
  };
  EXPECT_TRUE(has(worker_spans, "queue"));
  EXPECT_FALSE(has(worker_spans, "transport.inline_serve"));
  EXPECT_TRUE(has(inline_spans, "transport.inline_serve"));
  EXPECT_FALSE(has(inline_spans, "queue"));

  // Modulo the transport-level spans, the pipeline ran the same stages.
  std::vector<std::string> worker_rest;
  for (const auto& name : worker_spans) {
    if (name != "queue") worker_rest.push_back(name);
  }
  std::vector<std::string> inline_rest;
  for (const auto& name : inline_spans) {
    if (name != "transport.inline_serve") inline_rest.push_back(name);
  }
  EXPECT_EQ(worker_rest, inline_rest);
}

TEST_F(FastpathTest, PolicyReloadInvalidatesMemoizedInlineDecision) {
  FetchFast("/pub/page.html");
  std::string granted = FetchFast("/pub/page.html");
  EXPECT_NE(granted.find("200 OK"), std::string::npos);
  ASSERT_EQ(fast_->inline_served(), 1u);

  // Reload the subtree policy: the store's snapshot version bumps, the
  // memoized YES is dead, and the next request must see the new denial.
  ASSERT_TRUE(
      gws_.SetLocalPolicy("/pub", "neg_access_right apache *\n").ok());
  std::string denied = FetchFast("/pub/page.html");
  EXPECT_NE(denied.find("403 Forbidden"), std::string::npos);
}

}  // namespace
}  // namespace gaa::web
