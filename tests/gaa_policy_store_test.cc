#include "gaa/policy_store.h"

#include <gtest/gtest.h>

#include "gaa/registry.h"

namespace gaa::core {
namespace {

TEST(DirectoryChain, Splits) {
  EXPECT_EQ(PolicyStore::DirectoryChain("/a/b/c.html"),
            (std::vector<std::string>{"/", "/a", "/a/b"}));
  EXPECT_EQ(PolicyStore::DirectoryChain("/index.html"),
            (std::vector<std::string>{"/"}));
  EXPECT_EQ(PolicyStore::DirectoryChain("/"),
            (std::vector<std::string>{"/"}));
  EXPECT_EQ(PolicyStore::DirectoryChain("relative"),
            (std::vector<std::string>{"/"}));
}

TEST(PolicyStore, RejectsBadPolicyText) {
  PolicyStore store;
  EXPECT_FALSE(store.AddSystemPolicy("garbage here\n").ok());
  EXPECT_FALSE(store.SetLocalPolicy("/", "pre_cond_x local v\n").ok());
  EXPECT_EQ(store.system_policy_count(), 0u);
  EXPECT_EQ(store.local_policy_count(), 0u);
}

TEST(PolicyStore, ComposesSystemAndLocal) {
  PolicyStore store;
  ASSERT_TRUE(store
                  .AddSystemPolicy("eacl_mode 1\nneg_access_right * *\n"
                                   "pre_cond_system_threat_level local =high\n")
                  .ok());
  ASSERT_TRUE(store.SetLocalPolicy("/", "pos_access_right apache *\n").ok());
  auto composed = store.PoliciesFor("/index.html");
  EXPECT_EQ(composed.mode, eacl::CompositionMode::kNarrow);
  EXPECT_EQ(composed.system_policies.size(), 1u);
  EXPECT_EQ(composed.local_policies.size(), 1u);
}

TEST(PolicyStore, LocalPoliciesFollowDirectoryChain) {
  PolicyStore store;
  ASSERT_TRUE(store.SetLocalPolicy("/", "pos_access_right apache *\n").ok());
  ASSERT_TRUE(store
                  .SetLocalPolicy("/private",
                                  "pos_access_right apache GET\n"
                                  "pre_cond_accessid USER apache *\n")
                  .ok());
  auto root_only = store.PoliciesFor("/index.html");
  EXPECT_EQ(root_only.local_policies.size(), 1u);
  auto both = store.PoliciesFor("/private/report.html");
  EXPECT_EQ(both.local_policies.size(), 2u);
  // Root policy first (root→leaf order).
  EXPECT_EQ(both.local_policies[0].entries[0].pre.size(), 0u);
  EXPECT_EQ(both.local_policies[1].entries[0].pre.size(), 1u);
}

TEST(PolicyStore, ReplaceAndRemoveLocal) {
  PolicyStore store;
  ASSERT_TRUE(store.SetLocalPolicy("/d", "pos_access_right a b\n").ok());
  ASSERT_TRUE(store.SetLocalPolicy("/d", "neg_access_right a b\n").ok());
  EXPECT_EQ(store.local_policy_count(), 1u);
  auto composed = store.PoliciesFor("/d/x");
  ASSERT_EQ(composed.local_policies.size(), 1u);
  EXPECT_FALSE(composed.local_policies[0].entries[0].right.positive);
  EXPECT_TRUE(store.RemoveLocalPolicy("/d"));
  EXPECT_FALSE(store.RemoveLocalPolicy("/d"));
  EXPECT_EQ(store.local_policy_count(), 0u);
}

TEST(PolicyStore, VersionBumpsOnEveryMutation) {
  PolicyStore store;
  auto v0 = store.version();
  ASSERT_TRUE(store.AddSystemPolicy("pos_access_right a b\n").ok());
  auto v1 = store.version();
  EXPECT_GT(v1, v0);
  ASSERT_TRUE(store.SetLocalPolicy("/", "pos_access_right a b\n").ok());
  auto v2 = store.version();
  EXPECT_GT(v2, v1);
  store.RemoveLocalPolicy("/");
  EXPECT_GT(store.version(), v2);
}

TEST(PolicyStore, FailedMutationDoesNotBumpVersion) {
  PolicyStore store;
  auto v0 = store.version();
  EXPECT_FALSE(store.AddSystemPolicy("nonsense\n").ok());
  EXPECT_EQ(store.version(), v0);
}

TEST(PolicyStore, EveryMutatorRepublishesTheSnapshotAtomically) {
  PolicyStore store;
  ConditionRegistry registry;
  store.BindEngine({&registry, nullptr, nullptr});
  ASSERT_TRUE(store.SetLocalPolicy("/", "pos_access_right apache *\n").ok());
  ASSERT_TRUE(store.AddSystemPolicy("pos_access_right a b\n").ok());
  auto s0 = store.CurrentSnapshot();
  ASSERT_NE(s0, nullptr);
  EXPECT_EQ(s0->locals().size(), 1u);
  EXPECT_EQ(s0->system().size(), 1u);

  // Regression (stale-snapshot fix): RemoveLocalPolicy republishes before
  // returning, so the published snapshot can never lag its sources.
  EXPECT_TRUE(store.RemoveLocalPolicy("/"));
  auto s1 = store.CurrentSnapshot();
  ASSERT_NE(s1, nullptr);
  EXPECT_TRUE(s1->locals().empty());
  EXPECT_GT(s1->store_version(), s0->store_version());

  // Clear() drops globals and every tenant and republishes the same way.
  ASSERT_TRUE(
      store.SetTenantLocalPolicy("t", "/", "neg_access_right a b\n").ok());
  ASSERT_NE(store.CurrentSnapshotFor("t"), nullptr);
  EXPECT_EQ(store.CurrentSnapshotFor("t")->tenant(), "t");
  store.Clear();
  auto s2 = store.CurrentSnapshot();
  ASSERT_NE(s2, nullptr);
  EXPECT_TRUE(s2->system().empty());
  EXPECT_TRUE(s2->locals().empty());
  EXPECT_EQ(store.tenant_count(), 0u);
  // The removed tenant resolves to the default namespace again.
  EXPECT_EQ(store.CurrentSnapshotFor("t")->tenant(), "");
}

TEST(PolicyStore, TenantMutationLeavesOtherTenantSnapshotsUntouched) {
  PolicyStore store;
  ConditionRegistry registry;
  store.BindEngine({&registry, nullptr, nullptr});
  ASSERT_TRUE(store.AddTenant("a").ok());
  ASSERT_TRUE(store.AddTenant("b").ok());
  auto a0 = store.CurrentSnapshotFor("a");
  auto b0 = store.CurrentSnapshotFor("b");
  ASSERT_TRUE(
      store.SetTenantLocalPolicy("a", "/", "pos_access_right x y\n").ok());
  auto a1 = store.CurrentSnapshotFor("a");
  auto b1 = store.CurrentSnapshotFor("b");
  EXPECT_NE(a1.get(), a0.get());
  ASSERT_EQ(a1->locals().size(), 1u);
  // Tenant b's snapshot object is reused verbatim — a's reload compiled and
  // published only a's namespace.
  EXPECT_EQ(b1.get(), b0.get());
}

TEST(PolicyStore, StopModeDropsLocalAtComposition) {
  PolicyStore store;
  ASSERT_TRUE(
      store.AddSystemPolicy("eacl_mode 2\npos_access_right apache *\n").ok());
  ASSERT_TRUE(store.SetLocalPolicy("/", "neg_access_right * *\n").ok());
  auto composed = store.PoliciesFor("/x");
  EXPECT_EQ(composed.mode, eacl::CompositionMode::kStop);
  EXPECT_TRUE(composed.local_policies.empty());
}

}  // namespace
}  // namespace gaa::core
