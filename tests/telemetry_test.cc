// Telemetry subsystem tests: registry primitives under concurrency,
// trace/span structure through the full GaaWebServer pipeline, the
// /__status exposition endpoint (including its policy protection), and the
// trace-id correlation across access log and audit log.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "http/doc_tree.h"
#include "http/request.h"
#include "http/response.h"
#include "http/tcp_server.h"
#include "integration/connection_stats.h"
#include "integration/gaa_web_server.h"
#include "telemetry/exposition.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace gaa {
namespace {

using telemetry::Counter;
using telemetry::Gauge;
using telemetry::Histogram;
using telemetry::MetricKind;
using telemetry::MetricRegistry;
using telemetry::RequestTrace;
using telemetry::ScopedSpan;
using telemetry::Tracer;

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("test_total");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kPerThread; ++i) counter->Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter->Value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(CounterTest, ResetZeroes) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("test_total");
  counter->Inc(42);
  counter->Reset();
  EXPECT_EQ(counter->Value(), 0u);
}

TEST(GaugeTest, SetAndAdd) {
  MetricRegistry registry;
  Gauge* gauge = registry.GetGauge("test_gauge");
  gauge->Set(7);
  gauge->Add(-10);
  EXPECT_EQ(gauge->Value(), -3);
}

TEST(HistogramTest, ConcurrentRecordsAreExact) {
  MetricRegistry registry;
  Histogram* hist = registry.GetHistogram("test_latency_us");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([hist] {
      for (int i = 0; i < kPerThread; ++i) {
        hist->Record(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  const Histogram::Snapshot snap = hist->TakeSnapshot();
  const std::uint64_t expected_count =
      static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(snap.count, expected_count);
  // Sum of 0..kPerThread-1, once per thread.
  const std::uint64_t expected_sum =
      static_cast<std::uint64_t>(kThreads) * kPerThread * (kPerThread - 1) / 2;
  EXPECT_EQ(snap.sum, expected_sum);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, expected_count);
}

TEST(HistogramTest, QuantileAndMeanSanity) {
  MetricRegistry registry;
  Histogram* hist = registry.GetHistogram("test_latency_us");
  for (int i = 1; i <= 1000; ++i) hist->Record(static_cast<std::uint64_t>(i));
  const Histogram::Snapshot snap = hist->TakeSnapshot();
  EXPECT_DOUBLE_EQ(snap.Mean(), 500.5);
  // All values land in the first few buckets of the default bounds
  // (10, 25, 50, ... µs); the quantile estimate must stay in range and
  // be monotone.
  const double p50 = snap.Quantile(0.50);
  const double p90 = snap.Quantile(0.90);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, 1000.0);
  EXPECT_GE(p90, p50);
}

TEST(HistogramTest, TracksObservedMax) {
  MetricRegistry registry;
  Histogram* hist = registry.GetHistogram("max_us");
  EXPECT_EQ(hist->Max(), 0u);
  hist->Record(7);
  hist->Record(123456);
  hist->Record(42);
  EXPECT_EQ(hist->Max(), 123456u);
  const Histogram::Snapshot snap = hist->TakeSnapshot();
  EXPECT_EQ(snap.max, 123456u);
  hist->Reset();
  EXPECT_EQ(hist->Max(), 0u);
}

TEST(HistogramTest, TailQuantilesUseObservedMaxNotBucketBound) {
  // The default bounds top out at 2.5s; values beyond that land in the
  // +Inf bucket.  Before max tracking, every tail quantile saturated at
  // the last finite bound (2'500'000) no matter how bad the outlier was —
  // the truncation this test pins the fix for.
  MetricRegistry registry;
  Histogram* hist = registry.GetHistogram("tail_us");
  for (int i = 0; i < 100; ++i) hist->Record(10'000'000);  // 10s stall
  const Histogram::Snapshot snap = hist->TakeSnapshot();
  EXPECT_GT(snap.Quantile(0.99), 2'500'000.0);
  EXPECT_LE(snap.Quantile(0.99), 10'000'000.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 10'000'000.0);
  // The observed max also caps interpolation inside finite buckets: a
  // single 30µs value in the (25, 50] bucket must never read above 30.
  Histogram* single = registry.GetHistogram("single_us");
  single->Record(30);
  EXPECT_LE(single->TakeSnapshot().Quantile(0.99), 30.0);
}

TEST(HistogramTest, LogBoundsHaveBoundedRelativeError) {
  const auto& bounds = Histogram::WideLatencyBoundsUs();
  ASSERT_GE(bounds.size(), 2u);
  EXPECT_EQ(bounds.front(), 1u);
  EXPECT_EQ(bounds.back(), 60'000'000u);
  // A manageable bucket count (the whole point of log spacing: ~26 octaves
  // x 32 sub-buckets, not 60 million linear buckets).
  EXPECT_LT(bounds.size(), 1200u);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    ASSERT_GT(bounds[i], bounds[i - 1]) << i;
    // Relative bucket width <= ~2/32: quantiles carry bounded relative
    // error across the whole 1µs..60s range.
    const double width =
        static_cast<double>(bounds[i] - bounds[i - 1]);
    EXPECT_LE(width, std::max(1.0, bounds[i - 1] * (2.0 / 32.0)) + 1e-9)
        << "bucket " << i << " too wide";
  }
}

TEST(RegistryTest, SameNameReturnsSameHandle) {
  MetricRegistry registry;
  Counter* a = registry.GetCounter("x_total", "k=\"1\"");
  Counter* b = registry.GetCounter("x_total", "k=\"1\"");
  Counter* c = registry.GetCounter("x_total", "k=\"2\"");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // A gauge with the same name is a distinct metric, not a collision.
  EXPECT_NE(static_cast<void*>(registry.GetGauge("x_total")),
            static_cast<void*>(a));
}

TEST(RegistryTest, ListAndResetAll) {
  MetricRegistry registry;
  registry.GetCounter("a_total")->Inc(5);
  registry.GetGauge("b_gauge")->Set(9);
  registry.GetHistogram("c_us")->Record(100);
  const auto entries = registry.List();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].name, "a_total");
  EXPECT_EQ(entries[1].name, "b_gauge");
  EXPECT_EQ(entries[2].name, "c_us");
  registry.ResetAll();
  EXPECT_EQ(registry.GetCounter("a_total")->Value(), 0u);
  EXPECT_EQ(registry.GetHistogram("c_us")->Count(), 0u);
  // Gauges keep their last value: they are states, not accumulations.
  EXPECT_EQ(registry.GetGauge("b_gauge")->Value(), 9);
}

TEST(RegistryTest, ConcurrentCreateAndLookup) {
  MetricRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < 200; ++i) {
        registry.GetCounter("shared_total")->Inc();
        registry.GetCounter("t" + std::to_string(t) + "_" +
                            std::to_string(i % 50) + "_total")
            ->Inc();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("shared_total")->Value(),
            static_cast<std::uint64_t>(kThreads) * 200);
  EXPECT_EQ(registry.List().size(), 1u + kThreads * 50);
}

// ---------------------------------------------------------------------------
// Traces
// ---------------------------------------------------------------------------

TEST(TraceTest, SpanNestingDepths) {
  Tracer tracer;
  auto trace = tracer.Begin();
  {
    ScopedSpan outer(trace.get(), "outer");
    {
      ScopedSpan inner(trace.get(), "inner");
    }
    ScopedSpan sibling(trace.get(), "sibling");
  }
  tracer.Finish(std::move(trace));
  const auto traces = tracer.Recent();
  ASSERT_EQ(traces.size(), 1u);
  const auto& spans = traces[0].spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[2].name, "sibling");
  EXPECT_EQ(spans[2].depth, 1);
  for (const auto& span : spans) {
    EXPECT_NE(span.end_us, 0) << span.name;
    EXPECT_GE(span.DurationUs(), 0) << span.name;
  }
}

TEST(TraceTest, NullTraceIsSafe) {
  ScopedSpan span(nullptr, "nothing");
  span.End();
  EXPECT_EQ(telemetry::TraceId(nullptr), 0u);
}

TEST(TracerTest, SamplePeriodThinsTraces) {
  Tracer tracer;
  tracer.set_sample_period(4);
  int sampled = 0;
  for (int i = 0; i < 8; ++i) {
    if (auto trace = tracer.Begin()) {
      ++sampled;
      tracer.Finish(std::move(trace));
    }
  }
  EXPECT_EQ(sampled, 2);
  tracer.set_sample_period(0);
  EXPECT_EQ(tracer.Begin(), nullptr);
}

TEST(TracerTest, RingEvictsOldest) {
  Tracer tracer(/*capacity=*/2);
  for (int i = 0; i < 3; ++i) tracer.Finish(tracer.Begin());
  const auto traces = tracer.Recent();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].id(), 2u);
  EXPECT_EQ(traces[1].id(), 3u);
  EXPECT_EQ(tracer.started(), 3u);
  EXPECT_EQ(tracer.Recent(/*limit=*/1).size(), 1u);
}

// ---------------------------------------------------------------------------
// Exposition
// ---------------------------------------------------------------------------

TEST(ExpositionTest, PrometheusText) {
  MetricRegistry registry;
  registry.GetCounter("req_total", "code=\"200\"")->Inc(3);
  registry.GetGauge("threat.level")->Set(1);
  Histogram* hist =
      registry.GetHistogram("lat_us", "", std::vector<std::uint64_t>{10, 100});
  hist->Record(5);
  hist->Record(50);
  hist->Record(5000);
  const std::string text = telemetry::RenderPrometheus(registry);
  EXPECT_NE(text.find("# TYPE req_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("req_total{code=\"200\"} 3\n"), std::string::npos);
  // Illegal name characters are sanitized for Prometheus.
  EXPECT_NE(text.find("# TYPE threat_level gauge\n"), std::string::npos);
  EXPECT_NE(text.find("threat_level 1\n"), std::string::npos);
  // Histogram buckets are cumulative and end with +Inf == count.
  EXPECT_NE(text.find("lat_us_bucket{le=\"10\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"100\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_sum 5055\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_count 3\n"), std::string::npos);
  // The tracked maximum rides along so scrapes see true tails even when
  // the largest value fell into the +Inf bucket.
  EXPECT_NE(text.find("lat_us_max 5000\n"), std::string::npos);
}

TEST(ExpositionTest, MetricsJsonCarriesTailQuantilesAndMax) {
  MetricRegistry registry;
  Histogram* hist =
      registry.GetHistogram("lat_us", "", std::vector<std::uint64_t>{10, 100});
  hist->Record(50);
  hist->Record(7000);
  const std::string json = telemetry::RenderMetricsJson(registry);
  EXPECT_NE(json.find("\"p999\":"), std::string::npos);
  EXPECT_NE(json.find("\"max\":7000"), std::string::npos);
}

TEST(ExpositionTest, TracesJson) {
  Tracer tracer;
  auto trace = tracer.Begin();
  trace->method = "GET";
  trace->target = "/a\"b";  // exercises string escaping
  trace->status = 200;
  {
    ScopedSpan span(trace.get(), "parse");
  }
  tracer.Finish(std::move(trace));
  const std::string json = telemetry::RenderTracesJson(tracer);
  EXPECT_NE(json.find("\"method\":\"GET\""), std::string::npos);
  EXPECT_NE(json.find("\"target\":\"/a\\\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"parse\""), std::string::npos);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
}

// ---------------------------------------------------------------------------
// Full pipeline
// ---------------------------------------------------------------------------

std::unique_ptr<web::GaaWebServer> MakePermissiveServer() {
  auto server = std::make_unique<web::GaaWebServer>(http::DocTree::DemoSite());
  EXPECT_TRUE(
      server->SetLocalPolicy("/", "pos_access_right apache *\n").ok());
  return server;
}

std::vector<std::string> SpanNames(const RequestTrace& trace) {
  std::vector<std::string> names;
  for (const auto& span : trace.spans()) names.emplace_back(span.name);
  return names;
}

bool Contains(const std::vector<std::string>& names, const std::string& want) {
  return std::find(names.begin(), names.end(), want) != names.end();
}

TEST(PipelineTest, RequestProducesNestedSpans) {
  auto server = MakePermissiveServer();
  auto response = server->Get("/index.html", "10.0.0.1");
  EXPECT_EQ(response.status, http::StatusCode::kOk);

  const auto traces = server->telemetry().tracer().Recent();
  ASSERT_EQ(traces.size(), 1u);
  const RequestTrace& trace = traces[0];
  EXPECT_EQ(trace.method, "GET");
  EXPECT_EQ(trace.target, "/index.html");
  EXPECT_EQ(trace.client_ip, "10.0.0.1");
  EXPECT_EQ(trace.status, 200);

  const auto names = SpanNames(trace);
  EXPECT_GE(names.size(), 5u);
  // The compiled engine's policy lookup span replaces the interpreter's
  // "gaa.policy_compose".
  for (const char* expected :
       {"parse", "access.check", "gaa.snapshot_lookup",
        "gaa.check_authorization", "handler", "respond"}) {
    EXPECT_TRUE(Contains(names, expected)) << "missing span " << expected;
  }

  // The GAA phases nest inside the access check; the pipeline spans are
  // top-level and ordered parse -> access.check -> handler -> respond.
  const auto& spans = trace.spans();
  auto find = [&](const std::string& name) {
    return std::find_if(spans.begin(), spans.end(),
                        [&](const auto& s) { return s.name == name; });
  };
  EXPECT_EQ(find("parse")->depth, 0);
  EXPECT_EQ(find("access.check")->depth, 0);
  EXPECT_GE(find("gaa.check_authorization")->depth, 1);
  EXPECT_LE(find("parse")->start_us, find("access.check")->start_us);
  EXPECT_LE(find("access.check")->start_us, find("handler")->start_us);
  EXPECT_LE(find("handler")->start_us, find("respond")->start_us);
  for (const auto& span : spans) {
    EXPECT_NE(span.end_us, 0) << "span left open: " << span.name;
  }
}

TEST(PipelineTest, StatusEndpointServesPrometheus) {
  auto server = MakePermissiveServer();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(server->Get("/index.html", "10.0.0.1").status,
              http::StatusCode::kOk);
  }
  auto response = server->Get("/__status", "10.0.0.1");
  ASSERT_EQ(response.status, http::StatusCode::kOk);
  EXPECT_NE(response.headers.at("Content-Type").find("version=0.0.4"),
            std::string::npos);
  const std::string& body = response.body;
  EXPECT_NE(body.find("# TYPE http_requests_total counter"),
            std::string::npos);
  // The scrape renders before its own request is accounted, so counts
  // reflect exactly the five completed requests.
  EXPECT_NE(body.find("http_requests_total 5\n"), std::string::npos);
  EXPECT_NE(body.find("# TYPE http_request_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(body.find("http_request_latency_us_count 5\n"),
            std::string::npos);
  EXPECT_NE(body.find("http_responses_total{code=\"200\"} 5\n"),
            std::string::npos);
  // GAA decision outcomes per right (the scrape itself was decision #6).
  EXPECT_NE(
      body.find("gaa_decisions_total{right=\"GET\",outcome=\"yes\"} 6\n"),
      std::string::npos);
  EXPECT_EQ(server->server().requests_served(), 6u);
}

TEST(PipelineTest, StatusTracesEndpointServesJson) {
  auto server = MakePermissiveServer();
  EXPECT_EQ(server->Get("/index.html", "10.0.0.9").status,
            http::StatusCode::kOk);
  auto response = server->Get("/__status/traces", "10.0.0.9");
  ASSERT_EQ(response.status, http::StatusCode::kOk);
  EXPECT_EQ(response.headers.at("Content-Type"), "application/json");
  EXPECT_NE(response.body.find("\"target\":\"/index.html\""),
            std::string::npos);
  EXPECT_NE(response.body.find("\"name\":\"parse\""), std::string::npos);
  EXPECT_NE(response.body.find("\"spans\":["), std::string::npos);
}

TEST(PipelineTest, StatusEndpointIsPolicyProtected) {
  web::GaaWebServer server(http::DocTree::DemoSite());
  // The endpoint is dispatched after the access check, so the same
  // signature idiom that blocks exploit CGIs (§7.2) locks down scrapes.
  ASSERT_TRUE(server
                  .SetLocalPolicy("/",
                                  "neg_access_right apache *\n"
                                  "pre_cond_regex gnu *__status*\n"
                                  "pos_access_right apache *\n")
                  .ok());
  EXPECT_EQ(server.Get("/__status", "10.0.0.1").status,
            http::StatusCode::kForbidden);
  EXPECT_EQ(server.Get("/__status/traces", "10.0.0.1").status,
            http::StatusCode::kForbidden);
  // Ordinary documents stay reachable.
  EXPECT_EQ(server.Get("/index.html", "10.0.0.1").status,
            http::StatusCode::kOk);
}

TEST(PipelineTest, LatencyHistogramMatchesRequestsServed) {
  auto server = MakePermissiveServer();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(server->Get("/index.html", "10.0.0.1").status,
              http::StatusCode::kOk);
  }
  // A parse failure must be accounted like any other request.
  auto bad = server->HandleText("BOGUS\r\n\r\n", "10.0.0.2");
  EXPECT_EQ(bad.status, http::StatusCode::kBadRequest);

  EXPECT_EQ(server->server().requests_served(), 4u);
  EXPECT_EQ(server->telemetry()
                .registry()
                .GetHistogram("http_request_latency_us")
                ->Count(),
            4u);
  auto counts = server->server().StatusCounts();
  EXPECT_EQ(counts[200], 3u);
  EXPECT_EQ(counts[400], 1u);
  // The malformed request also reached the IDS and was counted there.
  std::uint64_t ids_reports = 0;
  for (const auto& entry : server->telemetry().registry().List()) {
    if (entry.name == "ids_reports_total" &&
        entry.kind == MetricKind::kCounter) {
      ids_reports += entry.counter->Value();
    }
  }
  EXPECT_EQ(ids_reports, 1u);
}

TEST(PipelineTest, AccessLogAndAuditShareTraceIds) {
  web::GaaWebServer server(http::DocTree::DemoSite());
  // The §7.2 configuration: CGI exploit signatures deny and blacklist.
  ASSERT_TRUE(server
                  .AddSystemPolicy("eacl_mode 1\n"
                                   "neg_access_right * *\n"
                                   "pre_cond_accessid GROUP local BadGuys\n")
                  .ok());
  ASSERT_TRUE(server
                  .SetLocalPolicy("/",
                                  "neg_access_right apache *\n"
                                  "pre_cond_regex gnu *phf*\n"
                                  "rr_cond_update_log local "
                                  "on:failure/BadGuys/info:ip\n"
                                  "pos_access_right apache *\n")
                  .ok());
  auto response = server.Get("/cgi-bin/phf?Qalias=x", "203.0.113.7");
  EXPECT_EQ(response.status, http::StatusCode::kForbidden);

  const auto blacklist = server.audit_log().ByCategory("blacklist");
  ASSERT_FALSE(blacklist.empty());
  const std::uint64_t trace_id = blacklist.back().trace_id;
  EXPECT_NE(trace_id, 0u);

  const auto access_log = server.server().AccessLog();
  ASSERT_FALSE(access_log.empty());
  EXPECT_EQ(access_log.back().trace_id, trace_id);

  const auto traces = server.telemetry().tracer().Recent();
  auto it = std::find_if(traces.begin(), traces.end(), [&](const auto& t) {
    return t.id() == trace_id;
  });
  ASSERT_NE(it, traces.end());
  EXPECT_NE(it->target.find("/cgi-bin/phf"), std::string::npos);
  // The deny path evaluated pre-conditions and request-result actions;
  // both phases appear as spans.
  const auto names = SpanNames(*it);
  EXPECT_TRUE(Contains(names, "gaa.cond.pre"));
  EXPECT_TRUE(Contains(names, "gaa.cond.request_result"));

  // The denied decision is visible in the outcome counters.
  std::uint64_t denies = 0;
  for (const auto& entry : server.telemetry().registry().List()) {
    if (entry.name == "gaa_decisions_total" &&
        entry.labels.find("outcome=\"no\"") != std::string::npos) {
      denies += entry.counter->Value();
    }
  }
  EXPECT_EQ(denies, 1u);
}

TEST(PipelineTest, DetachedTelemetryDisablesEverything) {
  web::GaaWebServer::Options options;
  options.enable_telemetry = false;
  web::GaaWebServer server(http::DocTree::DemoSite(), options);
  ASSERT_TRUE(server.SetLocalPolicy("/", "pos_access_right apache *\n").ok());

  EXPECT_EQ(server.Get("/index.html", "10.0.0.1").status,
            http::StatusCode::kOk);
  EXPECT_EQ(server.Get("/__status", "10.0.0.1").status,
            http::StatusCode::kNotFound);

  EXPECT_EQ(server.telemetry().tracer().started(), 0u);
  EXPECT_TRUE(server.telemetry().tracer().Recent().empty());
  EXPECT_TRUE(server.telemetry().registry().List().empty());
  EXPECT_TRUE(server.server().StatusCounts().empty());
  const auto access_log = server.server().AccessLog();
  ASSERT_FALSE(access_log.empty());
  EXPECT_EQ(access_log.back().trace_id, 0u);
}

TEST(PipelineTest, TcpTransportFeedsGaugesAndTraces) {
  auto server = MakePermissiveServer();
  http::TcpServer::Options options;
  options.worker_threads = 2;
  http::TcpServer tcp(&server->server(), options);
  web::WireConnectionStats(tcp, &server->state(), "tcp.",
                           &server->telemetry().registry());
  ASSERT_TRUE(tcp.Start().ok());
  auto fetched = http::TcpFetch(tcp.port(), http::BuildGetRequest("/index.html"));
  ASSERT_TRUE(fetched.ok());

  // The stats hook runs on the event loop; wait for it to publish.
  Gauge* accepted = server->telemetry().registry().GetGauge("tcp_accepted");
  for (int i = 0; i < 500 && accepted->Value() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  tcp.Stop();
  EXPECT_GE(accepted->Value(), 1);
  EXPECT_GE(server->telemetry().registry().GetGauge("tcp_requests")->Value(),
            1);
  const std::string text =
      telemetry::RenderPrometheus(server->telemetry().registry());
  EXPECT_NE(text.find("# TYPE tcp_accepted gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tcp_requests gauge"), std::string::npos);

  // The transport began the trace, so the queue wait is a recorded span.
  const auto traces = server->telemetry().tracer().Recent();
  ASSERT_FALSE(traces.empty());
  EXPECT_TRUE(Contains(SpanNames(traces.back()), "queue"));
  EXPECT_EQ(traces.back().target, "/index.html");
}

}  // namespace
}  // namespace gaa
