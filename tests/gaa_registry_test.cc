#include "gaa/registry.h"

#include <gtest/gtest.h>

#include "testing/helpers.h"

namespace gaa::core {
namespace {

using testing::MakeCond;
using testing::MakeContext;

CondRoutine ConstantRoutine(util::Tristate status) {
  return [status](const eacl::Condition&, const RequestContext&,
                  EvalServices&) { return EvalOutcome{status, true, ""}; };
}

TEST(ConditionRegistry, ExactLookup) {
  ConditionRegistry registry;
  registry.Register("pre_cond_x", "local", ConstantRoutine(util::Tristate::kYes));
  EXPECT_NE(registry.Find("pre_cond_x", "local"), nullptr);
  EXPECT_EQ(registry.Find("pre_cond_x", "other"), nullptr);
  EXPECT_EQ(registry.Find("pre_cond_y", "local"), nullptr);
}

TEST(ConditionRegistry, WildcardFallback) {
  ConditionRegistry registry;
  registry.Register("pre_cond_x", "*", ConstantRoutine(util::Tristate::kYes));
  EXPECT_NE(registry.Find("pre_cond_x", "anything"), nullptr);
}

TEST(ConditionRegistry, ExactBeatsWildcard) {
  ConditionRegistry registry;
  registry.Register("pre_cond_x", "*", ConstantRoutine(util::Tristate::kNo));
  registry.Register("pre_cond_x", "local",
                    ConstantRoutine(util::Tristate::kYes));
  gaa::testing::TestRig rig;
  auto ctx = MakeContext();
  auto cond = MakeCond("pre_cond_x", "local", "");
  const CondRoutine* routine = registry.Find("pre_cond_x", "local");
  ASSERT_NE(routine, nullptr);
  EXPECT_EQ((*routine)(cond, ctx, rig.services).status, util::Tristate::kYes);
}

TEST(ConditionRegistry, ReRegistrationReplaces) {
  ConditionRegistry registry;
  registry.Register("t", "a", ConstantRoutine(util::Tristate::kNo));
  registry.Register("t", "a", ConstantRoutine(util::Tristate::kYes));
  EXPECT_EQ(registry.size(), 1u);
  gaa::testing::TestRig rig;
  auto ctx = MakeContext();
  auto cond = MakeCond("t", "a", "");
  EXPECT_EQ((*registry.Find("t", "a"))(cond, ctx, rig.services).status,
            util::Tristate::kYes);
}

TEST(ConditionRegistry, Unregister) {
  ConditionRegistry registry;
  registry.Register("t", "a", ConstantRoutine(util::Tristate::kYes));
  EXPECT_TRUE(registry.Unregister("t", "a"));
  EXPECT_FALSE(registry.Unregister("t", "a"));
  EXPECT_EQ(registry.Find("t", "a"), nullptr);
}

TEST(RoutineCatalog, MakeAndMissing) {
  RoutineCatalog catalog;
  catalog.Add("builtin:const_yes",
              [](const std::map<std::string, std::string>&) {
                return ConstantRoutine(util::Tristate::kYes);
              });
  EXPECT_TRUE(catalog.Contains("builtin:const_yes"));
  EXPECT_FALSE(catalog.Contains("builtin:nope"));
  EXPECT_TRUE(catalog.Make("builtin:const_yes", {}).ok());
  auto missing = catalog.Make("builtin:nope", {});
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, util::ErrorCode::kNotFound);
}

TEST(RoutineCatalog, FactoryReceivesParams) {
  RoutineCatalog catalog;
  catalog.Add("builtin:param_echo",
              [](const std::map<std::string, std::string>& params) {
                auto it = params.find("answer");
                util::Tristate status = (it != params.end() && it->second == "yes")
                                            ? util::Tristate::kYes
                                            : util::Tristate::kNo;
                return ConstantRoutine(status);
              });
  auto yes = catalog.Make("builtin:param_echo", {{"answer", "yes"}});
  ASSERT_TRUE(yes.ok());
  gaa::testing::TestRig rig;
  auto ctx = MakeContext();
  auto cond = MakeCond("t", "a", "");
  EXPECT_EQ(yes.value()(cond, ctx, rig.services).status, util::Tristate::kYes);
}

TEST(EvalOutcome, Constructors) {
  EXPECT_EQ(EvalOutcome::Yes().status, util::Tristate::kYes);
  EXPECT_TRUE(EvalOutcome::Yes().evaluated);
  EXPECT_EQ(EvalOutcome::No("why").detail, "why");
  EXPECT_TRUE(EvalOutcome::Maybe().evaluated);
  EXPECT_EQ(EvalOutcome::Maybe().status, util::Tristate::kMaybe);
  EXPECT_FALSE(EvalOutcome::Unevaluated().evaluated);
  EXPECT_EQ(EvalOutcome::Unevaluated().status, util::Tristate::kMaybe);
}

}  // namespace
}  // namespace gaa::core
