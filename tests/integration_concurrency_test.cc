// Thread-safety tests: server workers evaluate policies concurrently while
// the IDS adjusts the threat level and the policy officer rewrites
// policies — the deployment concurrency the paper's Apache integration
// lived under (multi-process Apache; multi-threaded here).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "http/doc_tree.h"
#include "integration/gaa_web_server.h"

namespace gaa::web {
namespace {

using http::StatusCode;

TEST(Concurrency, ParallelRequestsAreAllDecided) {
  GaaWebServer::Options options;
  options.use_real_clock = true;
  options.notification_latency_us = 0;
  GaaWebServer server(http::DocTree::DemoSite(), options);
  ASSERT_TRUE(server
                  .SetLocalPolicy("/", R"(
neg_access_right apache *
pre_cond_regex gnu *phf*
pos_access_right apache *
)")
                  .ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::atomic<int> ok{0};
  std::atomic<int> denied{0};
  std::atomic<int> other{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        bool attack = (i % 4) == 0;
        std::string ip = "10.0." + std::to_string(t) + "." +
                         std::to_string(1 + i % 250);
        auto response = attack
                            ? server.Get("/cgi-bin/phf?q=" + std::to_string(i), ip)
                            : server.Get("/index.html", ip);
        if (response.status == StatusCode::kOk) {
          ok.fetch_add(1);
        } else if (response.status == StatusCode::kForbidden) {
          denied.fetch_add(1);
        } else {
          other.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(other.load(), 0);
  EXPECT_EQ(ok.load(), kThreads * kPerThread * 3 / 4);
  EXPECT_EQ(denied.load(), kThreads * kPerThread / 4);
  EXPECT_EQ(server.server().requests_served(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(Concurrency, PolicyUpdatesDuringTraffic) {
  GaaWebServer::Options options;
  options.use_real_clock = true;
  options.notification_latency_us = 0;
  options.enable_policy_cache = true;  // exercise cache invalidation races
  GaaWebServer server(http::DocTree::DemoSite(), options);
  ASSERT_TRUE(server.SetLocalPolicy("/", "pos_access_right apache *\n").ok());

  std::atomic<bool> stop{false};
  std::atomic<int> decided{0};
  std::atomic<int> weird{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&] {
      while (!stop.load()) {
        auto response = server.Get("/index.html", "10.0.0.1");
        // Depending on which policy version this request saw, the answer
        // is allow or deny — never anything else, never a crash.
        if (response.status == StatusCode::kOk ||
            response.status == StatusCode::kForbidden) {
          decided.fetch_add(1);
        } else {
          weird.fetch_add(1);
        }
      }
    });
  }

  for (int flip = 0; flip < 50; ++flip) {
    const char* policy = (flip % 2 == 0) ? "neg_access_right apache *\n"
                                         : "pos_access_right apache *\n";
    ASSERT_TRUE(server.SetLocalPolicy("/", policy).ok());
    server.state().SetThreatLevel(flip % 3 == 0 ? core::ThreatLevel::kHigh
                                                : core::ThreatLevel::kLow);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);
  for (auto& thread : clients) thread.join();

  EXPECT_EQ(weird.load(), 0);
  EXPECT_GT(decided.load(), 0);
}

TEST(Concurrency, SharedStateCountersUnderContention) {
  util::SimulatedClock clock(0);
  core::SystemState state(&clock);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        state.RecordEvent("shared", 3600 * util::kMicrosPerSecond);
        state.AddGroupMember("G", std::to_string(t * kPerThread + i));
        state.SetVariable("v" + std::to_string(t), std::to_string(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(state.CountEvents("shared", 3600 * util::kMicrosPerSecond),
            static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(state.GroupSize("G"),
            static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(Concurrency, BlacklistResponseRaces) {
  // Many threads attack simultaneously from the same source; exactly the
  // denials happen, the blacklist ends with one entry, and nothing tears.
  GaaWebServer::Options options;
  options.use_real_clock = true;
  options.notification_latency_us = 0;
  GaaWebServer server(http::DocTree::DemoSite(), options);
  ASSERT_TRUE(server
                  .AddSystemPolicy(R"(
eacl_mode 1
neg_access_right * *
pre_cond_accessid GROUP local BadGuys
)")
                  .ok());
  ASSERT_TRUE(server
                  .SetLocalPolicy("/", R"(
neg_access_right apache *
pre_cond_regex gnu *phf*
rr_cond_update_log local on:failure/BadGuys/info:ip
pos_access_right apache *
)")
                  .ok());

  std::vector<std::thread> attackers;
  std::atomic<int> forbidden{0};
  for (int t = 0; t < 8; ++t) {
    attackers.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        auto response = server.Get("/cgi-bin/phf?q=x", "203.0.113.9");
        if (response.status == StatusCode::kForbidden) forbidden.fetch_add(1);
      }
    });
  }
  for (auto& thread : attackers) thread.join();
  EXPECT_EQ(forbidden.load(), 8 * 50);
  EXPECT_EQ(server.state().GroupSize("BadGuys"), 1u);
}

}  // namespace
}  // namespace gaa::web
