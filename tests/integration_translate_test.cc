#include "integration/translate.h"

#include <gtest/gtest.h>

namespace gaa::web {
namespace {

using util::Tristate;

core::AuthzResult MakeAuthz(Tristate status) {
  core::AuthzResult authz;
  authz.status = status;
  return authz;
}

TEST(TranslateAuthz, YesContinues) {
  auto t = TranslateAuthz(MakeAuthz(Tristate::kYes), "realm");
  EXPECT_FALSE(t.response.has_value());
}

TEST(TranslateAuthz, NoIsForbidden) {
  auto t = TranslateAuthz(MakeAuthz(Tristate::kNo), "realm");
  ASSERT_TRUE(t.response.has_value());
  EXPECT_EQ(t.response->status, http::StatusCode::kForbidden);
}

TEST(TranslateAuthz, MaybeWithoutRedirectIs401) {
  auto authz = MakeAuthz(Tristate::kMaybe);
  authz.unevaluated.push_back({"pre_cond_accessid", "USER", "apache *"});
  auto t = TranslateAuthz(authz, "staff");
  ASSERT_TRUE(t.response.has_value());
  EXPECT_EQ(t.response->status, http::StatusCode::kUnauthorized);
  EXPECT_EQ(t.response->headers.at("WWW-Authenticate"),
            "Basic realm=\"staff\"");
}

TEST(TranslateAuthz, MaybeWithSingleRedirectIs302) {
  // Paper §6 step 2d: exactly one unevaluated pre_cond_redirect => redirect.
  auto authz = MakeAuthz(Tristate::kMaybe);
  authz.unevaluated.push_back(
      {"pre_cond_redirect", "local", "http://replica.example.org/"});
  auto t = TranslateAuthz(authz, "realm");
  ASSERT_TRUE(t.response.has_value());
  EXPECT_EQ(t.response->status, http::StatusCode::kFound);
  EXPECT_EQ(t.response->headers.at("Location"), "http://replica.example.org/");
}

TEST(TranslateAuthz, RedirectPlusOtherUnevaluatedIs401) {
  auto authz = MakeAuthz(Tristate::kMaybe);
  authz.unevaluated.push_back({"pre_cond_redirect", "local", "http://x/"});
  authz.unevaluated.push_back({"pre_cond_accessid", "USER", "apache *"});
  auto t = TranslateAuthz(authz, "realm");
  ASSERT_TRUE(t.response.has_value());
  EXPECT_EQ(t.response->status, http::StatusCode::kUnauthorized);
}

TEST(RedirectTarget, ExtractsAndTrims) {
  auto authz = MakeAuthz(Tristate::kMaybe);
  authz.unevaluated.push_back({"pre_cond_redirect", "local", "  http://x/  "});
  EXPECT_EQ(RedirectTarget(authz).value(), "http://x/");
  authz.unevaluated.clear();
  EXPECT_FALSE(RedirectTarget(authz).has_value());
}

}  // namespace
}  // namespace gaa::web
