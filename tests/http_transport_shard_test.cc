// Sharded multi-reactor transport (DESIGN.md §10): cross-shard stats
// aggregation, the no-SO_REUSEPORT fd-handoff fallback, concurrent load
// across shards (the TSan target), and the inline fast path's
// byte-identical-response guarantee at the transport level.
#include "http/tcp_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "http/doc_tree.h"
#include "util/strings.h"

namespace gaa::http {
namespace {

class TransportShardTest : public ::testing::Test {
 protected:
  TransportShardTest()
      : tree_(DocTree::DemoSite()),
        server_(&tree_, &controller_, &util::RealClock::Instance()) {}

  void StartTcp(TcpServer::Options options = {}) {
    tcp_ = std::make_unique<TcpServer>(&server_, options);
    auto started = tcp_->Start();
    ASSERT_TRUE(started.ok()) << started.error().ToString();
  }

  /// Sum of one per-shard counter, for comparing against the aggregate.
  template <typename F>
  std::uint64_t SumShards(F field) const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < tcp_->shard_count(); ++i) {
      total += field(tcp_->shard_stats(i));
    }
    return total;
  }

  DocTree tree_;
  AllowAllController controller_;
  WebServer server_;
  std::unique_ptr<TcpServer> tcp_;
};

TEST_F(TransportShardTest, AggregateStatsAreSumOfShardStats) {
  TcpServer::Options options;
  options.reactor_shards = 2;
  StartTcp(options);
  ASSERT_EQ(tcp_->shard_count(), 2u);

  constexpr int kConns = 64;
  std::string raw = BuildGetRequest("/index.html");
  for (int i = 0; i < kConns; ++i) {
    TcpClient client(tcp_->port());
    ASSERT_TRUE(client.connected());
    auto response = client.RoundTrip(raw);
    ASSERT_TRUE(response.ok()) << response.error().ToString();
    EXPECT_NE(response.value().find("200 OK"), std::string::npos);
  }
  tcp_->Stop();

  TcpServer::Stats total = tcp_->stats();
  EXPECT_EQ(total.shards, 2u);
  EXPECT_EQ(total.accepted, static_cast<std::uint64_t>(kConns));
  EXPECT_EQ(total.requests, static_cast<std::uint64_t>(kConns));
  EXPECT_EQ(total.accepted,
            SumShards([](const TcpServer::Stats& s) { return s.accepted; }));
  EXPECT_EQ(total.requests,
            SumShards([](const TcpServer::Stats& s) { return s.requests; }));
  EXPECT_EQ(total.inline_served,
            SumShards(
                [](const TcpServer::Stats& s) { return s.inline_served; }));
  // All connections closed: active is exactly zero.  An unsigned underflow
  // (double-decrement on any close path) would show up as a huge value.
  EXPECT_EQ(total.active, 0u);
}

TEST_F(TransportShardTest, FdHandoffFallbackBalancesRoundRobin) {
  TcpServer::Options options;
  options.reactor_shards = 4;
  options.so_reuseport = false;  // shard 0 accepts, hands fds round-robin
  StartTcp(options);
  ASSERT_EQ(tcp_->shard_count(), 4u);

  constexpr int kConns = 32;
  std::string raw = BuildGetRequest("/docs/guide.html");
  for (int i = 0; i < kConns; ++i) {
    TcpClient client(tcp_->port());
    auto response = client.RoundTrip(raw);
    ASSERT_TRUE(response.ok()) << response.error().ToString();
    EXPECT_NE(response.value().find("200 OK"), std::string::npos);
  }
  tcp_->Stop();

  EXPECT_EQ(tcp_->stats().accepted, static_cast<std::uint64_t>(kConns));
  // The single-listener fallback distributes deterministically: with no
  // concurrent churn every shard adopts exactly its round-robin share.
  for (std::size_t i = 0; i < tcp_->shard_count(); ++i) {
    EXPECT_EQ(tcp_->shard_stats(i).accepted,
              static_cast<std::uint64_t>(kConns) / tcp_->shard_count())
        << "shard " << i;
  }
  EXPECT_EQ(tcp_->stats().active, 0u);
}

TEST_F(TransportShardTest, ConcurrentKeepAliveLoadAcrossShards) {
  TcpServer::Options options;
  options.reactor_shards = 4;
  StartTcp(options);

  constexpr int kThreads = 8;
  constexpr int kRequests = 25;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  std::uint16_t port = tcp_->port();
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([port, &ok] {
      TcpClient client(port);
      if (!client.connected()) return;
      std::string raw = BuildGetRequest("/index.html");
      for (int i = 0; i < kRequests; ++i) {
        auto response = client.RoundTrip(raw);
        if (response.ok() &&
            response.value().find("200 OK") != std::string::npos) {
          ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  tcp_->Stop();

  EXPECT_EQ(ok.load(), kThreads * kRequests);
  EXPECT_EQ(tcp_->stats().requests,
            static_cast<std::uint64_t>(kThreads) * kRequests);
  EXPECT_EQ(tcp_->stats().accepted, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(tcp_->stats().active, 0u);
}

TEST_F(TransportShardTest, InlineFastPathMatchesWorkerPathByteForByte) {
  // Two transports over the same pipeline: one with the inline fast path,
  // one forced through workers.  AllowAllController memoizes every
  // decision, so the inline server can serve static GETs on the loop.
  TcpServer::Options inline_on;
  inline_on.reactor_shards = 1;
  StartTcp(inline_on);

  TcpServer::Options inline_off = inline_on;
  inline_off.inline_fast_path = false;
  TcpServer worker_only(&server_, inline_off);
  auto started = worker_only.Start();
  ASSERT_TRUE(started.ok()) << started.error().ToString();

  TcpClient fast(tcp_->port());
  TcpClient slow(worker_only.port());
  for (const char* target : {"/index.html", "/docs/guide.html",
                             "/docs/api.html", "/missing.html"}) {
    std::string raw = BuildGetRequest(target);
    auto a = fast.RoundTrip(raw);
    auto b = slow.RoundTrip(raw);
    ASSERT_TRUE(a.ok()) << a.error().ToString();
    ASSERT_TRUE(b.ok()) << b.error().ToString();
    EXPECT_EQ(a.value(), b.value()) << target;
  }
  EXPECT_GT(tcp_->inline_served(), 0u);
  EXPECT_EQ(worker_only.inline_served(), 0u);
  worker_only.Stop();
}

TEST_F(TransportShardTest, QueryTargetsNeverServeInline) {
  TcpServer::Options options;
  options.reactor_shards = 1;
  StartTcp(options);
  TcpClient client(tcp_->port());
  auto response = client.RoundTrip(BuildGetRequest("/cgi-bin/search?q=x"));
  ASSERT_TRUE(response.ok()) << response.error().ToString();
  EXPECT_NE(response.value().find("200 OK"), std::string::npos);
  // Dynamic content (query strings, CGI) always goes to a worker.
  EXPECT_EQ(tcp_->inline_served(), 0u);
  EXPECT_EQ(tcp_->stats().requests, 1u);
}

TEST_F(TransportShardTest, InlineByteBudgetSendsLargeDocsToWorkers) {
  TcpServer::Options options;
  options.reactor_shards = 1;
  options.inline_max_response_bytes = 1;  // nothing fits the budget
  StartTcp(options);
  TcpClient client(tcp_->port());
  auto response = client.RoundTrip(BuildGetRequest("/index.html"));
  ASSERT_TRUE(response.ok()) << response.error().ToString();
  EXPECT_NE(response.value().find("200 OK"), std::string::npos);
  EXPECT_EQ(tcp_->inline_served(), 0u);
}

TEST_F(TransportShardTest, AuthorizationHeaderDisqualifiesInlineServe) {
  TcpServer::Options options;
  options.reactor_shards = 1;
  StartTcp(options);
  TcpClient client(tcp_->port());
  auto response = client.RoundTrip(BuildGetRequest(
      "/index.html", {{"Authorization", "Basic YWxpY2U6cHc="}}));
  ASSERT_TRUE(response.ok()) << response.error().ToString();
  EXPECT_NE(response.value().find("200 OK"), std::string::npos);
  // Credentialed requests carry identity context the memo key must see;
  // they always take the worker path.
  EXPECT_EQ(tcp_->inline_served(), 0u);
}

}  // namespace
}  // namespace gaa::http
