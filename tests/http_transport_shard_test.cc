// Sharded multi-reactor transport (DESIGN.md §10): cross-shard stats
// aggregation, the no-SO_REUSEPORT fd-handoff fallback, concurrent load
// across shards (the TSan target), and the inline fast path's
// byte-identical-response guarantee at the transport level.
#include "http/tcp_server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "http/doc_tree.h"
#include "telemetry/telemetry.h"
#include "util/strings.h"

namespace gaa::http {
namespace {

class TransportShardTest : public ::testing::Test {
 protected:
  // A simulated clock pins the Date header, so byte-identity comparisons
  // between the fast-path and worker-path transports are deterministic.
  TransportShardTest()
      : clock_(0),
        tree_(DocTree::DemoSite()),
        server_(&tree_, &controller_, &clock_) {}

  void StartTcp(TcpServer::Options options = {}) {
    tcp_ = std::make_unique<TcpServer>(&server_, options);
    auto started = tcp_->Start();
    ASSERT_TRUE(started.ok()) << started.error().ToString();
  }

  /// Sum of one per-shard counter, for comparing against the aggregate.
  template <typename F>
  std::uint64_t SumShards(F field) const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < tcp_->shard_count(); ++i) {
      total += field(tcp_->shard_stats(i));
    }
    return total;
  }

  util::SimulatedClock clock_;
  DocTree tree_;
  AllowAllController controller_;
  WebServer server_;
  std::unique_ptr<TcpServer> tcp_;
};

TEST_F(TransportShardTest, AggregateStatsAreSumOfShardStats) {
  TcpServer::Options options;
  options.reactor_shards = 2;
  StartTcp(options);
  ASSERT_EQ(tcp_->shard_count(), 2u);

  constexpr int kConns = 64;
  std::string raw = BuildGetRequest("/index.html");
  for (int i = 0; i < kConns; ++i) {
    TcpClient client(tcp_->port());
    ASSERT_TRUE(client.connected());
    auto response = client.RoundTrip(raw);
    ASSERT_TRUE(response.ok()) << response.error().ToString();
    EXPECT_NE(response.value().find("200 OK"), std::string::npos);
  }
  tcp_->Stop();

  TcpServer::Stats total = tcp_->stats();
  EXPECT_EQ(total.shards, 2u);
  EXPECT_EQ(total.accepted, static_cast<std::uint64_t>(kConns));
  EXPECT_EQ(total.requests, static_cast<std::uint64_t>(kConns));
  EXPECT_EQ(total.accepted,
            SumShards([](const TcpServer::Stats& s) { return s.accepted; }));
  EXPECT_EQ(total.requests,
            SumShards([](const TcpServer::Stats& s) { return s.requests; }));
  EXPECT_EQ(total.inline_served,
            SumShards(
                [](const TcpServer::Stats& s) { return s.inline_served; }));
  // All connections closed: active is exactly zero.  An unsigned underflow
  // (double-decrement on any close path) would show up as a huge value.
  EXPECT_EQ(total.active, 0u);
}

TEST_F(TransportShardTest, FdHandoffFallbackBalancesRoundRobin) {
  TcpServer::Options options;
  options.reactor_shards = 4;
  options.so_reuseport = false;  // shard 0 accepts, hands fds round-robin
  StartTcp(options);
  ASSERT_EQ(tcp_->shard_count(), 4u);

  constexpr int kConns = 32;
  std::string raw = BuildGetRequest("/docs/guide.html");
  for (int i = 0; i < kConns; ++i) {
    TcpClient client(tcp_->port());
    auto response = client.RoundTrip(raw);
    ASSERT_TRUE(response.ok()) << response.error().ToString();
    EXPECT_NE(response.value().find("200 OK"), std::string::npos);
  }
  tcp_->Stop();

  EXPECT_EQ(tcp_->stats().accepted, static_cast<std::uint64_t>(kConns));
  // The single-listener fallback distributes deterministically: with no
  // concurrent churn every shard adopts exactly its round-robin share.
  for (std::size_t i = 0; i < tcp_->shard_count(); ++i) {
    EXPECT_EQ(tcp_->shard_stats(i).accepted,
              static_cast<std::uint64_t>(kConns) / tcp_->shard_count())
        << "shard " << i;
  }
  EXPECT_EQ(tcp_->stats().active, 0u);
}

TEST_F(TransportShardTest, ConcurrentKeepAliveLoadAcrossShards) {
  TcpServer::Options options;
  options.reactor_shards = 4;
  StartTcp(options);

  constexpr int kThreads = 8;
  constexpr int kRequests = 25;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  std::uint16_t port = tcp_->port();
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([port, &ok] {
      TcpClient client(port);
      if (!client.connected()) return;
      std::string raw = BuildGetRequest("/index.html");
      for (int i = 0; i < kRequests; ++i) {
        auto response = client.RoundTrip(raw);
        if (response.ok() &&
            response.value().find("200 OK") != std::string::npos) {
          ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  tcp_->Stop();

  EXPECT_EQ(ok.load(), kThreads * kRequests);
  EXPECT_EQ(tcp_->stats().requests,
            static_cast<std::uint64_t>(kThreads) * kRequests);
  EXPECT_EQ(tcp_->stats().accepted, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(tcp_->stats().active, 0u);
}

TEST_F(TransportShardTest, InlineFastPathMatchesWorkerPathByteForByte) {
  // Two transports over the same pipeline: one with the inline fast path,
  // one forced through workers.  AllowAllController memoizes every
  // decision, so the inline server can serve static GETs on the loop.
  TcpServer::Options inline_on;
  inline_on.reactor_shards = 1;
  StartTcp(inline_on);

  TcpServer::Options inline_off = inline_on;
  inline_off.inline_fast_path = false;
  TcpServer worker_only(&server_, inline_off);
  auto started = worker_only.Start();
  ASSERT_TRUE(started.ok()) << started.error().ToString();

  TcpClient fast(tcp_->port());
  TcpClient slow(worker_only.port());
  for (const char* target : {"/index.html", "/docs/guide.html",
                             "/docs/api.html", "/missing.html"}) {
    std::string raw = BuildGetRequest(target);
    auto a = fast.RoundTrip(raw);
    auto b = slow.RoundTrip(raw);
    ASSERT_TRUE(a.ok()) << a.error().ToString();
    ASSERT_TRUE(b.ok()) << b.error().ToString();
    EXPECT_EQ(a.value(), b.value()) << target;
  }
  EXPECT_GT(tcp_->inline_served(), 0u);
  EXPECT_EQ(worker_only.inline_served(), 0u);
  worker_only.Stop();
}

/// First value of `name` in a raw response head (case-sensitive: our
/// serializer emits canonical names).
std::string HeaderValue(const std::string& raw, const std::string& name) {
  std::size_t pos = raw.find("\r\n" + name + ": ");
  if (pos == std::string::npos) return {};
  pos += 2 + name.size() + 2;
  std::size_t end = raw.find("\r\n", pos);
  return raw.substr(pos, end - pos);
}

TEST_F(TransportShardTest, ConditionalGetMatchesWorkerPathByteForByte) {
  TcpServer::Options inline_on;
  inline_on.reactor_shards = 1;
  StartTcp(inline_on);
  TcpServer::Options inline_off = inline_on;
  inline_off.inline_fast_path = false;
  TcpServer worker_only(&server_, inline_off);
  ASSERT_TRUE(worker_only.Start().ok());

  TcpClient fast(tcp_->port());
  TcpClient slow(worker_only.port());
  auto first = fast.RoundTrip(BuildGetRequest("/index.html"));
  ASSERT_TRUE(first.ok()) << first.error().ToString();
  std::string etag = HeaderValue(first.value(), "ETag");
  std::string last_modified = HeaderValue(first.value(), "Last-Modified");
  ASSERT_FALSE(etag.empty());
  ASSERT_FALSE(last_modified.empty());

  // If-None-Match hit: 304, empty body, byte-identical across paths.
  std::string inm = BuildGetRequest("/index.html", {{"If-None-Match", etag}});
  auto a = fast.RoundTrip(inm);
  auto b = slow.RoundTrip(inm);
  ASSERT_TRUE(a.ok()) << a.error().ToString();
  ASSERT_TRUE(b.ok()) << b.error().ToString();
  EXPECT_EQ(a.value(), b.value());
  EXPECT_NE(a.value().find("HTTP/1.1 304 Not Modified\r\n"),
            std::string::npos);
  EXPECT_NE(a.value().find("Content-Length: 0\r\n"), std::string::npos);
  EXPECT_EQ(a.value().find("<html>"), std::string::npos);
  EXPECT_EQ(HeaderValue(a.value(), "ETag"), etag);

  // If-Modified-Since at the document's stamp: also 304, also identical.
  std::string ims =
      BuildGetRequest("/index.html", {{"If-Modified-Since", last_modified}});
  auto c = fast.RoundTrip(ims);
  auto d = slow.RoundTrip(ims);
  ASSERT_TRUE(c.ok() && d.ok());
  EXPECT_EQ(c.value(), d.value());
  EXPECT_NE(c.value().find("304 Not Modified"), std::string::npos);

  // A stale validator gets the full 200 on both paths.
  std::string stale =
      BuildGetRequest("/index.html", {{"If-None-Match", "\"stale\""}});
  auto e = fast.RoundTrip(stale);
  auto f = slow.RoundTrip(stale);
  ASSERT_TRUE(e.ok() && f.ok());
  EXPECT_EQ(e.value(), f.value());
  EXPECT_NE(e.value().find("200 OK"), std::string::npos);

  EXPECT_GT(tcp_->inline_served(), 0u);
  EXPECT_EQ(worker_only.inline_served(), 0u);
  worker_only.Stop();
}

TEST_F(TransportShardTest, HeadMatchesGetHeadBlockAcrossPaths) {
  TcpServer::Options inline_on;
  inline_on.reactor_shards = 1;
  StartTcp(inline_on);
  TcpServer::Options inline_off = inline_on;
  inline_off.inline_fast_path = false;
  TcpServer worker_only(&server_, inline_off);
  ASSERT_TRUE(worker_only.Start().ok());

  // Connection: close pins the keep-alive decision so the comparison is
  // deterministic; TcpFetch half-closes and reads to EOF, which also lets
  // it frame bodyless HEAD responses.
  for (const char* target : {"/docs/guide.html", "/missing.html"}) {
    std::string get_raw =
        BuildGetRequest(target, {{"Connection", "close"}});
    std::string head_raw = "HEAD" + get_raw.substr(3);
    auto get_fast = TcpFetch(tcp_->port(), get_raw);
    auto head_fast = TcpFetch(tcp_->port(), head_raw);
    auto get_slow = TcpFetch(worker_only.port(), get_raw);
    auto head_slow = TcpFetch(worker_only.port(), head_raw);
    ASSERT_TRUE(get_fast.ok() && head_fast.ok() && get_slow.ok() &&
                head_slow.ok())
        << target;
    // GET matches across transports; HEAD matches across transports; and
    // HEAD is exactly the GET's head block — same Content-Length, no body.
    EXPECT_EQ(get_fast.value(), get_slow.value()) << target;
    EXPECT_EQ(head_fast.value(), head_slow.value()) << target;
    std::size_t head_end = get_fast.value().find("\r\n\r\n");
    ASSERT_NE(head_end, std::string::npos);
    EXPECT_EQ(head_fast.value(), get_fast.value().substr(0, head_end + 4))
        << target;
  }
  EXPECT_GT(tcp_->inline_served(), 0u);
  worker_only.Stop();
}

TEST_F(TransportShardTest, ArenaGaugeTracksFastPathConnections) {
  // The per-shard transport_arena_bytes gauge: zero before traffic, grows
  // once fast-path responses bump Date lines, and returns to zero when the
  // connections close.
  telemetry::Telemetry telemetry;
  telemetry.set_tracing_enabled(false);  // traced requests skip the tier
  server_.set_telemetry(&telemetry);
  TcpServer::Options options;
  options.reactor_shards = 1;
  StartTcp(options);
  {
    TcpClient client(tcp_->port());
    auto response = client.RoundTrip(BuildGetRequest("/index.html"));
    ASSERT_TRUE(response.ok()) << response.error().ToString();
  }
  tcp_->Stop();
  EXPECT_GT(tcp_->inline_served(), 0u);
  auto* gauge = telemetry.registry().GetGauge("transport_arena_bytes",
                                              "shard=\"0\"");
  EXPECT_EQ(gauge->Value(), 0);  // all connections closed and reclaimed
  server_.set_telemetry(nullptr);
}

TEST_F(TransportShardTest, QueryTargetsNeverServeInline) {
  TcpServer::Options options;
  options.reactor_shards = 1;
  StartTcp(options);
  TcpClient client(tcp_->port());
  auto response = client.RoundTrip(BuildGetRequest("/cgi-bin/search?q=x"));
  ASSERT_TRUE(response.ok()) << response.error().ToString();
  EXPECT_NE(response.value().find("200 OK"), std::string::npos);
  // Dynamic content (query strings, CGI) always goes to a worker.
  EXPECT_EQ(tcp_->inline_served(), 0u);
  EXPECT_EQ(tcp_->stats().requests, 1u);
}

TEST_F(TransportShardTest, InlineByteBudgetSendsLargeDocsToWorkers) {
  TcpServer::Options options;
  options.reactor_shards = 1;
  options.inline_max_response_bytes = 1;  // nothing fits the budget
  StartTcp(options);
  TcpClient client(tcp_->port());
  auto response = client.RoundTrip(BuildGetRequest("/index.html"));
  ASSERT_TRUE(response.ok()) << response.error().ToString();
  EXPECT_NE(response.value().find("200 OK"), std::string::npos);
  EXPECT_EQ(tcp_->inline_served(), 0u);
}

TEST_F(TransportShardTest, AuthorizationHeaderDisqualifiesInlineServe) {
  TcpServer::Options options;
  options.reactor_shards = 1;
  StartTcp(options);
  TcpClient client(tcp_->port());
  auto response = client.RoundTrip(BuildGetRequest(
      "/index.html", {{"Authorization", "Basic YWxpY2U6cHc="}}));
  ASSERT_TRUE(response.ok()) << response.error().ToString();
  EXPECT_NE(response.value().find("200 OK"), std::string::npos);
  // Credentialed requests carry identity context the memo key must see;
  // they always take the worker path.
  EXPECT_EQ(tcp_->inline_served(), 0u);
}

// Controller that stalls inside Check() — on the event-loop thread when
// the decision is memoized (inline pipeline tier), on a worker otherwise.
class StallingController final : public AccessController {
 public:
  StallingController(int stall_ms, bool memoized)
      : stall_ms_(stall_ms), memoized_(memoized) {}

  Verdict Check(RequestRec&) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms_));
    return Verdict::Allow();
  }
  bool DecisionIsMemoized(std::string_view, std::string_view,
                          util::Ipv4Address, std::string_view) const override {
    return memoized_;
  }

 private:
  int stall_ms_;
  bool memoized_;
};

TEST_F(TransportShardTest, LagProbeSeesStalledEventLoop) {
  // A memoized-decision controller pulls the request onto the event-loop
  // thread (inline pipeline tier), then stalls there for 400ms.  The lag
  // probe's next firing is late by roughly the stall, and the tracked
  // histogram max keeps the spike visible after later probes read ~0
  // again.  Timer-wheel granularity (32ms ticks, round-up arming) bounds
  // the noise floor at ~64ms, so the stall must dwarf it.
  StallingController stalling(400, /*memoized=*/true);
  WebServer server(&tree_, &stalling, &clock_);
  telemetry::Telemetry telemetry;
  telemetry.set_tracing_enabled(false);  // traced requests skip the tier
  server.set_telemetry(&telemetry);

  TcpServer::Options options;
  options.reactor_shards = 1;
  options.worker_threads = 1;
  options.lag_probe_interval_ms = 20;
  TcpServer tcp(&server, options);
  auto started = tcp.Start();
  ASSERT_TRUE(started.ok()) << started.error().ToString();

  // Let a few probes fire unstalled to prove the baseline stays below the
  // wheel's granularity noise floor.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  {
    TcpClient client(tcp.port());
    auto response = client.RoundTrip(BuildGetRequest("/index.html"));
    ASSERT_TRUE(response.ok()) << response.error().ToString();
  }
  EXPECT_GT(tcp.inline_served(), 0u);  // the stall really ran on the loop
  // Give the delayed probe time to fire and record.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  tcp.Stop();

  auto* lag_histogram = telemetry.registry().GetHistogram(
      "transport_loop_lag_us", "shard=\"0\"",
      telemetry::Histogram::WideLatencyBoundsUs());
  auto snap = lag_histogram->TakeSnapshot();
  ASSERT_GT(snap.count, 0u);
  // The probe that waited out the 400ms stall must have seen most of it.
  EXPECT_GE(snap.max, 150'000u) << "stall invisible to the lag probe";
}

TEST_F(TransportShardTest, RingHighWatermarkRecordsQueuedJobs) {
  // One deliberately slow worker and many concurrent clients: while the
  // worker stalls in Check(), later arrivals queue in the job ring, and
  // the push-side sample must capture that occupancy as the high
  // watermark even though the depth gauge reads 0 again by the end.
  StallingController slow(5, /*memoized=*/false);
  WebServer server(&tree_, &slow, &clock_);
  TcpServer::Options options;
  options.reactor_shards = 1;
  options.worker_threads = 1;
  options.inline_fast_path = false;  // every request takes the job ring
  TcpServer tcp(&server, options);
  auto started = tcp.Start();
  ASSERT_TRUE(started.ok()) << started.error().ToString();

  constexpr int kClients = 8;
  constexpr int kRequestsEach = 5;
  std::vector<std::thread> clients;
  std::atomic<int> errors{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&tcp, &errors] {
      TcpClient client(tcp.port());
      std::string raw = BuildGetRequest("/index.html");
      for (int i = 0; i < kRequestsEach; ++i) {
        if (!client.RoundTrip(raw).ok()) ++errors;
      }
    });
  }
  for (auto& t : clients) t.join();
  tcp.Stop();

  EXPECT_EQ(errors.load(), 0);
  TcpServer::Stats total = tcp.stats();
  EXPECT_EQ(total.requests,
            static_cast<std::uint64_t>(kClients * kRequestsEach));
  EXPECT_GE(total.ring_high_watermark, 1u);
  EXPECT_EQ(total.ring_depth, 0u);  // drained by shutdown
  // The aggregate is the max over shards, not a sum.
  std::uint64_t max_shard = 0;
  for (std::size_t i = 0; i < tcp.shard_count(); ++i) {
    max_shard = std::max(max_shard, tcp.shard_stats(i).ring_high_watermark);
  }
  EXPECT_EQ(total.ring_high_watermark, max_shard);
}

}  // namespace
}  // namespace gaa::http
