#include "http/tcp_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "http/doc_tree.h"
#include "integration/gaa_web_server.h"
#include "util/strings.h"

namespace gaa::http {
namespace {

class TcpServerTest : public ::testing::Test {
 protected:
  TcpServerTest()
      : tree_(DocTree::DemoSite()),
        server_(&tree_, &controller_, &util::RealClock::Instance()) {}

  void StartTcp(TcpServer::Options options = {}) {
    tcp_ = std::make_unique<TcpServer>(&server_, options);
    auto started = tcp_->Start();
    ASSERT_TRUE(started.ok()) << started.error().ToString();
  }

  DocTree tree_;
  AllowAllController controller_;
  WebServer server_;
  std::unique_ptr<TcpServer> tcp_;
};

TEST_F(TcpServerTest, ServesOverRealSockets) {
  StartTcp();
  auto response = TcpFetch(tcp_->port(), BuildGetRequest("/index.html"));
  ASSERT_TRUE(response.ok()) << response.error().ToString();
  EXPECT_NE(response.value().find("200 OK"), std::string::npos);
  EXPECT_NE(response.value().find("Welcome"), std::string::npos);
  EXPECT_NE(response.value().find("Connection: close"), std::string::npos);
  EXPECT_EQ(tcp_->connections_accepted(), 1u);
}

TEST_F(TcpServerTest, ServesCgiAndNotFound) {
  StartTcp();
  auto cgi = TcpFetch(tcp_->port(), BuildGetRequest("/cgi-bin/search?q=x"));
  ASSERT_TRUE(cgi.ok());
  EXPECT_NE(cgi.value().find("200 OK"), std::string::npos);
  auto missing = TcpFetch(tcp_->port(), BuildGetRequest("/nope"));
  ASSERT_TRUE(missing.ok());
  EXPECT_NE(missing.value().find("404"), std::string::npos);
}

TEST_F(TcpServerTest, MalformedRequestGets400) {
  StartTcp();
  auto response = TcpFetch(tcp_->port(), "GEX / HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response.value().find("400"), std::string::npos);
}

TEST_F(TcpServerTest, OversizedRequestRejectedAtTransport) {
  TcpServer::Options options;
  options.max_request_bytes = 1024;
  StartTcp(options);
  std::string big = BuildGetRequest("/x", {{"X-Pad", std::string(4096, 'a')}});
  auto response = TcpFetch(tcp_->port(), big);
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response.value().find("413"), std::string::npos);
  EXPECT_EQ(tcp_->connections_rejected(), 1u);
}

TEST_F(TcpServerTest, PostBodyDelivered) {
  StartTcp();
  std::string raw =
      "POST /cgi-bin/search HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\n"
      "q=abc";
  auto response = TcpFetch(tcp_->port(), raw);
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response.value().find("200 OK"), std::string::npos);
}

TEST_F(TcpServerTest, ConcurrentClients) {
  TcpServer::Options options;
  options.worker_threads = 4;
  StartTcp(options);
  constexpr int kClients = 8;
  constexpr int kRequestsEach = 20;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < kRequestsEach; ++i) {
        auto response = TcpFetch(tcp_->port(), BuildGetRequest("/index.html"));
        if (response.ok() &&
            response.value().find("200 OK") != std::string::npos) {
          ok_count.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok_count.load(), kClients * kRequestsEach);
  EXPECT_EQ(server_.requests_served(),
            static_cast<std::uint64_t>(kClients * kRequestsEach));
}

TEST_F(TcpServerTest, StopIsIdempotentAndRestartable) {
  StartTcp();
  std::uint16_t first_port = tcp_->port();
  tcp_->Stop();
  tcp_->Stop();  // idempotent
  EXPECT_FALSE(tcp_->running());
  // A fresh server can bind again immediately.
  TcpServer again(&server_, {});
  ASSERT_TRUE(again.Start().ok());
  EXPECT_NE(again.port(), 0);
  (void)first_port;
  again.Stop();
}

TEST(TcpGaaIntegration, FullStackOverSockets) {
  // The complete reproduction, end-to-end over real TCP: GAA policies
  // deciding requests that arrive through the socket transport.
  web::GaaWebServer::Options options;
  options.use_real_clock = true;
  options.notification_latency_us = 0;
  web::GaaWebServer gaa_server(DocTree::DemoSite(), options);
  gaa_server.AddUser("alice", "wonder");
  ASSERT_TRUE(gaa_server
                  .SetLocalPolicy("/", R"(
neg_access_right apache *
pre_cond_regex gnu *phf*
rr_cond_update_log local on:failure/BadGuys/info:ip
pos_access_right apache *
)")
                  .ok());
  ASSERT_TRUE(gaa_server
                  .AddSystemPolicy(R"(
eacl_mode 1
neg_access_right * *
pre_cond_accessid GROUP local BadGuys
)")
                  .ok());

  TcpServer tcp(&gaa_server.server(), {});
  ASSERT_TRUE(tcp.Start().ok());

  auto benign = TcpFetch(tcp.port(), BuildGetRequest("/index.html"));
  ASSERT_TRUE(benign.ok());
  EXPECT_NE(benign.value().find("200 OK"), std::string::npos);

  auto attack = TcpFetch(tcp.port(), BuildGetRequest("/cgi-bin/phf?Qalias=x"));
  ASSERT_TRUE(attack.ok());
  EXPECT_NE(attack.value().find("403"), std::string::npos);

  // Loopback means the "attacker" is 127.0.0.1 — now blacklisted; even the
  // benign page is denied (per-source response, exactly as in §7.2).
  EXPECT_TRUE(gaa_server.state().GroupContains("BadGuys", "127.0.0.1"));
  auto after = TcpFetch(tcp.port(), BuildGetRequest("/index.html"));
  ASSERT_TRUE(after.ok());
  EXPECT_NE(after.value().find("403"), std::string::npos);
  tcp.Stop();
}

}  // namespace
}  // namespace gaa::http
