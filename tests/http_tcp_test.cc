#include "http/tcp_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "http/doc_tree.h"
#include "integration/connection_stats.h"
#include "integration/gaa_web_server.h"
#include "util/strings.h"

namespace gaa::http {
namespace {

class TcpServerTest : public ::testing::Test {
 protected:
  TcpServerTest()
      : tree_(DocTree::DemoSite()),
        server_(&tree_, &controller_, &util::RealClock::Instance()) {}

  void StartTcp(TcpServer::Options options = {}) {
    tcp_ = std::make_unique<TcpServer>(&server_, options);
    auto started = tcp_->Start();
    ASSERT_TRUE(started.ok()) << started.error().ToString();
  }

  DocTree tree_;
  AllowAllController controller_;
  WebServer server_;
  std::unique_ptr<TcpServer> tcp_;
};

TEST_F(TcpServerTest, ServesOverRealSockets) {
  TcpServer::Options options;
  options.keep_alive = false;  // classic close-per-request mode
  StartTcp(options);
  auto response = TcpFetch(tcp_->port(), BuildGetRequest("/index.html"));
  ASSERT_TRUE(response.ok()) << response.error().ToString();
  EXPECT_NE(response.value().find("200 OK"), std::string::npos);
  EXPECT_NE(response.value().find("Welcome"), std::string::npos);
  EXPECT_NE(response.value().find("Connection: close"), std::string::npos);
  EXPECT_EQ(tcp_->connections_accepted(), 1u);
}

TEST_F(TcpServerTest, KeepAliveServesManyRequestsOnOneConnection) {
  StartTcp();
  TcpClient client(tcp_->port());
  ASSERT_TRUE(client.connected());
  std::string raw = BuildGetRequest("/index.html");
  for (int i = 0; i < 5; ++i) {
    auto response = client.RoundTrip(raw);
    ASSERT_TRUE(response.ok()) << response.error().ToString();
    EXPECT_NE(response.value().find("200 OK"), std::string::npos);
    EXPECT_NE(response.value().find("Connection: keep-alive"),
              std::string::npos);
  }
  EXPECT_EQ(tcp_->connections_accepted(), 1u);
  EXPECT_EQ(tcp_->connections_reused(), 4u);
  EXPECT_EQ(server_.requests_served(), 5u);
}

TEST_F(TcpServerTest, ConnectionCloseHeaderHonored) {
  StartTcp();
  TcpClient client(tcp_->port());
  auto response = client.RoundTrip(
      BuildGetRequest("/index.html", {{"Connection", "close"}}));
  ASSERT_TRUE(response.ok()) << response.error().ToString();
  EXPECT_NE(response.value().find("Connection: close"), std::string::npos);
  // The server closed; a second round trip on the same connection fails.
  auto second = client.RoundTrip(BuildGetRequest("/index.html"));
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(tcp_->connections_reused(), 0u);
}

TEST_F(TcpServerTest, Http10DefaultsToClose) {
  StartTcp();
  TcpClient client(tcp_->port());
  auto response =
      client.RoundTrip("GET /index.html HTTP/1.0\r\nHost: x\r\n\r\n");
  ASSERT_TRUE(response.ok()) << response.error().ToString();
  EXPECT_NE(response.value().find("200 OK"), std::string::npos);
  EXPECT_NE(response.value().find("Connection: close"), std::string::npos);
}

TEST_F(TcpServerTest, PipelinedRequestsAnsweredInOrder) {
  StartTcp();
  TcpClient client(tcp_->port());
  std::string two = BuildGetRequest("/index.html") +
                    BuildGetRequest("/cgi-bin/search?q=x");
  auto first = client.RoundTrip(two);  // sends both, reads response #1
  ASSERT_TRUE(first.ok()) << first.error().ToString();
  EXPECT_NE(first.value().find("Welcome"), std::string::npos);
  auto second = client.RoundTrip("");  // reads response #2
  ASSERT_TRUE(second.ok()) << second.error().ToString();
  EXPECT_NE(second.value().find("200 OK"), std::string::npos);
  EXPECT_EQ(tcp_->connections_accepted(), 1u);
  EXPECT_EQ(server_.requests_served(), 2u);
}

TEST_F(TcpServerTest, IdleConnectionTimedOutAndCounted) {
  TcpServer::Options options;
  options.idle_timeout_ms = 100;
  StartTcp(options);
  TcpClient client(tcp_->port());
  auto response = client.RoundTrip(BuildGetRequest("/index.html"));
  ASSERT_TRUE(response.ok()) << response.error().ToString();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_EQ(tcp_->connections_timed_out(), 1u);
  EXPECT_EQ(tcp_->active_connections(), 0u);
  auto after = client.RoundTrip(BuildGetRequest("/index.html"));
  EXPECT_FALSE(after.ok());
}

TEST_F(TcpServerTest, OverCapConnectionsShedWith503) {
  TcpServer::Options options;
  options.max_connections = 2;
  StartTcp(options);
  TcpClient first(tcp_->port());
  TcpClient second(tcp_->port());
  ASSERT_TRUE(first.RoundTrip(BuildGetRequest("/index.html")).ok());
  ASSERT_TRUE(second.RoundTrip(BuildGetRequest("/index.html")).ok());
  // Both keep-alive connections are still open; the third is shed.
  TcpClient third(tcp_->port());
  auto response = third.RoundTrip(BuildGetRequest("/index.html"));
  ASSERT_TRUE(response.ok()) << response.error().ToString();
  EXPECT_NE(response.value().find("503"), std::string::npos);
  EXPECT_NE(response.value().find("Connection: close"), std::string::npos);
  EXPECT_EQ(tcp_->connections_shed(), 1u);
  EXPECT_EQ(tcp_->connections_accepted(), 2u);
  EXPECT_EQ(server_.requests_served(), 2u);  // the shed request never ran
}

TEST_F(TcpServerTest, TruncatedBodyNeverReachesHandler) {
  StartTcp();
  std::atomic<int> truncated_reports{0};
  server_.set_malformed_hook(
      [&](RequestDefect defect, const std::string&, util::Ipv4Address) {
        if (defect == RequestDefect::kTruncatedBody) {
          truncated_reports.fetch_add(1);
        }
      });
  // Content-Length promises 10 bytes; the peer half-closes after 3.
  auto response = TcpFetch(
      tcp_->port(),
      "POST /cgi-bin/search HTTP/1.1\r\nHost: x\r\nContent-Length: 10\r\n\r\n"
      "q=a");
  ASSERT_TRUE(response.ok()) << response.error().ToString();
  EXPECT_NE(response.value().find("400"), std::string::npos);
  EXPECT_EQ(server_.requests_served(), 0u);  // handler never saw the fragment
  EXPECT_EQ(tcp_->connections_rejected(), 1u);
  EXPECT_EQ(truncated_reports.load(), 1);
}

TEST_F(TcpServerTest, ConflictingContentLengthRejectedAtTransport) {
  StartTcp();
  auto response = TcpFetch(
      tcp_->port(),
      "POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\n"
      "hello!");
  ASSERT_TRUE(response.ok()) << response.error().ToString();
  EXPECT_NE(response.value().find("400"), std::string::npos);
  EXPECT_EQ(server_.requests_served(), 0u);
  EXPECT_EQ(tcp_->connections_rejected(), 1u);
}

TEST_F(TcpServerTest, ServesCgiAndNotFound) {
  StartTcp();
  auto cgi = TcpFetch(tcp_->port(), BuildGetRequest("/cgi-bin/search?q=x"));
  ASSERT_TRUE(cgi.ok());
  EXPECT_NE(cgi.value().find("200 OK"), std::string::npos);
  auto missing = TcpFetch(tcp_->port(), BuildGetRequest("/nope"));
  ASSERT_TRUE(missing.ok());
  EXPECT_NE(missing.value().find("404"), std::string::npos);
}

TEST_F(TcpServerTest, MalformedRequestGets400) {
  StartTcp();
  auto response = TcpFetch(tcp_->port(), "GEX / HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response.value().find("400"), std::string::npos);
}

TEST_F(TcpServerTest, OversizedRequestRejectedAtTransport) {
  TcpServer::Options options;
  options.max_request_bytes = 1024;
  StartTcp(options);
  std::string big = BuildGetRequest("/x", {{"X-Pad", std::string(4096, 'a')}});
  auto response = TcpFetch(tcp_->port(), big);
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response.value().find("413"), std::string::npos);
  EXPECT_EQ(tcp_->connections_rejected(), 1u);
}

TEST_F(TcpServerTest, PostBodyDelivered) {
  StartTcp();
  std::string raw =
      "POST /cgi-bin/search HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\n"
      "q=abc";
  auto response = TcpFetch(tcp_->port(), raw);
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response.value().find("200 OK"), std::string::npos);
}

TEST_F(TcpServerTest, ConcurrentClients) {
  TcpServer::Options options;
  options.worker_threads = 4;
  StartTcp(options);
  constexpr int kClients = 8;
  constexpr int kRequestsEach = 20;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < kRequestsEach; ++i) {
        auto response = TcpFetch(tcp_->port(), BuildGetRequest("/index.html"));
        if (response.ok() &&
            response.value().find("200 OK") != std::string::npos) {
          ok_count.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok_count.load(), kClients * kRequestsEach);
  EXPECT_EQ(server_.requests_served(),
            static_cast<std::uint64_t>(kClients * kRequestsEach));
}

TEST_F(TcpServerTest, StopIsIdempotentAndRestartable) {
  StartTcp();
  std::uint16_t first_port = tcp_->port();
  tcp_->Stop();
  tcp_->Stop();  // idempotent
  EXPECT_FALSE(tcp_->running());
  // The same instance can restart...
  ASSERT_TRUE(tcp_->Start().ok());
  auto response = TcpFetch(tcp_->port(), BuildGetRequest("/index.html"));
  ASSERT_TRUE(response.ok()) << response.error().ToString();
  EXPECT_NE(response.value().find("200 OK"), std::string::npos);
  tcp_->Stop();
  // ... and a fresh server can bind again immediately.
  TcpServer again(&server_, {});
  ASSERT_TRUE(again.Start().ok());
  EXPECT_NE(again.port(), 0);
  (void)first_port;
  again.Stop();
}

TEST(TcpServerLifecycle, RepeatedStartStopUnderConcurrentLoadNeverHangs) {
  // Regression for the lost-wakeup race in Stop(): the old implementation
  // flipped running_ and notified without holding the worker mutex, so a
  // worker between its predicate check and the wait could sleep through
  // the shutdown notification and Stop() hung in join().
  DocTree tree = DocTree::DemoSite();
  AllowAllController controller;
  WebServer server(&tree, &controller, &util::RealClock::Instance());
  for (int cycle = 0; cycle < 100; ++cycle) {
    TcpServer::Options options;
    options.worker_threads = 2;
    TcpServer tcp(&server, options);
    ASSERT_TRUE(tcp.Start().ok());
    std::vector<std::thread> clients;
    for (int c = 0; c < 3; ++c) {
      clients.emplace_back([port = tcp.port()] {
        // Responses may be cut off by the concurrent Stop(); only the
        // absence of hangs/crashes matters here.
        (void)TcpFetch(port, BuildGetRequest("/index.html"), 1000);
      });
    }
    tcp.Stop();  // concurrent with the in-flight fetches
    for (auto& t : clients) t.join();
    EXPECT_FALSE(tcp.running());
  }
}

TEST(TcpConnectionStats, ExportedToSystemStateForPolicies) {
  // The integration wiring: connection-layer counters become SystemState
  // variables, consultable by adaptive policy conditions (var: indirection).
  web::GaaWebServer::Options options;
  options.use_real_clock = true;
  options.notification_latency_us = 0;
  web::GaaWebServer gaa_server(DocTree::DemoSite(), options);
  ASSERT_TRUE(
      gaa_server.SetLocalPolicy("/", "pos_access_right apache *\n").ok());
  TcpServer tcp(&gaa_server.server(), {});
  web::WireConnectionStats(tcp, &gaa_server.state());
  ASSERT_TRUE(tcp.Start().ok());
  TcpClient client(tcp.port());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.RoundTrip(BuildGetRequest("/index.html")).ok());
  }
  client.Close();
  tcp.Stop();  // final publish happens as the event loop drains
  auto& state = gaa_server.state();
  EXPECT_EQ(state.GetVariable("tcp.accepted").value_or("?"), "1");
  EXPECT_EQ(state.GetVariable("tcp.requests").value_or("?"), "3");
  EXPECT_EQ(state.GetVariable("tcp.reused").value_or("?"), "2");
  EXPECT_EQ(state.GetVariable("tcp.active").value_or("?"), "0");
}

TEST(TcpGaaIntegration, FullStackOverSockets) {
  // The complete reproduction, end-to-end over real TCP: GAA policies
  // deciding requests that arrive through the socket transport.
  web::GaaWebServer::Options options;
  options.use_real_clock = true;
  options.notification_latency_us = 0;
  web::GaaWebServer gaa_server(DocTree::DemoSite(), options);
  gaa_server.AddUser("alice", "wonder");
  ASSERT_TRUE(gaa_server
                  .SetLocalPolicy("/", R"(
neg_access_right apache *
pre_cond_regex gnu *phf*
rr_cond_update_log local on:failure/BadGuys/info:ip
pos_access_right apache *
)")
                  .ok());
  ASSERT_TRUE(gaa_server
                  .AddSystemPolicy(R"(
eacl_mode 1
neg_access_right * *
pre_cond_accessid GROUP local BadGuys
)")
                  .ok());

  TcpServer tcp(&gaa_server.server(), {});
  ASSERT_TRUE(tcp.Start().ok());

  auto benign = TcpFetch(tcp.port(), BuildGetRequest("/index.html"));
  ASSERT_TRUE(benign.ok());
  EXPECT_NE(benign.value().find("200 OK"), std::string::npos);

  auto attack = TcpFetch(tcp.port(), BuildGetRequest("/cgi-bin/phf?Qalias=x"));
  ASSERT_TRUE(attack.ok());
  EXPECT_NE(attack.value().find("403"), std::string::npos);

  // Loopback means the "attacker" is 127.0.0.1 — now blacklisted; even the
  // benign page is denied (per-source response, exactly as in §7.2).
  EXPECT_TRUE(gaa_server.state().GroupContains("BadGuys", "127.0.0.1"));
  auto after = TcpFetch(tcp.port(), BuildGetRequest("/index.html"));
  ASSERT_TRUE(after.ok());
  EXPECT_NE(after.value().find("403"), std::string::npos);
  tcp.Stop();
}

}  // namespace
}  // namespace gaa::http
