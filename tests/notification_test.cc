#include "audit/notification.h"

#include <gtest/gtest.h>

namespace gaa::audit {
namespace {

TEST(SimulatedSmtpNotifier, DeliversAndRecords) {
  util::SimulatedClock clock(0);
  SimulatedSmtpNotifier notifier(&clock, /*delivery_latency_us=*/0);
  EXPECT_TRUE(notifier.Notify("admin", "subject", "body"));
  ASSERT_EQ(notifier.sent_count(), 1u);
  auto sent = notifier.Sent();
  EXPECT_EQ(sent[0].recipient, "admin");
  EXPECT_EQ(sent[0].subject, "subject");
}

TEST(SimulatedSmtpNotifier, LatencyBlocksTheCaller) {
  // On the simulated clock, the latency shows up as clock advancement —
  // exactly how the paper's synchronous notification shows up in request
  // latency.
  util::SimulatedClock clock(0);
  SimulatedSmtpNotifier notifier(&clock, /*delivery_latency_us=*/47'000);
  notifier.Notify("admin", "s", "b");
  EXPECT_EQ(clock.Now(), 47'000);
  notifier.SetLatency(1'000);
  notifier.Notify("admin", "s", "b");
  EXPECT_EQ(clock.Now(), 48'000);
}

TEST(SimulatedSmtpNotifier, FailureInjection) {
  util::SimulatedClock clock(0);
  SimulatedSmtpNotifier notifier(&clock, 0);
  notifier.SetFailing(true);
  EXPECT_FALSE(notifier.Notify("admin", "s", "b"));
  EXPECT_EQ(notifier.sent_count(), 0u);
  EXPECT_EQ(notifier.failed_count(), 1u);
  notifier.SetFailing(false);
  EXPECT_TRUE(notifier.Notify("admin", "s", "b"));
}

TEST(SimulatedSmtpNotifier, Clear) {
  util::SimulatedClock clock(0);
  SimulatedSmtpNotifier notifier(&clock, 0);
  notifier.Notify("a", "s", "b");
  notifier.Clear();
  EXPECT_EQ(notifier.sent_count(), 0u);
}

TEST(QueuedNotifier, ReturnsImmediatelyAndDelivers) {
  // Real clock with tiny latency: Notify must not block for the delivery.
  auto& clock = util::RealClock::Instance();
  QueuedNotifier notifier(&clock, /*delivery_latency_us=*/1000);
  util::Stopwatch sw;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(notifier.Notify("admin", "s", "b"));
  }
  // Five 1 ms deliveries would take >=5 ms synchronously; the enqueue path
  // must be far faster.
  EXPECT_LT(sw.ElapsedUs(), 4'000);
  notifier.Flush();
  EXPECT_EQ(notifier.delivered_count(), 5u);
}

TEST(QueuedNotifier, FlushOnEmptyQueueReturns) {
  auto& clock = util::RealClock::Instance();
  QueuedNotifier notifier(&clock, 0);
  notifier.Flush();  // must not hang
  EXPECT_EQ(notifier.delivered_count(), 0u);
}

TEST(FailingNotifier, AlwaysFailsAndCounts) {
  FailingNotifier notifier;
  EXPECT_FALSE(notifier.Notify("a", "b", "c"));
  EXPECT_FALSE(notifier.Notify("a", "b", "c"));
  EXPECT_EQ(notifier.attempts(), 2u);
}

}  // namespace
}  // namespace gaa::audit
