#include "ids/event_bus.h"

#include <gtest/gtest.h>

namespace gaa::ids {
namespace {

class EventBusTest : public ::testing::Test {
 protected:
  EventBusTest() : clock_(1000), bus_(&clock_) {}
  util::SimulatedClock clock_;
  EventBus bus_;
};

TEST_F(EventBusTest, DeliversToMatchingSubscriber) {
  std::vector<Event> received;
  bus_.Subscribe({"gaa.report.*", 0},
                 [&](const Event& e) { received.push_back(e); });
  bus_.Publish({"gaa.report.detected_attack", "gaa-api", 7, "payload", 0});
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].topic, "gaa.report.detected_attack");
  EXPECT_EQ(received[0].time_us, 1000);  // stamped by the bus
}

TEST_F(EventBusTest, TopicFilterExcludes) {
  int count = 0;
  bus_.Subscribe({"ids.alert.*", 0}, [&](const Event&) { ++count; });
  bus_.Publish({"gaa.report.detected_attack", "x", 5, "", 0});
  EXPECT_EQ(count, 0);
}

TEST_F(EventBusTest, SeverityFilterIsThePolicyControl) {
  // The "policy-controlled" subscription channel: min severity 5.
  std::vector<int> severities;
  bus_.Subscribe({"*", 5}, [&](const Event& e) { severities.push_back(e.severity); });
  bus_.Publish({"t", "s", 3, "", 0});
  bus_.Publish({"t", "s", 5, "", 0});
  bus_.Publish({"t", "s", 9, "", 0});
  EXPECT_EQ(severities, (std::vector<int>{5, 9}));
}

TEST_F(EventBusTest, MultipleSubscribersEachGetACopy) {
  int a = 0, b = 0;
  bus_.Subscribe({"*", 0}, [&](const Event&) { ++a; });
  bus_.Subscribe({"*", 0}, [&](const Event&) { ++b; });
  bus_.Publish({"t", "s", 1, "", 0});
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(bus_.published_count(), 1u);
  EXPECT_EQ(bus_.delivered_count(), 2u);
}

TEST_F(EventBusTest, Unsubscribe) {
  int count = 0;
  auto id = bus_.Subscribe({"*", 0}, [&](const Event&) { ++count; });
  EXPECT_TRUE(bus_.Unsubscribe(id));
  EXPECT_FALSE(bus_.Unsubscribe(id));
  bus_.Publish({"t", "s", 1, "", 0});
  EXPECT_EQ(count, 0);
  EXPECT_EQ(bus_.subscriber_count(), 0u);
}

TEST_F(EventBusTest, CallbackMayPublish) {
  // Reentrancy: a subscriber reacting by publishing must not deadlock.
  int deep = 0;
  bus_.Subscribe({"first", 0}, [&](const Event&) {
    bus_.Publish({"second", "s", 1, "", 0});
  });
  bus_.Subscribe({"second", 0}, [&](const Event&) { ++deep; });
  bus_.Publish({"first", "s", 1, "", 0});
  EXPECT_EQ(deep, 1);
}

TEST_F(EventBusTest, PresetTimestampIsKept) {
  std::vector<Event> received;
  bus_.Subscribe({"*", 0}, [&](const Event& e) { received.push_back(e); });
  bus_.Publish({"t", "s", 1, "", 777});
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].time_us, 777);
}

}  // namespace
}  // namespace gaa::ids
