#include "http/server.h"

#include <gtest/gtest.h>

#include "http/doc_tree.h"
#include "http/static_plane.h"
#include "util/strings.h"

namespace gaa::http {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  ServerTest()
      : clock_(0),
        tree_(DocTree::DemoSite()),
        server_(&tree_, &allow_all_, &clock_) {}

  HttpResponse Get(const std::string& target, const std::string& ip = "10.0.0.1") {
    return server_.HandleText(BuildGetRequest(target),
                              util::Ipv4Address::Parse(ip).value());
  }

  HttpResponse Head(const std::string& target,
                    const std::string& ip = "10.0.0.1") {
    std::string raw = "HEAD " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
    return server_.HandleText(raw, util::Ipv4Address::Parse(ip).value());
  }

  util::SimulatedClock clock_;
  DocTree tree_;
  AllowAllController allow_all_;
  WebServer server_;
};

TEST_F(ServerTest, ServesStaticDocument) {
  auto response = Get("/index.html");
  EXPECT_EQ(response.status, StatusCode::kOk);
  // Static documents are served zero-copy: the content is a view into the
  // DocTree, not an owned body string.
  EXPECT_NE(response.BodyView().find("Welcome"), std::string_view::npos);
  EXPECT_EQ(response.headers.at("Content-Type"), "text/html");
}

TEST_F(ServerTest, HeadStripsBodyForEveryStatus) {
  // Regression: only 200s had their body stripped, so HEAD of a missing or
  // forbidden target leaked the error body.  Every status must come back
  // header-only, with the Content-Length the GET would have carried.
  auto get_ok = Get("/index.html");
  auto head_ok = Head("/index.html");
  EXPECT_EQ(head_ok.status, StatusCode::kOk);
  EXPECT_TRUE(head_ok.BodyView().empty());
  EXPECT_EQ(head_ok.headers.at("Content-Length"),
            std::to_string(get_ok.BodySize()));
  EXPECT_EQ(head_ok.SerializeHead(), get_ok.SerializeHead());

  auto get_missing = Get("/missing.html");
  auto head_missing = Head("/missing.html");
  EXPECT_EQ(head_missing.status, StatusCode::kNotFound);
  EXPECT_TRUE(head_missing.BodyView().empty());
  EXPECT_GT(get_missing.BodySize(), 0u);
  EXPECT_EQ(head_missing.headers.at("Content-Length"),
            std::to_string(get_missing.BodySize()));
  EXPECT_EQ(head_missing.SerializeHead(), get_missing.SerializeHead());
}

TEST_F(ServerTest, StaticDocumentCarriesValidatorsAndDate) {
  auto response = Get("/index.html");
  EXPECT_EQ(response.headers.at("ETag"),
            ComputeEtag(tree_.FindDocument("/index.html")->content));
  EXPECT_EQ(response.headers.at("Last-Modified"),
            "Thu, 01 Jan 1970 00:00:00 GMT");  // demo mtime: epoch
  EXPECT_EQ(response.headers.at("Date"), "Thu, 01 Jan 1970 00:00:00 GMT");
}

TEST_F(ServerTest, ConditionalGetReturns304) {
  auto get = Get("/index.html");
  const std::string& etag = get.headers.at("ETag");
  auto cond = server_.HandleText(
      BuildGetRequest("/index.html", {{"If-None-Match", etag}}),
      util::Ipv4Address::Parse("10.0.0.1").value());
  EXPECT_EQ(cond.status, StatusCode::kNotModified);
  EXPECT_TRUE(cond.BodyView().empty());
  EXPECT_EQ(cond.headers.at("Content-Length"), "0");
  EXPECT_EQ(cond.headers.at("ETag"), etag);  // validators travel on the 304

  auto ims = server_.HandleText(
      BuildGetRequest("/index.html",
                      {{"If-Modified-Since", get.headers.at("Last-Modified")}}),
      util::Ipv4Address::Parse("10.0.0.1").value());
  EXPECT_EQ(ims.status, StatusCode::kNotModified);
}

TEST_F(ServerTest, StaleOrUnparsableConditionalsGetFullResponse) {
  auto miss = server_.HandleText(
      BuildGetRequest("/index.html", {{"If-None-Match", "\"stale\""}}),
      util::Ipv4Address::Parse("10.0.0.1").value());
  EXPECT_EQ(miss.status, StatusCode::kOk);
  EXPECT_NE(miss.BodyView().find("Welcome"), std::string_view::npos);

  auto bad_ims = server_.HandleText(
      BuildGetRequest("/index.html", {{"If-Modified-Since", "yesterday-ish"}}),
      util::Ipv4Address::Parse("10.0.0.1").value());
  EXPECT_EQ(bad_ims.status, StatusCode::kOk);
}

TEST_F(ServerTest, RunsCgi) {
  auto response = Get("/cgi-bin/search?q=apache");
  EXPECT_EQ(response.status, StatusCode::kOk);
  EXPECT_NE(response.body.find("q=apache"), std::string::npos);
}

TEST_F(ServerTest, NotFound) {
  auto response = Get("/missing.html");
  EXPECT_EQ(response.status, StatusCode::kNotFound);
}

TEST_F(ServerTest, MalformedRequestIs400AndHooked) {
  RequestDefect seen = RequestDefect::kNone;
  server_.set_malformed_hook(
      [&](RequestDefect defect, const std::string&, util::Ipv4Address) {
        seen = defect;
      });
  auto response = server_.HandleText("GEX / HTTP/1.1\r\n\r\n",
                                     util::Ipv4Address::Parse("1.2.3.4").value());
  EXPECT_EQ(response.status, StatusCode::kBadRequest);
  EXPECT_EQ(seen, RequestDefect::kBadMethod);
}

TEST_F(ServerTest, OversizedTargetIs414) {
  std::string target = "/" + std::string(10'000, 'a');
  auto response = Get(target);
  EXPECT_EQ(response.status, StatusCode::kUriTooLong);
}

TEST_F(ServerTest, AccessLogRecordsRequests) {
  Get("/index.html");
  Get("/missing.html");
  auto log = server_.AccessLog();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].status, 200);
  EXPECT_EQ(log[0].request_line, "GET /index.html");
  EXPECT_EQ(log[1].status, 404);
  EXPECT_EQ(server_.requests_served(), 2u);
  auto counts = server_.StatusCounts();
  EXPECT_EQ(counts.at(200), 1u);
  EXPECT_EQ(counts.at(404), 1u);
}

TEST_F(ServerTest, ClearLogs) {
  Get("/index.html");
  server_.ClearLogs();
  EXPECT_TRUE(server_.AccessLog().empty());
  EXPECT_TRUE(server_.StatusCounts().empty());
}

// --- controller hooks -----------------------------------------------------

class HookProbeController final : public AccessController {
 public:
  Verdict Check(RequestRec& rec) override {
    ++checks;
    if (rec.path == "/deny-me") {
      return Verdict::Respond(HttpResponse::Make(StatusCode::kForbidden));
    }
    return Verdict::Allow();
  }
  bool OnExecution(RequestRec&, const OperationObservation& obs) override {
    ++executions;
    last_cpu = obs.cpu_seconds;
    return !abort_next;
  }
  void OnComplete(RequestRec&, const OperationObservation&, bool success) override {
    ++completions;
    last_success = success;
  }

  int checks = 0;
  int executions = 0;
  int completions = 0;
  bool abort_next = false;
  double last_cpu = 0;
  bool last_success = false;
};

class HookTest : public ::testing::Test {
 protected:
  HookTest() : clock_(0), tree_(DocTree::DemoSite()),
               server_(&tree_, &probe_, &clock_) {}

  HttpResponse Get(const std::string& target) {
    return server_.HandleText(BuildGetRequest(target),
                              util::Ipv4Address::Parse("10.0.0.1").value());
  }

  util::SimulatedClock clock_;
  DocTree tree_;
  HookProbeController probe_;
  WebServer server_;
};

TEST_F(HookTest, AllPhasesRunOnSuccess) {
  auto response = Get("/index.html");
  EXPECT_EQ(response.status, StatusCode::kOk);
  EXPECT_EQ(probe_.checks, 1);
  EXPECT_EQ(probe_.executions, 1);
  EXPECT_EQ(probe_.completions, 1);
  EXPECT_TRUE(probe_.last_success);
}

TEST_F(HookTest, DeniedRequestSkipsHandlerAndCompletion) {
  auto response = Get("/deny-me");
  EXPECT_EQ(response.status, StatusCode::kForbidden);
  EXPECT_EQ(probe_.executions, 0);
  EXPECT_EQ(probe_.completions, 0);
}

TEST_F(HookTest, ExecutionAbortYields403AndFailureCompletion) {
  probe_.abort_next = true;
  auto response = Get("/cgi-bin/search?q=x");
  EXPECT_EQ(response.status, StatusCode::kForbidden);
  EXPECT_NE(response.body.find("aborted"), std::string::npos);
  EXPECT_EQ(probe_.completions, 1);
  EXPECT_FALSE(probe_.last_success);
}

TEST_F(HookTest, CgiCostModelReachesExecutionHook) {
  Get("/cgi-bin/phf?Qalias=x%0acat");  // exploit path: 0.05 cpu-seconds
  EXPECT_DOUBLE_EQ(probe_.last_cpu, 0.05);
}

TEST_F(HookTest, NotFoundStillCompletesWithFailure) {
  Get("/missing");
  EXPECT_EQ(probe_.completions, 1);
  EXPECT_FALSE(probe_.last_success);
}

// --- baseline htaccess controller end-to-end -------------------------------

TEST(HtaccessServer, PrivateAreaProtected) {
  util::SimulatedClock clock(0);
  DocTree tree = DocTree::DemoSite();
  tree.SetHtaccess("/private",
                   "AuthType Basic\nAuthUserFile staff\nRequire valid-user\n");
  HtpasswdRegistry passwords;
  passwords.GetOrCreate("staff").SetUser("alice", "wonder");
  HtaccessController controller(&tree, &passwords);
  WebServer server(&tree, &controller, &clock);

  auto ip = util::Ipv4Address::Parse("10.0.0.1").value();
  auto anon = server.HandleText(BuildGetRequest("/private/report.html"), ip);
  EXPECT_EQ(anon.status, StatusCode::kUnauthorized);
  EXPECT_NE(anon.headers.at("WWW-Authenticate").find("Basic"),
            std::string::npos);

  auto authed = server.HandleText(
      BuildGetRequest("/private/report.html",
                      {{"Authorization",
                        "Basic " + util::Base64Encode("alice:wonder")}}),
      ip);
  EXPECT_EQ(authed.status, StatusCode::kOk);

  auto open = server.HandleText(BuildGetRequest("/index.html"), ip);
  EXPECT_EQ(open.status, StatusCode::kOk);
}

TEST(HtaccessServer, HostRestriction) {
  util::SimulatedClock clock(0);
  DocTree tree = DocTree::DemoSite();
  tree.SetHtaccess("/", "Order Allow,Deny\nAllow from 10.0.0.0/8\n");
  HtpasswdRegistry passwords;
  HtaccessController controller(&tree, &passwords);
  WebServer server(&tree, &controller, &clock);

  auto inside = server.HandleText(
      BuildGetRequest("/index.html"), util::Ipv4Address::Parse("10.1.1.1").value());
  EXPECT_EQ(inside.status, StatusCode::kOk);
  auto outside = server.HandleText(
      BuildGetRequest("/index.html"),
      util::Ipv4Address::Parse("203.0.113.9").value());
  EXPECT_EQ(outside.status, StatusCode::kForbidden);
}

TEST(HtaccessServer, BrokenHtaccessFailsClosed) {
  util::SimulatedClock clock(0);
  DocTree tree = DocTree::DemoSite();
  tree.SetHtaccess("/", "Bogus nonsense\n");
  HtpasswdRegistry passwords;
  HtaccessController controller(&tree, &passwords);
  WebServer server(&tree, &controller, &clock);
  auto response = server.HandleText(
      BuildGetRequest("/index.html"), util::Ipv4Address::Parse("10.0.0.1").value());
  EXPECT_EQ(response.status, StatusCode::kInternalError);
}

TEST(DocTreeTest, DemoSiteContents) {
  DocTree tree = DocTree::DemoSite();
  EXPECT_GE(tree.document_count(), 5u);
  EXPECT_GE(tree.cgi_count(), 4u);
  EXPECT_TRUE(tree.Exists("/index.html"));
  EXPECT_TRUE(tree.Exists("/cgi-bin/phf"));
  EXPECT_FALSE(tree.Exists("/nope"));
}

TEST(DocTreeTest, HtaccessChainOrder) {
  DocTree tree;
  tree.AddDocument("/a/b/c.html", {"x"});
  tree.SetHtaccess("/", "root");
  tree.SetHtaccess("/a", "mid");
  tree.SetHtaccess("/a/b", "leaf");
  tree.SetHtaccess("/unrelated", "other");
  auto chain = tree.HtaccessChain("/a/b/c.html");
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0], "root");
  EXPECT_EQ(chain[1], "mid");
  EXPECT_EQ(chain[2], "leaf");
}

TEST(DocTreeTest, ChainNormalizesDoubledAndTrailingSlashes) {
  // Regression: the chain walker split on raw slash positions, so "/a//b"
  // walked "/a/", "/a//b" — silently skipping the "/a/b" htaccess entry.
  // A doubled slash must never shed protection on the way down.
  DocTree tree;
  tree.SetHtaccess("/", "root");
  tree.SetHtaccess("/a", "mid");
  tree.SetHtaccess("/a/b", "leaf");
  std::vector<std::string> full = {"root", "mid", "leaf"};
  EXPECT_EQ(tree.HtaccessChain("/a//b/c.html"), full);
  EXPECT_EQ(tree.HtaccessChain("//a/b/c.html"), full);
  EXPECT_EQ(tree.HtaccessChain("/a///b//c.html"), full);
  // A trailing slash names a directory, which sits in its own chain.
  EXPECT_EQ(tree.HtaccessChain("/a/b/"), full);
  EXPECT_EQ(tree.HtaccessChain("//"), (std::vector<std::string>{"root"}));
}

TEST(DocTreeTest, PhfVulnerabilityModel) {
  DocTree tree = DocTree::DemoSite();
  const CgiScript* phf = tree.FindCgi("/cgi-bin/phf");
  ASSERT_NE(phf, nullptr);
  auto benign = (*phf)("Qalias=jdoe");
  EXPECT_TRUE(benign.files_touched.empty());
  auto exploit = (*phf)("Qalias=x%0a/bin/cat%20/etc/passwd");
  ASSERT_EQ(exploit.files_touched.size(), 1u);
  EXPECT_EQ(exploit.files_touched[0], "/etc/passwd");
}

}  // namespace
}  // namespace gaa::http
