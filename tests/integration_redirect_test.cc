// Scenario test: adaptive redirection (paper §6 step 2d).
//
// Redirection policies encode client characteristics and system state in
// pre-conditions; the pre_cond_redirect condition is returned unevaluated,
// the GAA answer becomes MAYBE, and the server issues HTTP 302 to the URL
// carried in the condition value.
#include <gtest/gtest.h>

#include "http/doc_tree.h"
#include "integration/gaa_web_server.h"

namespace gaa::web {
namespace {

using http::StatusCode;

class RedirectTest : public ::testing::Test {
 protected:
  static GaaWebServer::Options MakeOptions() {
    GaaWebServer::Options options;
    options.notification_latency_us = 0;
    return options;
  }

  RedirectTest() : server_(http::DocTree::DemoSite(), MakeOptions()) {}

  GaaWebServer server_;
};

TEST_F(RedirectTest, ClientsFromRemoteNetworkAreRedirected) {
  // Clients outside 10/8 are served by the replica closest to them.
  ASSERT_TRUE(server_
                  .SetLocalPolicy("/", R"(
pos_access_right apache *
pre_cond_location local 192.0.2.0/24
pre_cond_redirect local http://replica-eu.example.org/
pos_access_right apache *
)")
                  .ok());
  auto remote = server_.Get("/index.html", "192.0.2.44");
  EXPECT_EQ(remote.status, StatusCode::kFound);
  EXPECT_EQ(remote.headers.at("Location"), "http://replica-eu.example.org/");
  // Local clients fall through to the unconditional entry and are served.
  auto local = server_.Get("/index.html", "10.0.0.1");
  EXPECT_EQ(local.status, StatusCode::kOk);
}

TEST_F(RedirectTest, LoadSheddingRedirectUnderHighThreat) {
  // Under elevated threat, shed anonymous traffic to a hardened mirror.
  ASSERT_TRUE(server_
                  .SetLocalPolicy("/", R"(
pos_access_right apache *
pre_cond_system_threat_level local >low
pre_cond_redirect local http://mirror.example.org/
pos_access_right apache *
)")
                  .ok());
  server_.state().SetThreatLevel(core::ThreatLevel::kMedium);
  auto response = server_.Get("/index.html", "10.0.0.1");
  EXPECT_EQ(response.status, StatusCode::kFound);
  EXPECT_EQ(response.headers.at("Location"), "http://mirror.example.org/");

  server_.state().SetThreatLevel(core::ThreatLevel::kLow);
  EXPECT_EQ(server_.Get("/index.html", "10.0.0.1").status, StatusCode::kOk);
}

TEST_F(RedirectTest, RedirectUrlCanBeAdaptedThroughVariables) {
  // The redirect target itself can come from SystemState (var:), letting
  // the IDS repoint traffic without editing policy files... the condition
  // value carries the variable reference, and the application resolves it
  // at translation time only if the value is literal — so here we check the
  // literal-value path with two policies swapped at runtime instead.
  ASSERT_TRUE(server_
                  .SetLocalPolicy("/", R"(
pos_access_right apache *
pre_cond_redirect local http://replica-1.example.org/
)")
                  .ok());
  EXPECT_EQ(server_.Get("/x", "10.0.0.1").headers.at("Location"),
            "http://replica-1.example.org/");
  // The policy officer repoints the replica; the change is immediate
  // (policy cache disabled) — the paper's "tightening local policies" flow.
  ASSERT_TRUE(server_
                  .SetLocalPolicy("/", R"(
pos_access_right apache *
pre_cond_redirect local http://replica-2.example.org/
)")
                  .ok());
  EXPECT_EQ(server_.Get("/x", "10.0.0.1").headers.at("Location"),
            "http://replica-2.example.org/");
}

}  // namespace
}  // namespace gaa::web
