// End-to-end observability pipeline: denial attribution into the audit
// stream, the /__status/policies + /metrics.json + /slow views, config/env
// tracer knobs, and the watchdog wired through GaaWebServer.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <thread>

#include "audit/audit_stream.h"
#include "integration/gaa_web_server.h"
#include "util/config.h"

namespace gaa::web {
namespace {

std::string TempPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

TEST(Observability, DeniedRequestIsAuditedWithAttribution) {
  GaaWebServer server(http::DocTree::DemoSite());
  // Local policies conjoin: "/" grants, "/private" denies -> the denial is
  // attributed to the /private entry that flipped the answer.
  ASSERT_TRUE(
      server.SetLocalPolicy("/", "pos_access_right apache *\n").ok());
  ASSERT_TRUE(
      server.SetLocalPolicy("/private", "neg_access_right apache *\n").ok());

  EXPECT_EQ(server.Get("/private/report.html", "10.9.9.9").status,
            http::StatusCode::kForbidden);

  auto decisions = server.audit_log().ByCategory("decision");
  ASSERT_GE(decisions.size(), 1u);
  const audit::AuditRecord& rec = decisions.back();
  EXPECT_EQ(rec.decision, "no");
  EXPECT_EQ(rec.client, "10.9.9.9");
  EXPECT_EQ(rec.policy, "local:/private");
  EXPECT_EQ(rec.entry, 0);
  EXPECT_NE(rec.trace_id, 0u);
}

TEST(Observability, GrantedRequestsAreNotPerRequestAudited) {
  GaaWebServer server(http::DocTree::DemoSite());
  ASSERT_TRUE(
      server.SetLocalPolicy("/", "pos_access_right apache *\n").ok());
  EXPECT_EQ(server.Get("/index.html", "10.0.0.1").status,
            http::StatusCode::kOk);
  EXPECT_EQ(server.audit_log().CountCategory("decision"), 0u);
}

TEST(Observability, StatusPoliciesViewListsEntryCountsAndConditions) {
  GaaWebServer server(http::DocTree::DemoSite());
  // Entry 0 applies to GET but its regex condition never matches, so every
  // scan records a miss there before entry 1 grants.
  ASSERT_TRUE(server
                  .SetLocalPolicy("/",
                                  "pos_access_right apache *\n"
                                  "pre_cond_regex gnu *no-such-path*\n"
                                  "pos_access_right apache *\n")
                  .ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(server.Get("/index.html", "10.0.0.1").status,
              http::StatusCode::kOk);
  }

  auto response = server.Get("/__status/policies", "10.0.0.1");
  ASSERT_EQ(response.status, http::StatusCode::kOk);
  EXPECT_EQ(response.headers.at("Content-Type"), "application/json");
  EXPECT_NE(response.body.find("\"policy\":\"local:/\""), std::string::npos);
  // Entry 0 missed the 3 document requests plus the scrape itself (the
  // scrape is authorized before rendering); entry 1 granted all 4.
  EXPECT_NE(response.body.find("\"entry\":1"), std::string::npos);
  EXPECT_NE(response.body.find("\"yes\":4"), std::string::npos);
  EXPECT_NE(response.body.find("\"miss\":4"), std::string::npos);
  // The regex condition's latency histogram shows up with quantiles.
  EXPECT_NE(response.body.find("\"cond\":\"pre_cond_regex\""),
            std::string::npos);
  EXPECT_NE(response.body.find("\"p95\":"), std::string::npos);
}

TEST(Observability, StatusMetricsJsonHasQuantiles) {
  GaaWebServer server(http::DocTree::DemoSite());
  ASSERT_TRUE(
      server.SetLocalPolicy("/", "pos_access_right apache *\n").ok());
  EXPECT_EQ(server.Get("/index.html", "10.0.0.1").status,
            http::StatusCode::kOk);
  auto response = server.Get("/__status/metrics.json", "10.0.0.1");
  ASSERT_EQ(response.status, http::StatusCode::kOk);
  EXPECT_NE(response.body.find("\"histograms\":["), std::string::npos);
  EXPECT_NE(response.body.find("\"p95\":"), std::string::npos);
  EXPECT_NE(response.body.find("http_request_latency_us"), std::string::npos);
}

TEST(Observability, NewStatusViewsArePolicyProtected) {
  GaaWebServer server(http::DocTree::DemoSite());
  ASSERT_TRUE(server
                  .SetLocalPolicy("/",
                                  "neg_access_right apache *\n"
                                  "pre_cond_regex gnu *__status*\n"
                                  "pos_access_right apache *\n")
                  .ok());
  for (const char* path :
       {"/__status/policies", "/__status/metrics.json", "/__status/slow"}) {
    EXPECT_EQ(server.Get(path, "10.0.0.1").status,
              http::StatusCode::kForbidden)
        << path;
  }
  EXPECT_EQ(server.Get("/index.html", "10.0.0.1").status,
            http::StatusCode::kOk);
}

TEST(Observability, AuditStreamOptionWritesJsonl) {
  const std::string path = TempPath("observability_stream.jsonl");
  GaaWebServer::Options options;
  options.audit_stream.path = path;
  GaaWebServer server(http::DocTree::DemoSite(), options);
  ASSERT_TRUE(
      server.SetLocalPolicy("/private", "neg_access_right apache *\n").ok());
  ASSERT_TRUE(
      server.SetLocalPolicy("/", "pos_access_right apache *\n").ok());

  EXPECT_EQ(server.Get("/private/secret.html", "10.8.8.8").status,
            http::StatusCode::kForbidden);
  server.audit_log().Flush();

  auto text = util::ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  auto parsed = audit::ParseAuditJsonl(text.value());
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();
  bool found = false;
  for (const auto& rec : parsed.value()) {
    if (rec.category == "decision" && rec.policy == "local:/private") {
      found = true;
      EXPECT_EQ(rec.decision, "no");
      EXPECT_EQ(rec.client, "10.8.8.8");
    }
  }
  EXPECT_TRUE(found);
}

TEST(Observability, TracerKnobsConfigurableViaOptions) {
  GaaWebServer::Options options;
  options.tuning.trace_ring_capacity = 2;
  options.tuning.trace_sample_period = 2;  // trace every other request
  GaaWebServer server(http::DocTree::DemoSite(), options);
  ASSERT_TRUE(
      server.SetLocalPolicy("/", "pos_access_right apache *\n").ok());
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(server.Get("/index.html", "10.0.0.1").status,
              http::StatusCode::kOk);
  }
  EXPECT_EQ(server.telemetry().tracer().capacity(), 2u);
  EXPECT_EQ(server.telemetry().tracer().Recent().size(), 2u);
  // 1-in-2 sampling: 8 requests -> 4 traces started.
  EXPECT_EQ(server.telemetry().tracer().started(), 4u);
}

TEST(Observability, TracerKnobsConfigurableViaEnvironment) {
  ::setenv("GAA_TRACE_RING", "3", 1);
  ::setenv("GAA_TRACE_SAMPLE_PERIOD", "1", 1);
  GaaWebServer::Options options;
  options.tuning.trace_ring_capacity = 64;  // env should win
  GaaWebServer server(http::DocTree::DemoSite(), options);
  ::unsetenv("GAA_TRACE_RING");
  ::unsetenv("GAA_TRACE_SAMPLE_PERIOD");
  EXPECT_EQ(server.telemetry().tracer().capacity(), 3u);
}

TEST(Observability, WatchdogFlagsAndAuditsSlowRequests) {
  GaaWebServer::Options options;
  options.watchdog.enabled = true;
  options.watchdog.deadline_ms = 1;       // anything over 1 ms is "slow"
  options.watchdog.poll_interval_ms = 0;  // no monitor thread: manual scans
  GaaWebServer server(http::DocTree::DemoSite(), options);
  ASSERT_TRUE(
      server.SetLocalPolicy("/", "pos_access_right apache *\n").ok());
  ASSERT_NE(server.watchdog(), nullptr);

  // Open a trace "request" by hand so it is in flight during the scan, and
  // let it age past the deadline (steady clock, so a real sleep).
  auto trace = server.telemetry().tracer().Begin();
  ASSERT_NE(trace, nullptr);
  trace->method = "GET";
  trace->target = "/slow.html";
  trace->client_ip = "10.3.3.3";
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(server.watchdog()->ScanOnce(), 1u);
  server.telemetry().tracer().Finish(std::move(trace));

  EXPECT_EQ(server.telemetry()
                .registry()
                .GetCounter("slow_requests_total")
                ->Value(),
            1u);
  // Two audit events: flag-time (id + age) and retirement (full analysis).
  EXPECT_GE(server.audit_log().CountCategory("slow_request"), 2u);
  auto slow = server.telemetry().tracer().Pinned();
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_EQ(slow[0].target, "/slow.html");
  // The flagged request also fed the IDS as suspicious behaviour (§3.6).
  EXPECT_GE(server.ids().CountKind(core::ReportKind::kSuspiciousBehavior), 1u);

  auto response = server.Get("/__status/slow", "10.0.0.1");
  ASSERT_EQ(response.status, http::StatusCode::kOk);
  EXPECT_NE(response.body.find("\"target\":\"/slow.html\""),
            std::string::npos);
  EXPECT_NE(response.body.find("\"slow\":true"), std::string::npos);
}

TEST(Observability, ThreatEscalationIsAudited) {
  GaaWebServer server(http::DocTree::DemoSite());
  core::IdsReport report;
  report.kind = core::ReportKind::kDetectedAttack;
  report.source_ip = "10.66.66.66";
  report.severity = 10;
  report.confidence = 1.0;
  for (int i = 0; i < 50; ++i) server.ids().Report(report);
  ASSERT_GE(server.audit_log().CountCategory("threat"), 1u);
  const auto threats = server.audit_log().ByCategory("threat");
  EXPECT_NE(threats[0].message.find("threat level"), std::string::npos);
  EXPECT_EQ(threats[0].client, "10.66.66.66");
}

}  // namespace
}  // namespace gaa::web
