// Tests for the §1 network-level countermeasures: pre_cond_firewall /
// rr_cond_block_network, and the set_var / var_equals pair that implements
// "stopping selected services" as policy.
#include <gtest/gtest.h>

#include "conditions/builtin.h"
#include "http/doc_tree.h"
#include "integration/gaa_web_server.h"
#include "integration/sshd.h"
#include "testing/helpers.h"

namespace gaa::cond {
namespace {

using gaa::testing::MakeCond;
using gaa::testing::MakeContext;
using gaa::testing::TestRig;
using util::Tristate;

class FirewallCondTest : public ::testing::Test {
 protected:
  TestRig rig_;
  core::CondRoutine firewall_ = MakeFirewallRoutine({});
  core::CondRoutine block_ = MakeBlockNetworkRoutine({});
};

TEST_F(FirewallCondTest, EmptyGroupAllowsEveryone) {
  auto ctx = MakeContext("203.0.113.9");
  EXPECT_EQ(firewall_(MakeCond("pre_cond_firewall", "local", ""), ctx,
                      rig_.services)
                .status,
            Tristate::kYes);
}

TEST_F(FirewallCondTest, BlockedNetworkDenies) {
  rig_.state.AddGroupMember("BlockedNets", "203.0.113.0/24");
  auto inside = MakeContext("203.0.113.77");
  auto outside = MakeContext("198.51.100.1");
  auto cond = MakeCond("pre_cond_firewall", "local", "");
  EXPECT_EQ(firewall_(cond, inside, rig_.services).status, Tristate::kNo);
  EXPECT_EQ(firewall_(cond, outside, rig_.services).status, Tristate::kYes);
}

TEST_F(FirewallCondTest, BlockNetworkActionAddsEnclosingPrefix) {
  auto ctx = MakeContext("203.0.113.77");
  ctx.request_granted = false;
  auto out = block_(MakeCond("rr_cond_block_network", "local",
                             "on:failure/24"),
                    ctx, rig_.services);
  EXPECT_EQ(out.status, Tristate::kYes);
  EXPECT_TRUE(rig_.state.GroupContains("BlockedNets", "203.0.113.0/24"));
  EXPECT_EQ(rig_.audit.CountCategory("firewall"), 1u);
  // Enforcement now catches a *different* host in the same network.
  auto neighbor = MakeContext("203.0.113.200");
  EXPECT_EQ(firewall_(MakeCond("pre_cond_firewall", "local", ""), neighbor,
                      rig_.services)
                .status,
            Tristate::kNo);
}

TEST_F(FirewallCondTest, CustomPrefixAndGroup) {
  auto ctx = MakeContext("10.20.30.40");
  ctx.request_granted = false;
  block_(MakeCond("rr_cond_block_network", "local", "on:failure/16/Quarantine"),
         ctx, rig_.services);
  EXPECT_TRUE(rig_.state.GroupContains("Quarantine", "10.20.0.0/16"));
  auto neighbor = MakeContext("10.20.99.1");
  EXPECT_EQ(firewall_(MakeCond("pre_cond_firewall", "local", "Quarantine"),
                      neighbor, rig_.services)
                .status,
            Tristate::kNo);
}

TEST_F(FirewallCondTest, BadPrefixFails) {
  auto ctx = MakeContext();
  ctx.request_granted = false;
  EXPECT_EQ(block_(MakeCond("rr_cond_block_network", "local",
                            "on:failure/notanumber"),
                   ctx, rig_.services)
                .status,
            Tristate::kNo);
}

TEST(SetVarCond, WritesAndExpands) {
  TestRig rig;
  auto set_var = MakeSetVarRoutine({});
  auto ctx = MakeContext("9.9.9.9");
  ctx.request_granted = false;
  auto out = set_var(MakeCond("rr_cond_set_var", "local",
                              "on:failure/last_attacker/%ip"),
                     ctx, rig.services);
  EXPECT_EQ(out.status, util::Tristate::kYes);
  EXPECT_EQ(rig.state.GetVariable("last_attacker").value(), "9.9.9.9");
}

TEST(VarEqualsCond, ComparesIncludingUnset) {
  TestRig rig;
  auto var_equals = MakeVarEqualsRoutine({});
  auto ctx = MakeContext();
  EXPECT_EQ(var_equals(MakeCond("pre_cond_var", "local",
                                "service.sshd.disabled unset"),
                       ctx, rig.services)
                .status,
            util::Tristate::kYes);
  rig.state.SetVariable("service.sshd.disabled", "true");
  EXPECT_EQ(var_equals(MakeCond("pre_cond_var", "local",
                                "service.sshd.disabled unset"),
                       ctx, rig.services)
                .status,
            util::Tristate::kNo);
  EXPECT_EQ(var_equals(MakeCond("pre_cond_var", "local",
                                "service.sshd.disabled true"),
                       ctx, rig.services)
                .status,
            util::Tristate::kYes);
}

// --- end-to-end: §1's countermeasures as policy ------------------------------

web::GaaWebServer::Options TestOptions() {
  web::GaaWebServer::Options options;
  options.notification_latency_us = 0;
  return options;
}

TEST(NetworkBlockE2E, AttackBlocksTheWholeSubnet) {
  web::GaaWebServer server(http::DocTree::DemoSite(), TestOptions());
  ASSERT_TRUE(server
                  .SetLocalPolicy("/", R"(
neg_access_right apache *
pre_cond_regex gnu *phf*
rr_cond_block_network local on:failure/24
pos_access_right apache *
pre_cond_firewall local BlockedNets
)")
                  .ok());
  // Benign request from the subnet before the attack: served.
  EXPECT_EQ(server.Get("/index.html", "203.0.113.5").status,
            http::StatusCode::kOk);
  // One probe from .77 blocks 203.0.113.0/24 ...
  EXPECT_EQ(server.Get("/cgi-bin/phf?x", "203.0.113.77").status,
            http::StatusCode::kForbidden);
  // ... which now denies the scripted follow-up from a *sibling* address —
  // stronger than the per-host blacklist against address-rotating scans.
  EXPECT_EQ(server.Get("/cgi-bin/unknown-probe", "203.0.113.5").status,
            http::StatusCode::kForbidden);
  // Hosts outside the subnet are unaffected.
  EXPECT_EQ(server.Get("/index.html", "10.0.0.1").status,
            http::StatusCode::kOk);
}

TEST(ServiceStopE2E, WebAttackDisablesSshService) {
  // §1: "stopping selected services (e.g. disable ssh connections)" — the
  // web-side response flips a service variable that gates ssh logins.
  web::GaaWebServer server(http::DocTree::DemoSite(), TestOptions());
  web::SshDaemon sshd(&server.api(), &server.passwords());
  sshd.AddUser("root", "toor");
  ASSERT_TRUE(server
                  .SetLocalPolicy("/sshd", R"(
pos_access_right sshd login
pre_cond_var local service.sshd.disabled unset
pre_cond_accessid USER sshd *
)")
                  .ok());
  ASSERT_TRUE(server
                  .SetLocalPolicy("/", R"(
neg_access_right apache *
pre_cond_regex gnu *phf*
rr_cond_set_var local on:failure/service.sshd.disabled/true
pos_access_right apache *
)")
                  .ok());
  EXPECT_EQ(sshd.Login("root", "toor", "10.0.0.1"),
            web::SshDaemon::LoginResult::kAccepted);
  // The web attack flips the switch...
  server.Get("/cgi-bin/phf?x", "203.0.113.9");
  EXPECT_EQ(server.state().GetVariable("service.sshd.disabled").value(),
            "true");
  // ...and ssh is now closed for everyone until the admin resets it.
  EXPECT_EQ(sshd.Login("root", "toor", "10.0.0.1"),
            web::SshDaemon::LoginResult::kDenied);
  server.state().SetVariable("service.sshd.disabled", "unset");
  EXPECT_EQ(sshd.Login("root", "toor", "10.0.0.1"),
            web::SshDaemon::LoginResult::kAccepted);
}

}  // namespace
}  // namespace gaa::cond
