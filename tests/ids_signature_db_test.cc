#include "ids/signature_db.h"

#include <gtest/gtest.h>

namespace gaa::ids {
namespace {

TEST(SignatureDb, KnownAttacksLoad) {
  SignatureDb db = SignatureDb::KnownWebAttacks();
  EXPECT_GE(db.size(), 9u);
}

TEST(SignatureDb, MatchesPhf) {
  SignatureDb db = SignatureDb::KnownWebAttacks();
  auto hit = db.FirstMatch("/cgi-bin/phf", "Qalias=x");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->name, "cgi_phf");
  EXPECT_EQ(hit->attack_type, "cgi_exploit");
}

TEST(SignatureDb, MatchesSlashDos) {
  SignatureDb db = SignatureDb::KnownWebAttacks();
  std::string url = "/" + std::string(40, '/');
  auto hits = db.Match(url, "");
  bool found = false;
  for (const auto& h : hits) {
    if (h.name == "dos_slashes") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(SignatureDb, MatchesNimdaPercent) {
  SignatureDb db = SignatureDb::KnownWebAttacks();
  auto hits = db.Match("/scripts/..%255c../cmd.exe", "/c+dir");
  bool percent = false;
  bool cmd = false;
  for (const auto& h : hits) {
    if (h.name == "worm_nimda_percent") percent = true;
    if (h.name == "iis_cmd_exe") cmd = true;
  }
  EXPECT_TRUE(percent);
  EXPECT_TRUE(cmd);
}

TEST(SignatureDb, LengthRuleFiresOnOversizedQuery) {
  SignatureDb db = SignatureDb::KnownWebAttacks();
  std::string query(1200, 'A');
  auto hits = db.Match("/cgi-bin/search", query);
  bool overflow = false;
  for (const auto& h : hits) {
    if (h.name == "overflow_cgi_input") overflow = true;
  }
  EXPECT_TRUE(overflow);
  EXPECT_TRUE(db.Match("/cgi-bin/search", std::string(900, 'A')).empty());
}

TEST(SignatureDb, BenignUrlsDoNotMatch) {
  SignatureDb db = SignatureDb::KnownWebAttacks();
  EXPECT_TRUE(db.Match("/index.html", "").empty());
  EXPECT_TRUE(db.Match("/docs/guide.html", "").empty());
  EXPECT_TRUE(db.Match("/cgi-bin/search", "q=apache").empty());
}

TEST(SignatureDb, CustomSignatureAndRule) {
  SignatureDb db;
  db.Add({"custom", "*evil*", "custom_type", 5, "test"});
  db.AddRule({"long_url", MaxLengthRule::Field::kUrl, 50, "dos", 4, "test"});
  EXPECT_EQ(db.size(), 2u);
  EXPECT_TRUE(db.FirstMatch("/evil/path", "").has_value());
  EXPECT_TRUE(db.FirstMatch("/" + std::string(60, 'a'), "").has_value());
  EXPECT_FALSE(db.FirstMatch("/ok", "").has_value());
}

TEST(SignatureDb, ToConditionValueBridgesIntoEacl) {
  SignatureDb db;
  db.Add({"a", "*phf*", "t", 5, ""});
  db.Add({"b", "*test-cgi*", "t", 5, ""});
  EXPECT_EQ(db.ToConditionValue(), "*phf* *test-cgi*");
}

}  // namespace
}  // namespace gaa::ids
