// Small-surface API tests: the gaps between the big suites — parameter
// classification lookups, deterministic RNG, printers, facade edge cases,
// and the §3-item-2 abnormal-parameter reporting.
#include <gtest/gtest.h>

#include "eacl/parser.h"
#include "eacl/printer.h"
#include "gaa/context.h"
#include "http/doc_tree.h"
#include "integration/gaa_web_server.h"
#include "util/rng.h"

namespace gaa {
namespace {

TEST(ParamLookup, AuthorityFiltering) {
  core::RequestContext ctx;
  ctx.AddParam("limit", "apache", "100");
  ctx.AddParam("limit", "sshd", "5");
  // Wildcard authority returns the first match in insertion order.
  ASSERT_NE(ctx.FindParam("limit"), nullptr);
  EXPECT_EQ(ctx.FindParam("limit")->value, "100");
  // Exact authority selects.
  ASSERT_NE(ctx.FindParam("limit", "sshd"), nullptr);
  EXPECT_EQ(ctx.FindParam("limit", "sshd")->value, "5");
  EXPECT_EQ(ctx.FindParam("limit", "ipsec"), nullptr);
}

TEST(ParamLookup, InGroupChecksUserAndGroups) {
  core::RequestContext ctx;
  ctx.user = "alice";
  ctx.groups = {"staff", "admins"};
  EXPECT_TRUE(ctx.InGroup("alice"));
  EXPECT_TRUE(ctx.InGroup("admins"));
  EXPECT_FALSE(ctx.InGroup("BadGuys"));
}

TEST(Rng, DeterministicAndSeedSensitive) {
  util::Rng a1(7), a2(7), b(8);
  bool differs = false;
  for (int i = 0; i < 100; ++i) {
    auto x = a1.Next();
    EXPECT_EQ(x, a2.Next());
    if (x != b.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, RangesRespectBounds) {
  util::Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    auto below = rng.NextBelow(7);
    EXPECT_LT(below, 7u);
    auto in_range = rng.NextInRange(-5, 5);
    EXPECT_GE(in_range, -5);
    EXPECT_LE(in_range, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Printer, EntryAndCondition) {
  eacl::Condition cond{"pre_cond_time", "local", "09:00-17:00"};
  EXPECT_EQ(eacl::PrintCondition(cond), "pre_cond_time local 09:00-17:00");
  eacl::Condition bare{"pre_cond_x", "local", ""};
  EXPECT_EQ(eacl::PrintCondition(bare), "pre_cond_x local");

  eacl::Entry entry;
  entry.right = {false, "apache", "*"};
  entry.pre.push_back(cond);
  std::string printed = eacl::PrintEntry(entry);
  EXPECT_EQ(printed,
            "neg_access_right apache *\npre_cond_time local 09:00-17:00\n");
}

web::GaaWebServer::Options TestOptions() {
  web::GaaWebServer::Options options;
  options.notification_latency_us = 0;
  return options;
}

TEST(Facade, UnparsableClientIpFallsBackToZero) {
  web::GaaWebServer server(http::DocTree::DemoSite(), TestOptions());
  ASSERT_TRUE(server.SetLocalPolicy("/", "pos_access_right apache *\n").ok());
  auto response = server.Get("/index.html", "not-an-ip");
  EXPECT_EQ(response.status, http::StatusCode::kOk);
  auto log = server.server().AccessLog();
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log.back().client_ip, "0.0.0.0");
}

TEST(Facade, SimClockPresentOnlyInSimMode) {
  web::GaaWebServer sim(http::DocTree::DemoSite(), TestOptions());
  EXPECT_NE(sim.sim_clock(), nullptr);
  web::GaaWebServer::Options real_options = TestOptions();
  real_options.use_real_clock = true;
  web::GaaWebServer real(http::DocTree::DemoSite(), real_options);
  EXPECT_EQ(real.sim_clock(), nullptr);
}

TEST(AbnormalParameters, OversizedQueryIsReported) {
  // §3 item 2: "Access requests with parameters that are abnormally large".
  web::GaaWebServer server(http::DocTree::DemoSite(), TestOptions());
  ASSERT_TRUE(server.SetLocalPolicy("/", "pos_access_right apache *\n").ok());
  // Normal request: no report.
  server.Get("/cgi-bin/search?q=apache", "10.0.0.1");
  EXPECT_EQ(server.ids().CountKind(core::ReportKind::kAbnormalParameters), 0u);
  // 3000-byte query: reported but still policy-decided (here: served).
  auto response = server.Get("/cgi-bin/search?q=" + std::string(3000, 'a'),
                             "10.0.0.1");
  EXPECT_EQ(response.status, http::StatusCode::kOk);
  EXPECT_EQ(server.ids().CountKind(core::ReportKind::kAbnormalParameters), 1u);
}

TEST(AbnormalParameters, ManyHeadersReported) {
  web::GaaWebServer server(http::DocTree::DemoSite(), TestOptions());
  ASSERT_TRUE(server.SetLocalPolicy("/", "pos_access_right apache *\n").ok());
  std::map<std::string, std::string> headers;
  for (int i = 0; i < 60; ++i) {
    headers["X-H" + std::to_string(i)] = "v";
  }
  server.HandleText(http::BuildGetRequest("/index.html", headers),
                    "10.0.0.1");
  EXPECT_EQ(server.ids().CountKind(core::ReportKind::kAbnormalParameters), 1u);
}

TEST(AbnormalParameters, AllSevenReportKindsHaveNames) {
  using core::ReportKind;
  for (ReportKind kind :
       {ReportKind::kIllFormedRequest, ReportKind::kAbnormalParameters,
        ReportKind::kSensitiveDenial, ReportKind::kThresholdViolation,
        ReportKind::kDetectedAttack, ReportKind::kSuspiciousBehavior,
        ReportKind::kLegitimatePattern}) {
    EXPECT_STRNE(core::ReportKindName(kind), "?");
  }
}

}  // namespace
}  // namespace gaa
