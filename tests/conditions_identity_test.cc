#include <gtest/gtest.h>

#include "conditions/builtin.h"
#include "testing/helpers.h"

namespace gaa::cond {
namespace {

using gaa::testing::MakeCond;
using gaa::testing::MakeContext;
using gaa::testing::TestRig;
using util::Tristate;

class AccessIdTest : public ::testing::Test {
 protected:
  TestRig rig_;
  core::CondRoutine routine_ = MakeAccessIdRoutine({});
};

TEST_F(AccessIdTest, UserUnauthenticatedIsUnevaluated) {
  auto ctx = MakeContext();
  auto out = routine_(MakeCond("pre_cond_accessid", "USER", "apache *"), ctx,
                      rig_.services);
  EXPECT_EQ(out.status, Tristate::kMaybe);
  EXPECT_FALSE(out.evaluated);  // drives the 401 path
}

TEST_F(AccessIdTest, UserWildcardAcceptsAnyAuthenticated) {
  auto ctx = MakeContext();
  ctx.authenticated = true;
  ctx.user = "alice";
  auto out = routine_(MakeCond("pre_cond_accessid", "USER", "apache *"), ctx,
                      rig_.services);
  EXPECT_EQ(out.status, Tristate::kYes);
}

TEST_F(AccessIdTest, UserExactMatch) {
  auto ctx = MakeContext();
  ctx.authenticated = true;
  ctx.user = "alice";
  EXPECT_EQ(routine_(MakeCond("pre_cond_accessid", "USER", "apache alice"),
                     ctx, rig_.services)
                .status,
            Tristate::kYes);
  EXPECT_EQ(routine_(MakeCond("pre_cond_accessid", "USER", "apache bob"), ctx,
                     rig_.services)
                .status,
            Tristate::kNo);
}

TEST_F(AccessIdTest, EmptyValueFails) {
  auto ctx = MakeContext();
  ctx.authenticated = true;
  ctx.user = "alice";
  EXPECT_EQ(routine_(MakeCond("pre_cond_accessid", "USER", ""), ctx,
                     rig_.services)
                .status,
            Tristate::kNo);
}

TEST_F(AccessIdTest, GroupMatchesClientIpInStateGroup) {
  // The §7.2 BadGuys blacklist: membership by source address.
  rig_.state.AddGroupMember("BadGuys", "203.0.113.7");
  auto bad = MakeContext("203.0.113.7");
  auto good = MakeContext("10.0.0.1");
  auto cond = MakeCond("pre_cond_accessid", "GROUP", "local BadGuys");
  EXPECT_EQ(routine_(cond, bad, rig_.services).status, Tristate::kYes);
  EXPECT_EQ(routine_(cond, good, rig_.services).status, Tristate::kNo);
}

TEST_F(AccessIdTest, GroupMatchesAuthenticatedUser) {
  rig_.state.AddGroupMember("staff", "alice");
  auto ctx = MakeContext();
  ctx.authenticated = true;
  ctx.user = "alice";
  EXPECT_EQ(routine_(MakeCond("pre_cond_accessid", "GROUP", "local staff"),
                     ctx, rig_.services)
                .status,
            Tristate::kYes);
}

TEST_F(AccessIdTest, GroupMatchesIdentityAssertedGroups) {
  auto ctx = MakeContext();
  ctx.authenticated = true;
  ctx.user = "bob";
  ctx.groups = {"admins"};
  EXPECT_EQ(routine_(MakeCond("pre_cond_accessid", "GROUP", "local admins"),
                     ctx, rig_.services)
                .status,
            Tristate::kYes);
}

TEST_F(AccessIdTest, HostCidrCheck) {
  auto inside = MakeContext("128.9.1.2");
  auto outside = MakeContext("1.2.3.4");
  auto cond = MakeCond("pre_cond_accessid", "HOST", "local 128.9.0.0/16");
  EXPECT_EQ(routine_(cond, inside, rig_.services).status, Tristate::kYes);
  EXPECT_EQ(routine_(cond, outside, rig_.services).status, Tristate::kNo);
}

TEST_F(AccessIdTest, HostWithNoValidCidrFails) {
  auto ctx = MakeContext();
  EXPECT_EQ(routine_(MakeCond("pre_cond_accessid", "HOST", "local garbage"),
                     ctx, rig_.services)
                .status,
            Tristate::kNo);
}

}  // namespace
}  // namespace gaa::cond
