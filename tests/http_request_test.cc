#include "http/request.h"

#include <gtest/gtest.h>

#include "util/strings.h"

namespace gaa::http {
namespace {

TEST(ParseRequest, SimpleGet) {
  auto result = ParseRequest(
      "GET /index.html HTTP/1.1\r\nHost: example.org\r\n\r\n");
  ASSERT_TRUE(result.ok()) << result.detail;
  const RequestRec& rec = *result.request;
  EXPECT_EQ(rec.method, "GET");
  EXPECT_EQ(rec.path, "/index.html");
  EXPECT_EQ(rec.raw_target, "/index.html");
  EXPECT_TRUE(rec.query.empty());
  EXPECT_EQ(rec.http_version, "HTTP/1.1");
  EXPECT_EQ(*rec.Header("host"), "example.org");
}

TEST(ParseRequest, QueryAndDecoding) {
  auto result = ParseRequest(
      "GET /cgi-bin/phf?Qalias=x%0a/bin/cat HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.request->path, "/cgi-bin/phf");
  EXPECT_EQ(result.request->query, "Qalias=x%0a/bin/cat");  // query undecoded
  EXPECT_EQ(result.request->raw_target, "/cgi-bin/phf?Qalias=x%0a/bin/cat");
}

TEST(ParseRequest, PathEscapesDecoded) {
  auto result = ParseRequest("GET /a%20b/c%2Fd HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.request->path, "/a b/c/d");
}

TEST(ParseRequest, LfOnlyLineEndings) {
  auto result = ParseRequest("GET / HTTP/1.1\nHost: x\n\nBODY");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.request->body, "BODY");
  EXPECT_EQ(*result.request->Header("host"), "x");
}

TEST(ParseRequest, BodyAfterCrlfCrlf) {
  auto result = ParseRequest(
      "POST /submit HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.request->method, "POST");
  EXPECT_EQ(result.request->body, "hello");
}

TEST(ParseRequest, DuplicateHeadersFold) {
  auto result = ParseRequest(
      "GET / HTTP/1.1\r\nAccept: a\r\nAccept: b\r\n\r\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result.request->Header("accept"), "a, b");
}

TEST(ParseRequest, ConflictingDuplicateContentLengthRejected) {
  // Folding would yield "10, 12" and silently lose the framing conflict —
  // the classic request-smuggling ambiguity.  Must be diagnosed instead.
  auto result = ParseRequest(
      "POST / HTTP/1.1\r\nContent-Length: 10\r\nContent-Length: 12\r\n\r\n"
      "0123456789");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.defect, RequestDefect::kBadHeader);
  EXPECT_NE(result.detail.find("content-length"), std::string::npos);
}

TEST(ParseRequest, IdenticalDuplicateContentLengthCollapses) {
  auto result = ParseRequest(
      "POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\n"
      "hello");
  ASSERT_TRUE(result.ok());
  // One value, not an Apache-style "5, 5" fold.
  EXPECT_EQ(*result.request->Header("content-length"), "5");
  EXPECT_EQ(result.request->body, "hello");
}

TEST(NormalizeHost, CasePortAndTrailingDotFold) {
  EXPECT_EQ(NormalizeHost("WWW.Example.COM:8080"), "www.example.com");
  EXPECT_EQ(NormalizeHost("example.com."), "example.com");
  EXPECT_EQ(NormalizeHost("EXAMPLE.com.:443"), "example.com");
  EXPECT_EQ(NormalizeHost("localhost"), "localhost");
  EXPECT_EQ(NormalizeHost(""), "");
  // Bracketed IPv6 keeps its brackets; only a post-bracket port is cut.
  EXPECT_EQ(NormalizeHost("[::1]:8080"), "[::1]");
  EXPECT_EQ(NormalizeHost("[2001:DB8::1]"), "[2001:db8::1]");
}

TEST(NormalizeHost, StackVariantMatchesAndTruncatesSafely) {
  char buf[256];
  EXPECT_EQ(NormalizeHostInto("WWW.Example.COM:8080", buf, sizeof(buf)),
            "www.example.com");
  // A host longer than the buffer is clipped, never overrun — a truncated
  // name can only turn a route match into a default-namespace miss.
  char tiny[4];
  EXPECT_EQ(NormalizeHostInto("ABCDEFGH", tiny, sizeof(tiny)), "abcd");
}

TEST(ParseRequest, DuplicateHostFoldsUnderNormalization) {
  // Same authority spelled differently must not be rejected as conflicting:
  // the reject path compares normalized hosts, exactly like tenant routing,
  // so the two can never disagree about which namespace a request is in.
  auto result = ParseRequest(
      "GET / HTTP/1.1\r\nHost: www.example.com\r\n"
      "Host: WWW.Example.COM:8080\r\n\r\n");
  ASSERT_TRUE(result.ok()) << result.detail;
  EXPECT_EQ(*result.request->Header("host"), "www.example.com");
}

TEST(ParseRequest, ConflictingDuplicateHostStillRejected) {
  auto result = ParseRequest(
      "GET / HTTP/1.1\r\nHost: a.example\r\nHost: b.example\r\n\r\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.defect, RequestDefect::kBadHeader);
  EXPECT_NE(result.detail.find("host"), std::string::npos);
}

TEST(ParseRequest, HeaderNamesLowercased) {
  auto result = ParseRequest("GET / HTTP/1.1\r\nUSER-AGENT: x\r\n\r\n");
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result.request->Header("user-agent"), nullptr);
  EXPECT_EQ(result.request->Header("USER-AGENT"), nullptr);
}

// --- defect diagnosis (feeds the §3 item-1 ill-formed reports) -------------

struct DefectCase {
  const char* name;
  const char* raw;
  RequestDefect expected;
};

class DefectTest : public ::testing::TestWithParam<DefectCase> {};

TEST_P(DefectTest, Diagnoses) {
  const auto& param = GetParam();
  auto result = ParseRequest(param.raw);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.defect, param.expected) << param.name << ": " << result.detail;
}

INSTANTIATE_TEST_SUITE_P(
    Defects, DefectTest,
    ::testing::Values(
        DefectCase{"two_fields", "GET /index.html\r\n\r\n",
                   RequestDefect::kBadRequestLine},
        DefectCase{"four_fields", "GET / HTTP/1.1 extra\r\n\r\n",
                   RequestDefect::kBadRequestLine},
        DefectCase{"empty", "", RequestDefect::kBadRequestLine},
        DefectCase{"unknown_method", "GEX / HTTP/1.1\r\n\r\n",
                   RequestDefect::kBadMethod},
        DefectCase{"method_bad_token", "G@T / HTTP/1.1\r\n\r\n",
                   RequestDefect::kBadMethod},
        DefectCase{"bad_version", "GET / HTTP/9.9\r\n\r\n",
                   RequestDefect::kBadVersion},
        DefectCase{"bad_escape", "GET /%zz HTTP/1.1\r\n\r\n",
                   RequestDefect::kBadEscape},
        DefectCase{"control_byte", "GET /\x01 HTTP/1.1\r\n\r\n",
                   RequestDefect::kControlBytes},
        DefectCase{"headerless_colon", "GET / HTTP/1.1\r\nnocolonhere\r\n\r\n",
                   RequestDefect::kBadHeader}),
    [](const ::testing::TestParamInfo<DefectCase>& info) {
      return info.param.name;
    });

TEST(ParseRequest, OversizedTarget) {
  ParseLimits limits;
  limits.max_target_bytes = 64;
  std::string raw = "GET /" + std::string(100, 'a') + " HTTP/1.1\r\n\r\n";
  auto result = ParseRequest(raw, limits);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.defect, RequestDefect::kOversizedTarget);
}

TEST(ParseRequest, TooManyHeadersIsTheHeaderDos) {
  // §1: "ill-formed HTTP requests (e.g., a large number of HTTP headers)".
  ParseLimits limits;
  limits.max_headers = 10;
  std::string raw = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 20; ++i) {
    raw += "X-H" + std::to_string(i) + ": v\r\n";
  }
  raw += "\r\n";
  auto result = ParseRequest(raw, limits);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.defect, RequestDefect::kTooManyHeaders);
}

TEST(ParseRequest, OversizedHeader) {
  ParseLimits limits;
  limits.max_header_bytes = 32;
  auto result = ParseRequest(
      "GET / HTTP/1.1\r\nX: " + std::string(100, 'v') + "\r\n\r\n", limits);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.defect, RequestDefect::kOversizedHeader);
}

// --- Basic credentials -------------------------------------------------------

TEST(BasicCredentials, DecodesUserPass) {
  auto result = ParseRequest(
      "GET / HTTP/1.1\r\nAuthorization: Basic " +
      util::Base64Encode("alice:wonder") + "\r\n\r\n");
  ASSERT_TRUE(result.ok());
  auto creds = result.request->BasicCredentials();
  ASSERT_TRUE(creds.has_value());
  EXPECT_EQ(creds->first, "alice");
  EXPECT_EQ(creds->second, "wonder");
}

TEST(BasicCredentials, PasswordMayContainColon) {
  auto result = ParseRequest(
      "GET / HTTP/1.1\r\nAuthorization: Basic " +
      util::Base64Encode("u:p:w") + "\r\n\r\n");
  ASSERT_TRUE(result.ok());
  auto creds = result.request->BasicCredentials();
  ASSERT_TRUE(creds.has_value());
  EXPECT_EQ(creds->first, "u");
  EXPECT_EQ(creds->second, "p:w");
}

TEST(BasicCredentials, AbsentOrMalformed) {
  auto plain = ParseRequest("GET / HTTP/1.1\r\n\r\n");
  EXPECT_FALSE(plain.request->BasicCredentials().has_value());
  auto bearer = ParseRequest(
      "GET / HTTP/1.1\r\nAuthorization: Bearer tok\r\n\r\n");
  EXPECT_FALSE(bearer.request->BasicCredentials().has_value());
  auto junk = ParseRequest(
      "GET / HTTP/1.1\r\nAuthorization: Basic !!!!\r\n\r\n");
  EXPECT_FALSE(junk.request->BasicCredentials().has_value());
  auto nocolon = ParseRequest(
      "GET / HTTP/1.1\r\nAuthorization: Basic " +
      util::Base64Encode("nocolon") + "\r\n\r\n");
  EXPECT_FALSE(nocolon.request->BasicCredentials().has_value());
}

TEST(BuildGetRequest, RoundTripsThroughParser) {
  std::string raw = BuildGetRequest("/a/b?q=1", {{"X-Test", "yes"}});
  auto result = ParseRequest(raw);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.request->path, "/a/b");
  EXPECT_EQ(result.request->query, "q=1");
  EXPECT_EQ(*result.request->Header("x-test"), "yes");
  EXPECT_NE(result.request->Header("host"), nullptr);  // auto-added
}

}  // namespace
}  // namespace gaa::http
