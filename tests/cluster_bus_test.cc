// The shared-memory cluster bus (DESIGN.md §15): packed-atomic threat
// cell, broadcast alert ring, per-process telemetry slabs and the
// generation-checked attach protocol.  Thread-only (no fork) so the TSan
// CI job can run this binary directly against the bus atomics.
#include "cluster/bus.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "util/shm_region.h"

namespace gaa::cluster {
namespace {

util::ShmRegion MakeRegion(std::uint32_t nprocs) {
  auto region = util::ShmRegion::Create("bus-test", ClusterBus::BytesFor(nprocs));
  EXPECT_TRUE(region.ok());
  return std::move(region).take();
}

ClusterBus MakeBus(std::uint32_t nprocs, std::uint64_t generation = 7) {
  auto bus = ClusterBus::Create(MakeRegion(nprocs), nprocs, generation);
  EXPECT_TRUE(bus.ok());
  return std::move(bus).take();
}

TEST(ShmRegion, CreateMapsZeroFilledWritableMemory) {
  auto region = util::ShmRegion::Create("t", 4096);
  ASSERT_TRUE(region.ok());
  ASSERT_TRUE(region.value().valid());
  EXPECT_GE(region.value().size(), 4096u);
  auto* bytes = static_cast<unsigned char*>(region.value().data());
  for (std::size_t i = 0; i < 4096; ++i) ASSERT_EQ(bytes[i], 0u);
  bytes[0] = 0xAB;
  EXPECT_EQ(bytes[0], 0xAB);
}

TEST(ShmRegion, AttachFdSharesTheSameMemory) {
  auto region = util::ShmRegion::Create("t", 4096);
  ASSERT_TRUE(region.ok());
  // Simulate the inherited-fd path: a second mapping of the same memfd.
  const int dup_fd = ::dup(region.value().fd());
  ASSERT_GE(dup_fd, 0);
  auto attached = util::ShmRegion::AttachFd(dup_fd, 4096);
  ASSERT_TRUE(attached.ok());
  static_cast<char*>(region.value().data())[17] = 'x';
  EXPECT_EQ(static_cast<char*>(attached.value().data())[17], 'x');
}

TEST(ShmRegion, AttachFdRejectsTooSmallFile) {
  auto region = util::ShmRegion::Create("t", 4096);
  ASSERT_TRUE(region.ok());
  const int dup_fd = ::dup(region.value().fd());
  ASSERT_GE(dup_fd, 0);
  EXPECT_FALSE(util::ShmRegion::AttachFd(dup_fd, 1 << 20).ok());
}

TEST(ClusterBus, AttachValidatesGeneration) {
  auto region = util::ShmRegion::Create("t", ClusterBus::BytesFor(2));
  ASSERT_TRUE(region.ok());
  const int fd = region.value().fd();
  auto bus = ClusterBus::Create(std::move(region).take(), 2, /*generation=*/41);
  ASSERT_TRUE(bus.ok());

  auto same = util::ShmRegion::AttachFd(::dup(fd), ClusterBus::BytesFor(2));
  ASSERT_TRUE(same.ok());
  EXPECT_TRUE(ClusterBus::Attach(std::move(same).take(), 41).ok());

  // The stale-slab guard: a re-exec'd child handed a generation that does
  // not match the segment must refuse to serve from it.
  auto stale = util::ShmRegion::AttachFd(::dup(fd), ClusterBus::BytesFor(2));
  ASSERT_TRUE(stale.ok());
  auto refused = ClusterBus::Attach(std::move(stale).take(), 42);
  ASSERT_FALSE(refused.ok());
  EXPECT_NE(refused.error().message.find("generation"), std::string::npos);
}

TEST(ClusterBus, AttachRejectsGarbageSegment) {
  auto region = util::ShmRegion::Create("t", ClusterBus::BytesFor(1));
  ASSERT_TRUE(region.ok());
  std::memset(region.value().data(), 0x5A, 64);
  EXPECT_FALSE(ClusterBus::Attach(std::move(region).take(), 7).ok());
}

TEST(ClusterBus, ThreatCellRoundTrips) {
  ClusterBus bus = MakeBus(2);
  EXPECT_EQ(bus.ReadThreat().serial, 0u);
  bus.PublishThreat(2, /*origin_slot=*/1);
  const ClusterBus::ThreatView view = bus.ReadThreat();
  EXPECT_EQ(view.level, 2);
  EXPECT_EQ(view.origin, 1);
  EXPECT_EQ(view.serial, 1u);
}

// Threat-cell torn-read stress: writers always publish (level, origin)
// pairs with origin == level + 10; readers must never observe a pair that
// breaks the invariant, no matter how writes interleave.
TEST(ClusterBus, ThreatCellNeverShowsTornReads) {
  ClusterBus bus = MakeBus(4);
  bus.PublishThreat(0, 10);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const ClusterBus::ThreatView view = bus.ReadThreat();
        if (view.origin != view.level + 10) torn.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < 20000; ++i) {
        const int level = (w + i) % 3;
        bus.PublishThreat(level, level + 10);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u);
  // Every publish (the seed + 3 writers x 20000) bumped the serial once.
  EXPECT_EQ(bus.ReadThreat().serial, 1u + 3u * 20000u);
}

TEST(ClusterBus, AlertRingDeliversInOrder) {
  ClusterBus bus = MakeBus(2);
  std::uint64_t cursor = bus.AlertCursorNow();
  bus.PushAlert(1.5, 0);
  bus.PushAlert(2.5, 1);
  std::vector<ClusterBus::Alert> got;
  EXPECT_FALSE(bus.DrainAlerts(&cursor, [&](const ClusterBus::Alert& a) {
    got.push_back(a);
  }));
  ASSERT_EQ(got.size(), 2u);
  EXPECT_DOUBLE_EQ(got[0].severity, 1.5);
  EXPECT_EQ(got[0].origin, 0);
  EXPECT_DOUBLE_EQ(got[1].severity, 2.5);
  EXPECT_EQ(got[1].origin, 1);
  // Nothing new: drain is a no-op, no overrun.
  EXPECT_FALSE(bus.DrainAlerts(&cursor, [&](const ClusterBus::Alert&) {
    FAIL() << "cursor should be at tail";
  }));
}

TEST(ClusterBus, AlertRingWraparoundLapsSlowReader) {
  ClusterBus bus = MakeBus(2);
  std::uint64_t cursor = bus.AlertCursorNow();  // = 0
  // Push two full rings beyond the reader's cursor: the oldest entries are
  // overwritten, so the reader must detect the lap instead of serving
  // stale or torn slots.
  const std::uint32_t total = 2 * wire::kAlertRingCapacity + 5;
  for (std::uint32_t i = 0; i < total; ++i) {
    bus.PushAlert(static_cast<double>(i), static_cast<int>(i % 2));
  }
  std::uint64_t seen = 0;
  const bool lapped = bus.DrainAlerts(&cursor, [&](const ClusterBus::Alert&) {
    ++seen;
  });
  EXPECT_TRUE(lapped);
  // A lapped reader resyncs to the present rather than serving a window it
  // cannot trust; the caller falls back to the threat cell.
  EXPECT_EQ(seen, 0u);
  EXPECT_EQ(cursor, total);  // resynced to tail

  // The resynced cursor serves subsequent alerts normally.
  bus.PushAlert(99.0, 1);
  std::vector<double> fresh;
  EXPECT_FALSE(bus.DrainAlerts(&cursor, [&](const ClusterBus::Alert& a) {
    fresh.push_back(a.severity);
  }));
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_DOUBLE_EQ(fresh[0], 99.0);

  // A replay cursor taken now re-reads the newest ring's worth of history.
  std::uint64_t replay = bus.AlertCursorReplay();
  std::uint64_t replayed = 0;
  EXPECT_FALSE(bus.DrainAlerts(&replay, [&](const ClusterBus::Alert&) {
    ++replayed;
  }));
  EXPECT_EQ(replayed, static_cast<std::uint64_t>(wire::kAlertRingCapacity));
}

// A producer SIGKILLed between its tail reservation and the slot publish
// leaves a permanently unpublished hole.  Readers must not park on it
// forever (that would cut every surviving process off from all later
// alerts): after the grace window the hole is skipped and reported as
// loss, and delivery resumes past it.
TEST(ClusterBus, AlertRingSkipsSlotOfProducerThatDiedMidPublish) {
  ClusterBus bus = MakeBus(2);
  std::uint64_t cursor = bus.AlertCursorNow();
  bus.PushAlert(1.0, 0);
  // Simulate the crash: reserve a ring position (tail fetch_add) without
  // ever publishing the slot, exactly the state a killed producer leaves.
  auto* header = static_cast<wire::SegmentHeader*>(bus.region().data());
  header->alerts.tail.fetch_add(1);
  bus.PushAlert(3.0, 1);  // a live producer keeps publishing past the hole

  // First pass: delivers what precedes the hole, then parks at it — the
  // producer might merely be preempted mid-publish.
  std::vector<double> got;
  EXPECT_FALSE(bus.DrainAlerts(&cursor, [&](const ClusterBus::Alert& a) {
    got.push_back(a.severity);
  }));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_DOUBLE_EQ(got[0], 1.0);

  // Once the hole outlives the grace window the producer is declared
  // dead: the slot is skipped, the loss is reported (so callers fall back
  // to the threat cell), and the alert beyond the hole is delivered.
  ::usleep(static_cast<useconds_t>(wire::kStalledPublishGraceUs + 20'000));
  EXPECT_TRUE(bus.DrainAlerts(&cursor, [&](const ClusterBus::Alert& a) {
    got.push_back(a.severity);
  }));
  ASSERT_EQ(got.size(), 2u);
  EXPECT_DOUBLE_EQ(got[1], 3.0);

  // The skip is sticky-free: subsequent alerts flow normally again.
  bus.PushAlert(7.0, 0);
  EXPECT_FALSE(bus.DrainAlerts(&cursor, [&](const ClusterBus::Alert& a) {
    got.push_back(a.severity);
  }));
  ASSERT_EQ(got.size(), 3u);
  EXPECT_DOUBLE_EQ(got[2], 7.0);
}

TEST(ClusterBus, AlertCursorReplaySeesRingHistory) {
  ClusterBus bus = MakeBus(2);
  for (int i = 0; i < 10; ++i) bus.PushAlert(static_cast<double>(i), 0);
  std::uint64_t cursor = bus.AlertCursorReplay();
  std::uint64_t seen = 0;
  EXPECT_FALSE(bus.DrainAlerts(&cursor, [&](const ClusterBus::Alert&) {
    ++seen;
  }));
  EXPECT_EQ(seen, 10u);  // a respawned process replays what is still there
}

// Multi-producer stress with a concurrent reader: every alert the reader
// observes must carry a consistent (severity, origin) pair, and with a
// ring big enough to never lap, none may be lost.
TEST(ClusterBus, AlertRingConcurrentProducersAndReader) {
  ClusterBus bus = MakeBus(4);
  constexpr int kWriters = 3;
  constexpr int kPerWriter = 300;  // 900 << kAlertRingCapacity
  std::atomic<bool> done{false};
  std::uint64_t cursor = bus.AlertCursorNow();
  std::uint64_t seen = 0;
  bool lapped = false;
  bool bad_pair = false;

  const auto drain = [&] {
    lapped |= bus.DrainAlerts(&cursor, [&](const ClusterBus::Alert& a) {
      ++seen;
      // Writer w tags severity = origin * 1000 + k.
      if (static_cast<int>(a.severity) / 1000 != a.origin) bad_pair = true;
    });
  };
  std::thread reader([&] {
    while (!done.load()) drain();
    drain();  // producers joined before done: one final pass sees the rest
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int k = 0; k < kPerWriter; ++k) {
        bus.PushAlert(static_cast<double>(w * 1000 + k), w);
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true);
  reader.join();

  EXPECT_FALSE(lapped);
  EXPECT_FALSE(bad_pair);
  EXPECT_EQ(seen, static_cast<std::uint64_t>(kWriters) * kPerWriter);
}

TEST(ClusterBus, SlotLifecycleAndHeartbeat) {
  ClusterBus bus = MakeBus(2);
  EXPECT_FALSE(bus.ViewProcess(0).live);
  const std::uint32_t inc = bus.ClaimSlot(0, /*pid=*/4242);
  EXPECT_EQ(inc, 1u);
  bus.Heartbeat(0, /*now_us=*/123456, /*threat_level=*/2);

  ClusterBus::ProcessView view = bus.ViewProcess(0);
  EXPECT_TRUE(view.live);
  EXPECT_EQ(view.pid, 4242);
  EXPECT_EQ(view.incarnation, 1u);
  EXPECT_EQ(view.heartbeat_us, 123456);
  EXPECT_EQ(view.threat_level, 2);

  bus.MarkExited(0);
  EXPECT_FALSE(bus.ViewProcess(0).live);
  // A respawn claims the same slot with a bumped incarnation.
  EXPECT_EQ(bus.ClaimSlot(0, 4243), 2u);
  EXPECT_EQ(bus.ViewProcesses().size(), 2u);
}

TEST(ClusterBus, SlabPublishAndRead) {
  ClusterBus bus = MakeBus(2);
  bus.ClaimSlot(0, 1);
  const int a = bus.AddSlabEntry(0, "requests_total", "", SlabKind::kCounter);
  const int b = bus.AddSlabEntry(0, "active", "shard=\"1\"", SlabKind::kGauge);
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  bus.SetSlabValue(0, a, 17);
  bus.SetSlabValue(0, b, -3);

  auto samples = bus.ReadSlab(0);
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].name, "requests_total");
  EXPECT_EQ(samples[0].value, 17);
  EXPECT_EQ(samples[0].kind, SlabKind::kCounter);
  EXPECT_EQ(samples[1].labels, "shard=\"1\"");
  EXPECT_EQ(samples[1].value, -3);
  EXPECT_EQ(samples[1].kind, SlabKind::kGauge);
}

TEST(ClusterBus, SlabRejectsOversizeAndOverflow) {
  ClusterBus bus = MakeBus(1);
  bus.ClaimSlot(0, 1);
  const std::string long_name(wire::kSlabNameBytes + 10, 'n');
  EXPECT_EQ(bus.AddSlabEntry(0, long_name, "", SlabKind::kCounter), -1);

  int added = 0;
  for (std::uint32_t i = 0; i < wire::kSlabEntries + 5; ++i) {
    if (bus.AddSlabEntry(0, "m" + std::to_string(i), "", SlabKind::kCounter) >=
        0) {
      ++added;
    }
  }
  EXPECT_EQ(added, static_cast<int>(wire::kSlabEntries));
  EXPECT_GT(bus.slot(0)->slab_dropped.load(), 0u);
}

TEST(ClusterBus, ClaimSlotResetsSlab) {
  ClusterBus bus = MakeBus(1);
  bus.ClaimSlot(0, 1);
  ASSERT_GE(bus.AddSlabEntry(0, "old_metric", "", SlabKind::kCounter), 0);
  ASSERT_EQ(bus.ReadSlab(0).size(), 1u);
  // The respawned incarnation starts from an empty slab — a reader can
  // never see the dead process's metric names with the new values.
  bus.ClaimSlot(0, 2);
  EXPECT_TRUE(bus.ReadSlab(0).empty());
  const int idx = bus.AddSlabEntry(0, "new_metric", "", SlabKind::kGauge);
  ASSERT_EQ(idx, 0);
  bus.SetSlabValue(0, idx, 9);
  auto samples = bus.ReadSlab(0);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].name, "new_metric");
}

// Slab read/write under concurrency: a reader walking the slab while the
// owner appends and updates must only ever see fully published entries.
TEST(ClusterBus, SlabConcurrentAppendAndRead) {
  ClusterBus bus = MakeBus(1);
  bus.ClaimSlot(0, 1);
  std::atomic<bool> stop{false};
  std::atomic<bool> bad{false};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const auto& s : bus.ReadSlab(0)) {
        if (s.name.empty() || s.name[0] != 'm') bad.store(true);
      }
    }
  });
  for (std::uint32_t i = 0; i < 200; ++i) {
    const int idx =
        bus.AddSlabEntry(0, "m" + std::to_string(i), "", SlabKind::kCounter);
    ASSERT_GE(idx, 0);
    bus.SetSlabValue(0, idx, static_cast<std::int64_t>(i));
  }
  stop.store(true);
  reader.join();

  EXPECT_FALSE(bad.load());
  EXPECT_EQ(bus.ReadSlab(0).size(), 200u);
}

}  // namespace
}  // namespace gaa::cluster
