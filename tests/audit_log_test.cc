#include "audit/audit_log.h"

#include <gtest/gtest.h>

#include "util/config.h"

namespace gaa::audit {
namespace {

class AuditLogTest : public ::testing::Test {
 protected:
  AuditLogTest() : clock_(5'000'000), log_(&clock_, /*max_records=*/4) {}
  util::SimulatedClock clock_;
  AuditLog log_;
};

TEST_F(AuditLogTest, RecordsWithTimestamp) {
  log_.Record("access", "GRANT x");
  auto records = log_.Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].time_us, 5'000'000);
  EXPECT_EQ(records[0].category, "access");
  EXPECT_EQ(records[0].message, "GRANT x");
}

TEST_F(AuditLogTest, ByCategoryAndCount) {
  log_.Record("access", "a");
  log_.Record("blacklist", "b");
  log_.Record("access", "c");
  EXPECT_EQ(log_.CountCategory("access"), 2u);
  EXPECT_EQ(log_.CountCategory("blacklist"), 1u);
  EXPECT_EQ(log_.CountCategory("nothing"), 0u);
  auto access = log_.ByCategory("access");
  ASSERT_EQ(access.size(), 2u);
  EXPECT_EQ(access[1].message, "c");
}

TEST_F(AuditLogTest, BoundedRingDropsOldest) {
  for (int i = 0; i < 6; ++i) {
    log_.Record("c", "m" + std::to_string(i));
  }
  auto records = log_.Snapshot();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records.front().message, "m2");
  EXPECT_EQ(records.back().message, "m5");
}

TEST_F(AuditLogTest, Clear) {
  log_.Record("c", "m");
  log_.Clear();
  EXPECT_EQ(log_.size(), 0u);
}

TEST_F(AuditLogTest, FileMirrorAppends) {
  std::string path = ::testing::TempDir() + "/audit_mirror_test.log";
  util::WriteStringToFile(path, "").ok();
  log_.SetFileMirror(path);
  log_.Record("access", "hello-mirror");
  log_.Flush();  // the mirror is asynchronous; wait for the drain thread
  auto text = util::ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text.value().find("hello-mirror"), std::string::npos);
  EXPECT_NE(text.value().find("\"category\":\"access\""), std::string::npos);
  EXPECT_EQ(log_.file_errors(), 0u);
}

TEST_F(AuditLogTest, FileMirrorFailureIsCounted) {
  log_.SetFileMirror("/nonexistent-dir/x/y/z.log");
  log_.Record("access", "m");
  log_.Flush();
  EXPECT_EQ(log_.file_errors(), 1u);
  EXPECT_EQ(log_.size(), 1u);  // in-memory record still kept
}

}  // namespace
}  // namespace gaa::audit
