// Stress tests of the lock-free policy snapshot publication (DESIGN.md
// §9.3): request threads do a single atomic acquire-load of the current
// snapshot while a writer rebuilds and swaps it on every policy mutation.
// Built into gaa_engine_test, which CI also runs under ThreadSanitizer —
// a torn snapshot, a use-after-retire or a missed release/acquire pair
// shows up there as a data race.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "conditions/builtin.h"
#include "gaa/api.h"
#include "testing/helpers.h"

namespace gaa::core {
namespace {

using gaa::testing::MakeContext;
using gaa::testing::TestRig;
using util::Tristate;

struct Stack {
  Stack() : api(&store, rig.services) {
    RoutineCatalog catalog;
    cond::RegisterBuiltinRoutines(catalog);
    EXPECT_TRUE(api.Initialize(catalog, cond::DefaultConfigText(), "").ok());
  }

  TestRig rig;
  PolicyStore store;
  GaaApi api;
};

TEST(SnapshotStress, ConcurrentAuthorizeDuringRapidReloads) {
  Stack s;
  ASSERT_TRUE(s.store.SetLocalPolicy("/", "pos_access_right apache *\n").ok());

  constexpr int kReaders = 4;
  constexpr int kReloads = 400;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> decisions{0};

  // Both policy variants are unconditional — every request must come back
  // a definite YES or NO.  Anything else (MAYBE, a crash, a TSan report)
  // means a torn or stale-beyond-swap snapshot.
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&s, &stop, &decisions] {
      while (!stop.load(std::memory_order_relaxed)) {
        RequestContext ctx = MakeContext("10.0.0.1", "/index.html", "GET");
        AuthzResult out =
            s.api.Authorize("/index.html", RequestedRight{"apache", "GET"},
                            ctx);
        if (out.status == Tristate::kMaybe) {
          ADD_FAILURE() << "unconditional policy answered MAYBE";
          return;
        }
        decisions.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int i = 0; i < kReloads; ++i) {
    const char* text = (i % 2 == 0) ? "neg_access_right apache *\n"
                                    : "pos_access_right apache *\n";
    ASSERT_TRUE(s.store.SetLocalPolicy("/", text).ok());
    // The swap is synchronous: the mutating thread must observe its own
    // policy on the very next request (attack-response tightening cannot
    // lag behind the SetLocalPolicy call that performed it).
    RequestContext ctx = MakeContext("10.0.0.1", "/index.html", "GET");
    AuthzResult out =
        s.api.Authorize("/index.html", RequestedRight{"apache", "GET"}, ctx);
    EXPECT_EQ(out.status, (i % 2 == 0) ? Tristate::kNo : Tristate::kYes);
  }

  // On a loaded machine the writer can finish every reload before a reader
  // is scheduled at all; hold the overlap window open until each reader has
  // decided at least once so the final assertion is about concurrency, not
  // scheduling luck.
  while (decisions.load(std::memory_order_relaxed) <
         static_cast<std::uint64_t>(kReaders)) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  EXPECT_GE(decisions.load(), static_cast<std::uint64_t>(kReaders));
}

TEST(SnapshotStress, MixedMutationsKeepSnapshotCoherent) {
  Stack s;
  ASSERT_TRUE(s.store.AddSystemPolicy("eacl_mode 1\nneg_access_right * *\n"
                                      "pre_cond_accessid GROUP local BadGuys\n")
                  .ok());
  ASSERT_TRUE(s.store.SetLocalPolicy("/", "pos_access_right apache *\n").ok());

  std::atomic<bool> stop{false};
  std::thread reader([&s, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      RequestContext ctx = MakeContext("10.0.0.2", "/private/x.html", "GET");
      AuthzResult out = s.api.Authorize("/private/x.html",
                                        RequestedRight{"apache", "GET"}, ctx);
      // The system side never grants here; the local side always decides.
      if (out.status == Tristate::kMaybe) {
        ADD_FAILURE() << "unexpected MAYBE under mutation";
        return;
      }
    }
  });

  for (int i = 0; i < 200; ++i) {
    // Exercise every mutation path that republishes the snapshot.
    ASSERT_TRUE(
        s.store.SetLocalPolicy("/private", i % 2 == 0
                                               ? "neg_access_right apache *\n"
                                               : "pos_access_right apache *\n")
            .ok());
    if (i % 10 == 9) s.store.RemoveLocalPolicy("/private");
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();
}

TEST(SnapshotStress, PolicyVisibleImmediatelyAfterSwapReturns) {
  // Single-threaded visibility contract, looped to catch flakiness: after
  // SetLocalPolicy returns, the next Authorize on the same thread sees the
  // new policy — no grace period, no cache staleness (the memo cache keys
  // on the snapshot version, so it self-invalidates).
  Stack s;
  for (int i = 0; i < 100; ++i) {
    bool deny = (i % 2 == 0);
    ASSERT_TRUE(s.store
                    .SetLocalPolicy("/", deny ? "neg_access_right apache *\n"
                                              : "pos_access_right apache *\n")
                    .ok());
    RequestContext ctx = MakeContext();
    AuthzResult out =
        s.api.Authorize("/index.html", RequestedRight{"apache", "GET"}, ctx);
    EXPECT_EQ(out.status, deny ? Tristate::kNo : Tristate::kYes) << "i=" << i;
  }
}

}  // namespace
}  // namespace gaa::core
