// Retired-snapshot retention bounds (DESIGN.md §9.3): superseded policy
// snapshots are reclaimed once quiescent (use_count()==1), keeping only the
// `retired_floor` newest for debugging headroom — the retired list must not
// grow without bound under policy churn, and reclamation must never free a
// snapshot a concurrent reader still holds (gaa_engine_test runs under
// ThreadSanitizer in CI, where a use-after-reclaim is a hard failure).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "conditions/builtin.h"
#include "gaa/api.h"
#include "telemetry/metrics.h"
#include "testing/helpers.h"

namespace gaa::core {
namespace {

using gaa::testing::MakeContext;
using gaa::testing::TestRig;
using util::Tristate;

struct ChurnStack {
  ChurnStack() : api(&store, WireMetrics(rig, metrics)) {
    RoutineCatalog catalog;
    cond::RegisterBuiltinRoutines(catalog);
    EXPECT_TRUE(api.Initialize(catalog, cond::DefaultConfigText(), "").ok());
  }

  static EvalServices& WireMetrics(TestRig& rig,
                                   telemetry::MetricRegistry& metrics) {
    rig.services.metrics = &metrics;
    return rig.services;
  }

  TestRig rig;
  telemetry::MetricRegistry metrics;
  PolicyStore store;
  GaaApi api;
};

TEST(SnapshotChurn, RetiredListStaysBoundedUnderConcurrentReaders) {
  ChurnStack s;
  ASSERT_TRUE(s.store.SetLocalPolicy("/", "pos_access_right apache *\n").ok());

  constexpr int kReaders = 4;
  constexpr int kReloads = 300;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> decisions{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&s, &stop, &decisions] {
      while (!stop.load(std::memory_order_relaxed)) {
        RequestContext ctx = MakeContext("10.0.0.1", "/index.html", "GET");
        AuthzResult out = s.api.Authorize(
            "/index.html", RequestedRight{"apache", "GET"}, ctx);
        if (out.status == Tristate::kMaybe) {
          ADD_FAILURE() << "unconditional policy answered MAYBE";
          return;
        }
        decisions.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Each reader holds at most one snapshot reference at a time, so the
  // retired list can never exceed floor + one pinned entry per reader
  // (plus slack for entries between retire and the next reclaim pass).
  const std::size_t bound = s.store.retired_floor() + kReaders + 2;
  for (int i = 0; i < kReloads; ++i) {
    const char* text = (i % 2 == 0) ? "neg_access_right apache *\n"
                                    : "pos_access_right apache *\n";
    ASSERT_TRUE(s.store.SetLocalPolicy("/", text).ok());
    EXPECT_LE(s.store.retired_count(), bound) << "reload " << i;
  }

  while (decisions.load(std::memory_order_relaxed) <
         static_cast<std::uint64_t>(kReaders)) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  EXPECT_GE(decisions.load(), static_cast<std::uint64_t>(kReaders));

  // With all readers gone, every retiree is quiescent: the next rebuild
  // reclaims down to the floor.
  ASSERT_TRUE(s.store.SetLocalPolicy("/", "pos_access_right apache *\n").ok());
  EXPECT_LE(s.store.retired_count(), s.store.retired_floor());
}

TEST(SnapshotChurn, QuiescentReclamationKeepsExactlyTheFloor) {
  ChurnStack s;
  s.store.set_retired_floor(5);
  for (int i = 0; i < 10; ++i) {
    const char* text = (i % 2 == 0) ? "neg_access_right apache *\n"
                                    : "pos_access_right apache *\n";
    ASSERT_TRUE(s.store.SetLocalPolicy("/", text).ok());
  }
  // No readers: everything beyond the floor was quiescent and reclaimed.
  EXPECT_EQ(s.store.retired_count(), 5u);
  // The gauge mirrors the list (rig.services.metrics wires the registry).
  EXPECT_EQ(s.metrics.GetGauge("gaa_policy_snapshots_retired")->Value(), 5);

  // Dropping the floor reclaims immediately, not at the next rebuild.
  s.store.set_retired_floor(0);
  EXPECT_EQ(s.store.retired_count(), 0u);
  EXPECT_EQ(s.metrics.GetGauge("gaa_policy_snapshots_retired")->Value(), 0);

  ASSERT_TRUE(s.store.SetLocalPolicy("/", "pos_access_right apache *\n").ok());
  EXPECT_EQ(s.store.retired_count(), 0u);
}

}  // namespace
}  // namespace gaa::core
