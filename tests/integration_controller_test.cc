// Unit-level tests of the GAA access controller glue (§6 steps 2b-2d and
// phases 3-4) through the full server pipeline.
#include <gtest/gtest.h>

#include "http/doc_tree.h"
#include "integration/gaa_web_server.h"

namespace gaa::web {
namespace {

using http::StatusCode;

GaaWebServer::Options TestOptions() {
  GaaWebServer::Options options;
  options.notification_latency_us = 0;
  return options;
}

TEST(ControllerContext, ExtractsClassifiedParameters) {
  GaaWebServer server(http::DocTree::DemoSite(), TestOptions());
  http::RequestRec rec;
  rec.method = "GET";
  rec.path = "/cgi-bin/search";
  rec.raw_target = "/cgi-bin/search?q=abc";
  rec.query = "q=abc";
  rec.client_ip = util::Ipv4Address::Parse("10.1.2.3").value();
  rec.headers["user-agent"] = "TestAgent/1.0";

  core::RequestContext ctx = server.controller().BuildContext(rec);
  EXPECT_EQ(ctx.application, "apache");
  EXPECT_EQ(ctx.operation, "GET");
  EXPECT_EQ(ctx.object, "/cgi-bin/search");
  EXPECT_EQ(ctx.query, "q=abc");
  ASSERT_NE(ctx.FindParam("client_ip"), nullptr);
  EXPECT_EQ(ctx.FindParam("client_ip")->value, "10.1.2.3");
  EXPECT_EQ(ctx.FindParam("client_ip")->authority, "apache");
  EXPECT_EQ(ctx.FindParam("cgi_input_length")->value, "5");
  EXPECT_EQ(ctx.FindParam("user_agent")->value, "TestAgent/1.0");
  EXPECT_EQ(ctx.FindParam("nonexistent"), nullptr);
}

TEST(ControllerAuth, ValidCredentialsAuthenticate) {
  GaaWebServer server(http::DocTree::DemoSite(), TestOptions());
  server.AddUser("alice", "wonder");
  ASSERT_TRUE(server
                  .SetLocalPolicy("/", R"(
pos_access_right apache *
pre_cond_accessid USER apache alice
)")
                  .ok());
  auto ok = server.Get("/index.html", "10.0.0.1",
                       std::make_pair(std::string("alice"),
                                      std::string("wonder")));
  EXPECT_EQ(ok.status, StatusCode::kOk);
  auto wrong = server.Get("/index.html", "10.0.0.1",
                          std::make_pair(std::string("alice"),
                                         std::string("bad")));
  EXPECT_EQ(wrong.status, StatusCode::kUnauthorized);
}

TEST(ControllerAuth, FailedAttemptsFeedTheCounter) {
  GaaWebServer server(http::DocTree::DemoSite(), TestOptions());
  server.AddUser("alice", "wonder");
  ASSERT_TRUE(server.SetLocalPolicy("/", "pos_access_right apache *\n").ok());
  for (int i = 0; i < 3; ++i) {
    server.Get("/index.html", "203.0.113.5",
               std::make_pair(std::string("alice"), std::string("guess")));
  }
  EXPECT_EQ(server.state().CountEvents("failed_auth:203.0.113.5",
                                       60 * util::kMicrosPerSecond),
            3u);
  // Successful logins do not count.
  server.Get("/index.html", "10.0.0.1",
             std::make_pair(std::string("alice"), std::string("wonder")));
  EXPECT_EQ(server.state().CountEvents("failed_auth:10.0.0.1",
                                       60 * util::kMicrosPerSecond),
            0u);
}

TEST(ControllerAuth, PasswordGuessingLockout) {
  // The §3-item-4 password-guessing detector, expressed purely in policy:
  // the only granting entry is gated on the failed-auth counter staying
  // under its threshold.  Once the source trips the threshold, no entry
  // applies and the closed-world default denies — a per-source lockout.
  GaaWebServer server(http::DocTree::DemoSite(), TestOptions());
  server.AddUser("alice", "wonder");
  ASSERT_TRUE(server
                  .SetLocalPolicy("/", R"(
pos_access_right apache *
pre_cond_threshold local failed_auth:%ip 3 60
)")
                  .ok());
  auto guess = std::make_pair(std::string("alice"), std::string("guess"));
  // The first two guessing attempts are still served (the page itself is
  // public; only the counter grows).  The failed attempt is recorded before
  // policy evaluation, so the third bad guess trips the threshold itself.
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(server.Get("/index.html", "203.0.113.5", guess).status,
              StatusCode::kOk);
  }
  EXPECT_EQ(server.Get("/index.html", "203.0.113.5", guess).status,
            StatusCode::kForbidden);
  // Every further request from that source is locked out...
  EXPECT_EQ(server.Get("/index.html", "203.0.113.5", guess).status,
            StatusCode::kForbidden);
  // ...even without credentials, and the violation reached the IDS.
  EXPECT_EQ(server.Get("/index.html", "203.0.113.5").status,
            StatusCode::kForbidden);
  EXPECT_GE(server.ids().CountKind(core::ReportKind::kThresholdViolation), 1u);
  // Other sources are unaffected.
  EXPECT_EQ(server.Get("/index.html", "10.0.0.1").status, StatusCode::kOk);
  // The window expires: the source is forgiven.
  server.sim_clock()->Advance(61 * util::kMicrosPerSecond);
  EXPECT_EQ(server.Get("/index.html", "203.0.113.5").status, StatusCode::kOk);
}

TEST(ControllerReporting, SensitiveDenialReported) {
  GaaWebServer::Options options = TestOptions();
  options.controller.sensitive_paths = {"/private/*"};
  GaaWebServer server(http::DocTree::DemoSite(), options);
  ASSERT_TRUE(server.SetLocalPolicy("/", "neg_access_right apache *\n").ok());
  server.Get("/private/report.html", "203.0.113.9");
  EXPECT_EQ(server.ids().CountKind(core::ReportKind::kSensitiveDenial), 1u);
  // Non-sensitive denial: no report.
  server.Get("/index.html", "203.0.113.9");
  EXPECT_EQ(server.ids().CountKind(core::ReportKind::kSensitiveDenial), 1u);
}

TEST(ControllerReporting, LegitimatePatternsWhenEnabled) {
  GaaWebServer::Options options = TestOptions();
  options.controller.report_legitimate_patterns = true;
  GaaWebServer server(http::DocTree::DemoSite(), options);
  ASSERT_TRUE(server.SetLocalPolicy("/", "pos_access_right apache *\n").ok());
  server.Get("/index.html", "10.0.0.1");
  server.Get("/docs/guide.html", "10.0.0.1");
  EXPECT_EQ(server.ids().CountKind(core::ReportKind::kLegitimatePattern), 2u);
  // They must not move the threat level.
  EXPECT_EQ(server.state().threat_level(), core::ThreatLevel::kLow);
}

TEST(ControllerReporting, IllFormedRequestsReachTheIds) {
  GaaWebServer server(http::DocTree::DemoSite(), TestOptions());
  ASSERT_TRUE(server.SetLocalPolicy("/", "pos_access_right apache *\n").ok());
  server.HandleText("GEX / HTTP/1.1\r\n\r\n", "203.0.113.9");
  server.HandleText("GET /%zz HTTP/1.1\r\n\r\n", "203.0.113.9");
  EXPECT_EQ(server.ids().CountKind(core::ReportKind::kIllFormedRequest), 2u);
  auto reports = server.ids().ReportsSnapshot();
  EXPECT_EQ(reports[0].attack_type, "bad_method");
  EXPECT_EQ(reports[1].attack_type, "bad_escape");
}

TEST(ControllerPhases, MidConditionAbortsExpensiveCgi) {
  // Execution-control phase (paper phase 3): a CPU limit kills the phf
  // exploit path (0.05 cpu-s) but lets the cheap benign path run.
  GaaWebServer server(http::DocTree::DemoSite(), TestOptions());
  ASSERT_TRUE(server
                  .SetLocalPolicy("/", R"(
pos_access_right apache *
mid_cond_cpu local 0.01
)")
                  .ok());
  auto benign = server.Get("/cgi-bin/phf?Qalias=jdoe", "10.0.0.1");
  EXPECT_EQ(benign.status, StatusCode::kOk);
  auto exploit = server.Get("/cgi-bin/phf?Qalias=x%0acat", "203.0.113.9");
  EXPECT_EQ(exploit.status, StatusCode::kForbidden);
  EXPECT_NE(exploit.body.find("aborted"), std::string::npos);
}

TEST(ControllerPhases, PostConditionLogsOperationOutcome) {
  GaaWebServer server(http::DocTree::DemoSite(), TestOptions());
  ASSERT_TRUE(server
                  .SetLocalPolicy("/", R"(
pos_access_right apache *
post_cond_log local on:any/ops
)")
                  .ok());
  server.Get("/index.html", "10.0.0.1");
  server.Get("/missing.html", "10.0.0.1");
  auto records = server.audit_log().ByCategory("ops");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_NE(records[0].message.find("OP_OK"), std::string::npos);
  EXPECT_NE(records[1].message.find("OP_FAIL"), std::string::npos);
}

TEST(ControllerPhases, IntegrityPostConditionCatchesPasswdWrite) {
  // The §1 example wired end-to-end: the phf exploit "touches" /etc/passwd;
  // the post-condition raises the alarm.
  GaaWebServer server(http::DocTree::DemoSite(), TestOptions());
  ASSERT_TRUE(server
                  .SetLocalPolicy("/", R"(
pos_access_right apache *
post_cond_check_integrity local /etc/*
)")
                  .ok());
  server.Get("/cgi-bin/phf?Qalias=x%0acat", "203.0.113.9");
  EXPECT_GE(server.ids().CountKind(core::ReportKind::kSuspiciousBehavior), 1u);
  EXPECT_GE(server.notifier().sent_count(), 1u);
  EXPECT_EQ(server.audit_log().CountCategory("integrity"), 1u);
}

TEST(ControllerPhases, RrAuditConditionWritesAccessRecords) {
  GaaWebServer server(http::DocTree::DemoSite(), TestOptions());
  ASSERT_TRUE(server
                  .SetLocalPolicy("/", R"(
pos_access_right apache *
rr_cond_audit local on:any/access
)")
                  .ok());
  server.Get("/index.html", "10.0.0.1");
  EXPECT_EQ(server.audit_log().CountCategory("access"), 1u);
}

}  // namespace
}  // namespace gaa::web
