#include "workload/trace.h"

#include <gtest/gtest.h>

#include "http/request.h"

namespace gaa::workload {
namespace {

TEST(TraceGenerator, Deterministic) {
  TraceOptions options;
  options.seed = 99;
  options.count = 50;
  auto a = TraceGenerator(options).Generate();
  auto b = TraceGenerator(options).Generate();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].raw, b[i].raw);
    EXPECT_EQ(a[i].client_ip, b[i].client_ip);
    EXPECT_EQ(a[i].kind, b[i].kind);
  }
}

TEST(TraceGenerator, SeedChangesTrace) {
  TraceOptions a_options;
  a_options.seed = 1;
  TraceOptions b_options;
  b_options.seed = 2;
  auto a = TraceGenerator(a_options).Generate();
  auto b = TraceGenerator(b_options).Generate();
  bool any_different = false;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    if (a[i].raw != b[i].raw) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(TraceGenerator, AttackFractionRoughlyHolds) {
  TraceOptions options;
  options.count = 2000;
  options.attack_fraction = 0.25;
  auto trace = TraceGenerator(options).Generate();
  std::size_t attacks = 0;
  for (const auto& r : trace) {
    if (IsAttackKind(r.kind)) ++attacks;
  }
  double fraction = static_cast<double>(attacks) / trace.size();
  EXPECT_NEAR(fraction, 0.25, 0.05);
}

TEST(TraceGenerator, ZeroAttackFraction) {
  TraceOptions options;
  options.count = 200;
  options.attack_fraction = 0.0;
  for (const auto& r : TraceGenerator(options).Generate()) {
    EXPECT_FALSE(IsAttackKind(r.kind)) << RequestKindName(r.kind);
  }
}

TEST(TraceGenerator, BenignRequestsParseCleanly) {
  TraceOptions options;
  options.count = 200;
  options.attack_fraction = 0.0;
  for (const auto& r : TraceGenerator(options).Generate()) {
    auto parsed = http::ParseRequest(r.raw);
    EXPECT_TRUE(parsed.ok()) << r.raw;
  }
}

TEST(TraceGenerator, IllFormedRequestsActuallyFailParsing) {
  TraceGenerator gen({});
  for (int i = 0; i < 10; ++i) {
    auto r = gen.Make(RequestKind::kIllFormed);
    EXPECT_FALSE(http::ParseRequest(r.raw).ok()) << r.raw;
  }
}

TEST(TraceGenerator, AttackShapesMatchTheirSignatures) {
  TraceGenerator gen({});
  auto probe = gen.Make(RequestKind::kCgiProbe);
  EXPECT_TRUE(probe.raw.find("phf") != std::string::npos ||
              probe.raw.find("test-cgi") != std::string::npos);
  auto dos = gen.Make(RequestKind::kDosSlashes);
  EXPECT_NE(dos.raw.find("////////////////////"), std::string::npos);
  auto nimda = gen.Make(RequestKind::kNimdaPercent);
  EXPECT_NE(nimda.raw.find('%'), std::string::npos);
  auto overflow = gen.Make(RequestKind::kOverflowInput);
  auto parsed = http::ParseRequest(overflow.raw);
  ASSERT_TRUE(parsed.ok());
  EXPECT_GT(parsed.request->query.size(), 1000u);
}

TEST(TraceGenerator, ClientPoolsAreDisjoint) {
  TraceOptions options;
  options.count = 500;
  options.attack_fraction = 0.5;
  for (const auto& r : TraceGenerator(options).Generate()) {
    if (IsAttackKind(r.kind)) {
      EXPECT_EQ(r.client_ip.rfind("203.0.113.", 0), 0u) << r.client_ip;
    } else {
      EXPECT_EQ(r.client_ip.rfind("10.0.", 0), 0u) << r.client_ip;
    }
  }
}

TEST(VulnerabilityScan, KnownProbeThenUnknowns) {
  TraceGenerator gen({});
  auto scan = gen.VulnerabilityScan("203.0.113.42", 4);
  ASSERT_EQ(scan.size(), 5u);
  EXPECT_EQ(scan[0].kind, RequestKind::kCgiProbe);
  for (std::size_t i = 1; i < scan.size(); ++i) {
    EXPECT_EQ(scan[i].kind, RequestKind::kUnknownProbe);
    EXPECT_EQ(scan[i].client_ip, "203.0.113.42");
    // The unknown probes carry none of the known signature substrings.
    EXPECT_EQ(scan[i].raw.find("phf"), std::string::npos);
    EXPECT_EQ(scan[i].raw.find("test-cgi"), std::string::npos);
    EXPECT_EQ(scan[i].raw.find('%'), std::string::npos);
  }
}

TEST(RequestKindNames, AllNamed) {
  EXPECT_STREQ(RequestKindName(RequestKind::kStaticPage), "static_page");
  EXPECT_STREQ(RequestKindName(RequestKind::kUnknownProbe), "unknown_probe");
  EXPECT_TRUE(IsAttackKind(RequestKind::kDosSlashes));
  EXPECT_FALSE(IsAttackKind(RequestKind::kSearchCgi));
}

}  // namespace
}  // namespace gaa::workload
