#include "eacl/composition.h"

#include <gtest/gtest.h>

#include <tuple>

#include "eacl/parser.h"

namespace gaa::eacl {
namespace {

using util::Tristate;

Eacl Parse(const std::string& text) {
  auto result = ParseEacl(text);
  EXPECT_TRUE(result.ok()) << result.error().ToString();
  return std::move(result).take();
}

TEST(Compose, SystemModeWins) {
  auto composed = Compose({Parse("eacl_mode 0\npos_access_right a b")},
                          {Parse("pos_access_right c d")});
  EXPECT_EQ(composed.mode, CompositionMode::kExpand);
  EXPECT_EQ(composed.system_policies.size(), 1u);
  EXPECT_EQ(composed.local_policies.size(), 1u);
  EXPECT_EQ(composed.TotalEntries(), 2u);
}

TEST(Compose, DefaultModeIsNarrow) {
  auto composed = Compose({Parse("pos_access_right a b")}, {});
  EXPECT_EQ(composed.mode, CompositionMode::kNarrow);
}

TEST(Compose, FirstDeclaredModeWins) {
  auto composed = Compose({Parse("pos_access_right a b"),
                           Parse("eacl_mode 2\npos_access_right a b"),
                           Parse("eacl_mode 0\npos_access_right a b")},
                          {});
  EXPECT_EQ(composed.mode, CompositionMode::kStop);
}

TEST(Compose, StopDropsLocalPolicies) {
  auto composed = Compose({Parse("eacl_mode 2\nneg_access_right * *")},
                          {Parse("pos_access_right a b")});
  EXPECT_EQ(composed.mode, CompositionMode::kStop);
  EXPECT_TRUE(composed.local_policies.empty());
}

TEST(CombineDecisions, AbsentSidesDefer) {
  for (CompositionMode mode : {CompositionMode::kExpand,
                               CompositionMode::kNarrow,
                               CompositionMode::kStop}) {
    // Neither side applicable: closed world, deny.
    EXPECT_EQ(CombineDecisions(mode, Tristate::kYes, false, Tristate::kYes,
                               false),
              Tristate::kNo);
    // Only system applicable.
    EXPECT_EQ(CombineDecisions(mode, Tristate::kYes, true, Tristate::kNo,
                               false),
              Tristate::kYes);
  }
  // Only local applicable (expand/narrow defer to it; stop has no local
  // policies by construction, but the combinator still defers).
  EXPECT_EQ(CombineDecisions(CompositionMode::kNarrow, Tristate::kYes, false,
                             Tristate::kNo, true),
            Tristate::kNo);
}

TEST(CombineDecisions, ExpandIsDisjunction) {
  EXPECT_EQ(CombineDecisions(CompositionMode::kExpand, Tristate::kNo, true,
                             Tristate::kYes, true),
            Tristate::kYes);
  EXPECT_EQ(CombineDecisions(CompositionMode::kExpand, Tristate::kNo, true,
                             Tristate::kNo, true),
            Tristate::kNo);
  EXPECT_EQ(CombineDecisions(CompositionMode::kExpand, Tristate::kMaybe, true,
                             Tristate::kNo, true),
            Tristate::kMaybe);
}

TEST(CombineDecisions, NarrowIsConjunction) {
  EXPECT_EQ(CombineDecisions(CompositionMode::kNarrow, Tristate::kYes, true,
                             Tristate::kNo, true),
            Tristate::kNo);
  EXPECT_EQ(CombineDecisions(CompositionMode::kNarrow, Tristate::kYes, true,
                             Tristate::kYes, true),
            Tristate::kYes);
  EXPECT_EQ(CombineDecisions(CompositionMode::kNarrow, Tristate::kMaybe, true,
                             Tristate::kYes, true),
            Tristate::kMaybe);
}

TEST(CombineDecisions, StopIgnoresLocal) {
  EXPECT_EQ(CombineDecisions(CompositionMode::kStop, Tristate::kNo, true,
                             Tristate::kYes, true),
            Tristate::kNo);
  EXPECT_EQ(CombineDecisions(CompositionMode::kStop, Tristate::kYes, true,
                             Tristate::kNo, true),
            Tristate::kYes);
}

// Property sweep: the composition-mode algebra over all decision pairs.
//   expand ⊇ local:   expand result is at least as permissive as each side
//   narrow ⊆ local:   narrow result is at most as permissive as each side
//   stop   ≡ system.
int Permissiveness(Tristate t) {
  switch (t) {
    case Tristate::kYes:
      return 2;
    case Tristate::kMaybe:
      return 1;
    case Tristate::kNo:
      return 0;
  }
  return 0;
}

constexpr Tristate kAll[] = {Tristate::kYes, Tristate::kNo, Tristate::kMaybe};

class CompositionAlgebra
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CompositionAlgebra, ModeOrderingLaws) {
  Tristate system = kAll[std::get<0>(GetParam())];
  Tristate local = kAll[std::get<1>(GetParam())];

  Tristate expand = CombineDecisions(CompositionMode::kExpand, system, true,
                                     local, true);
  Tristate narrow = CombineDecisions(CompositionMode::kNarrow, system, true,
                                     local, true);
  Tristate stop =
      CombineDecisions(CompositionMode::kStop, system, true, local, true);

  EXPECT_GE(Permissiveness(expand), Permissiveness(system));
  EXPECT_GE(Permissiveness(expand), Permissiveness(local));
  EXPECT_LE(Permissiveness(narrow), Permissiveness(system));
  EXPECT_LE(Permissiveness(narrow), Permissiveness(local));
  EXPECT_EQ(stop, system);
  // narrow is never more permissive than expand.
  EXPECT_LE(Permissiveness(narrow), Permissiveness(expand));
}

INSTANTIATE_TEST_SUITE_P(AllPairs, CompositionAlgebra,
                         ::testing::Combine(::testing::Range(0, 3),
                                            ::testing::Range(0, 3)));

}  // namespace
}  // namespace gaa::eacl
