// Decision memoization (DESIGN.md §9.4): admission rules, version fencing,
// attribution-counter fidelity on the fast path, and the telemetry mirrors
// for both the memo cache and the legacy LRU policy cache.
#include <gtest/gtest.h>

#include <memory>

#include "conditions/builtin.h"
#include "gaa/api.h"
#include "gaa/decision_cache.h"
#include "telemetry/metrics.h"
#include "testing/helpers.h"

namespace gaa::core {
namespace {

using gaa::testing::MakeContext;
using gaa::testing::TestRig;
using util::Tristate;

TEST(DecisionCacheUnit, VersionFencesStaleAnswers) {
  DecisionCache cache(8);
  auto result = std::make_shared<AuthzResult>();
  result->status = Tristate::kYes;
  cache.Put("k", /*snapshot_version=*/1, result, nullptr);

  auto hit = cache.Get("k", 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->result->status, Tristate::kYes);

  // Same key, newer snapshot: the entry is fenced out — a policy change
  // invalidates every cached decision without any explicit flush.
  EXPECT_EQ(cache.Get("k", 2), nullptr);
  EXPECT_EQ(cache.Get("unknown", 1), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);

  cache.Clear();
  EXPECT_EQ(cache.Get("k", 1), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(DecisionCacheUnit, ZeroSlotsDisables) {
  DecisionCache cache(0);
  EXPECT_EQ(cache.capacity(), 0u);
}

struct Stack {
  Stack() : api(&store, rig.services) {
    RoutineCatalog catalog;
    cond::RegisterBuiltinRoutines(catalog);
    EXPECT_TRUE(api.Initialize(catalog, cond::DefaultConfigText(), "").ok());
  }

  AuthzResult Go(const RequestContext& base) {
    RequestContext ctx = base;
    return api.Authorize(ctx.object, RequestedRight{"apache", ctx.operation},
                         ctx);
  }

  TestRig rig;
  PolicyStore store;
  GaaApi api;
};

TEST(DecisionMemo, PureTerminalDecisionsAreCached) {
  Stack s;
  ASSERT_TRUE(s.store
                  .SetLocalPolicy("/",
                                  "pos_access_right apache *\n"
                                  "pre_cond_accessid USER apache alice\n")
                  .ok());
  RequestContext alice = MakeContext();
  alice.authenticated = true;
  alice.user = "alice";

  EXPECT_EQ(s.Go(alice).status, Tristate::kYes);
  EXPECT_EQ(s.api.decision_cache().insertions(), 1u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(s.Go(alice).status, Tristate::kYes);
  EXPECT_EQ(s.api.decision_cache().hits(), 5u);

  // A different subject is a different key — decided fresh (NO: wrong user),
  // then cached on its own.
  RequestContext bob = alice;
  bob.user = "bob";
  EXPECT_EQ(s.Go(bob).status, Tristate::kNo);
  EXPECT_EQ(s.Go(bob).status, Tristate::kNo);
  EXPECT_EQ(s.api.decision_cache().insertions(), 2u);
}

TEST(DecisionMemo, MaybeIsNeverCached) {
  Stack s;
  ASSERT_TRUE(s.store
                  .SetLocalPolicy("/",
                                  "pos_access_right apache *\n"
                                  "pre_cond_accessid USER apache alice\n")
                  .ok());
  // Unauthenticated: the accessid condition stays unevaluated => MAYBE,
  // which must be re-derived every time so the 401 translation always sees
  // the fresh unevaluated-conditions list (credentials may arrive next).
  RequestContext anon = MakeContext();
  for (int i = 0; i < 4; ++i) {
    AuthzResult out = s.Go(anon);
    EXPECT_EQ(out.status, Tristate::kMaybe);
    EXPECT_EQ(out.unevaluated.size(), 1u);
  }
  EXPECT_EQ(s.api.decision_cache().insertions(), 0u);
  EXPECT_EQ(s.api.decision_cache().hits(), 0u);
}

TEST(DecisionMemo, ThreatFencedDecisionsAdmitBehindEpochFence) {
  Stack s;
  ASSERT_TRUE(s.store
                  .SetLocalPolicy("/",
                                  "pos_access_right apache *\n"
                                  "pre_cond_system_threat_level local <high\n")
                  .ok());
  RequestContext ctx = MakeContext();
  EXPECT_EQ(s.Go(ctx).status, Tristate::kYes);
  // A literal threat-level comparison specializes to kThreatFenced: the
  // decision memoizes, pinned to the threat epoch it was computed under.
  EXPECT_EQ(s.api.decision_cache().insertions(), 1u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(s.Go(ctx).status, Tristate::kYes);
  EXPECT_EQ(s.api.decision_cache().hits(), 3u);

  // A threat transition bumps the SystemState epoch, fencing the entry out
  // exactly as a policy reload's snapshot version would: the next request
  // re-evaluates against the live level and is denied.
  s.rig.state.SetThreatLevel(ThreatLevel::kHigh);
  EXPECT_EQ(s.Go(ctx).status, Tristate::kNo);
  EXPECT_EQ(s.api.decision_cache().insertions(), 2u);

  // Decay back to low is a transition too — never a stale lockdown.
  s.rig.state.SetThreatLevel(ThreatLevel::kLow);
  EXPECT_EQ(s.Go(ctx).status, Tristate::kYes);
}

TEST(DecisionMemo, VarIndirectThreatConditionsStayVolatile) {
  Stack s;
  ASSERT_TRUE(
      s.store
          .SetLocalPolicy("/",
                          "pos_access_right apache *\n"
                          "pre_cond_system_threat_level local <=var:ceiling\n")
          .ok());
  s.rig.state.SetVariable("ceiling", "high");
  RequestContext ctx = MakeContext();
  for (int i = 0; i < 3; ++i) EXPECT_EQ(s.Go(ctx).status, Tristate::kYes);
  // The "var:" form reads a SystemState variable outside any fence — it
  // must never be admitted, or a variable change could be served stale.
  EXPECT_EQ(s.api.decision_cache().insertions(), 0u);
}

TEST(DecisionMemo, EffectConditionsBlockAdmissionAndKeepFiring) {
  Stack s;
  ASSERT_TRUE(s.store
                  .SetLocalPolicy("/",
                                  "pos_access_right apache *\n"
                                  "rr_cond_audit local on:any/memo\n")
                  .ok());
  RequestContext ctx = MakeContext();
  for (int i = 0; i < 3; ++i) EXPECT_EQ(s.Go(ctx).status, Tristate::kYes);
  // Each request must produce its own audit record — memoizing would
  // swallow the paper's intrusion-response actions.
  EXPECT_EQ(s.rig.audit.CountCategory("memo"), 3u);
  EXPECT_EQ(s.api.decision_cache().insertions(), 0u);
}

TEST(DecisionMemo, DisabledCacheStillEvaluatesCompiled) {
  Stack s;
  s.api.set_decision_cache_enabled(false);
  ASSERT_TRUE(s.store.SetLocalPolicy("/", "pos_access_right apache *\n").ok());
  RequestContext ctx = MakeContext();
  for (int i = 0; i < 3; ++i) EXPECT_EQ(s.Go(ctx).status, Tristate::kYes);
  EXPECT_EQ(s.api.decision_cache().insertions(), 0u);
  EXPECT_EQ(s.api.decision_cache().hits(), 0u);
}

TEST(CacheTelemetry, DecisionAndPolicyCacheCountersExported) {
  // Both cache layers mirror their accounting into the shared registry:
  // gaa_decision_cache_* for the memo cache (satellite of the compiled
  // engine) and gaa_policy_cache_* for the legacy LRU.
  telemetry::MetricRegistry registry;
  TestRig rig;
  rig.services.metrics = &registry;
  PolicyStore store;
  GaaApi api(&store, rig.services);
  RoutineCatalog catalog;
  cond::RegisterBuiltinRoutines(catalog);
  ASSERT_TRUE(api.Initialize(catalog, cond::DefaultConfigText(), "").ok());

  ASSERT_TRUE(store
                  .SetLocalPolicy("/",
                                  "pos_access_right apache *\n"
                                  "pre_cond_accessid HOST local 10.0.0.0/8\n")
                  .ok());
  RequestContext ctx = MakeContext();
  for (int i = 0; i < 4; ++i) {
    RequestContext c = ctx;
    api.Authorize("/index.html", RequestedRight{"apache", "GET"}, c);
  }
  EXPECT_EQ(registry.GetCounter("gaa_decision_cache_misses_total")->Value(),
            1u);
  EXPECT_EQ(registry.GetCounter("gaa_decision_cache_insertions_total")->Value(),
            1u);
  EXPECT_EQ(registry.GetCounter("gaa_decision_cache_hits_total")->Value(), 3u);

  // The LRU policy cache (interpreted pipeline) reports through the same
  // registry.
  api.set_engine_mode(EngineMode::kInterpreted);
  api.set_cache_enabled(true);
  for (int i = 0; i < 4; ++i) {
    RequestContext c = ctx;
    api.Authorize("/index.html", RequestedRight{"apache", "GET"}, c);
  }
  EXPECT_EQ(registry.GetCounter("gaa_policy_cache_misses_total")->Value(), 1u);
  EXPECT_EQ(registry.GetCounter("gaa_policy_cache_hits_total")->Value(), 3u);
}

}  // namespace
}  // namespace gaa::core
