// The bounded lock-free MPMC ring that carries jobs and completions
// between the transport's shard loops and their workers (DESIGN.md §10).
#include "util/mpmc_ring.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace gaa::util {
namespace {

TEST(MpmcRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpmcRing<int>(1).capacity(), 2u);
  EXPECT_EQ(MpmcRing<int>(2).capacity(), 2u);
  EXPECT_EQ(MpmcRing<int>(3).capacity(), 4u);
  EXPECT_EQ(MpmcRing<int>(1000).capacity(), 1024u);
  EXPECT_EQ(MpmcRing<int>(1024).capacity(), 1024u);
}

TEST(MpmcRing, FifoSingleThread) {
  MpmcRing<int> ring(8);
  EXPECT_TRUE(ring.Empty());
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.Push(int{i}));
  EXPECT_FALSE(ring.Empty());
  for (int i = 0; i < 8; ++i) {
    int out = -1;
    ASSERT_TRUE(ring.Pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(ring.Empty());
  int out = -1;
  EXPECT_FALSE(ring.Pop(out));
}

TEST(MpmcRing, PushFailsWhenFullAndLeavesValueIntact) {
  MpmcRing<std::unique_ptr<int>> ring(2);
  EXPECT_TRUE(ring.Push(std::make_unique<int>(1)));
  EXPECT_TRUE(ring.Push(std::make_unique<int>(2)));
  auto extra = std::make_unique<int>(3);
  EXPECT_FALSE(ring.Push(std::move(extra)));
  // A rejected push must not consume the value (the transport re-tries or
  // falls back without losing the job).
  ASSERT_NE(extra, nullptr);
  EXPECT_EQ(*extra, 3);
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.Pop(out));
  EXPECT_EQ(*out, 1);
  EXPECT_TRUE(ring.Push(std::move(extra)));
}

TEST(MpmcRing, PopReleasesMovedOutResources) {
  MpmcRing<std::shared_ptr<int>> ring(4);
  auto tracked = std::make_shared<int>(7);
  std::weak_ptr<int> watch = tracked;
  EXPECT_TRUE(ring.Push(std::move(tracked)));
  std::shared_ptr<int> out;
  ASSERT_TRUE(ring.Pop(out));
  EXPECT_EQ(*out, 7);
  out.reset();
  // The cell must not keep a stale copy alive after Pop.
  EXPECT_TRUE(watch.expired());
}

TEST(MpmcRing, ConcurrentProducersAndConsumersDeliverEverythingOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr std::uint64_t kPerProducer = 20'000;
  MpmcRing<std::uint64_t> ring(256);

  std::atomic<std::uint64_t> received{0};
  std::atomic<std::uint64_t> sum{0};
  // Per-producer monotonicity: items from one producer must pop in push
  // order (the ring is FIFO per slot sequence).
  std::vector<std::atomic<std::uint64_t>> last_seen(kProducers);
  for (auto& v : last_seen) v.store(0);

  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      std::uint64_t item = 0;
      for (;;) {
        if (!ring.Pop(item)) {
          if (received.load(std::memory_order_acquire) >=
              kProducers * kPerProducer) {
            return;
          }
          std::this_thread::yield();
          continue;
        }
        std::uint64_t producer = item >> 32;
        std::uint64_t seq = item & 0xffffffffu;
        // With several consumers, sequences can interleave across threads,
        // but a strictly smaller sequence than one already *recorded* can
        // only happen via duplication once we use fetch_max semantics.
        std::uint64_t prev = last_seen[producer].load();
        while (seq > prev &&
               !last_seen[producer].compare_exchange_weak(prev, seq)) {
        }
        sum.fetch_add(item & 0xffffffffu, std::memory_order_relaxed);
        received.fetch_add(1, std::memory_order_acq_rel);
      }
    });
  }

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = 1; i <= kPerProducer; ++i) {
        std::uint64_t item = (static_cast<std::uint64_t>(p) << 32) | i;
        while (!ring.Push(std::move(item))) std::this_thread::yield();
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();

  EXPECT_EQ(received.load(), kProducers * kPerProducer);
  // Every item delivered exactly once: the sum of sequence numbers matches
  // kProducers * (1 + 2 + ... + kPerProducer).
  EXPECT_EQ(sum.load(), kProducers * (kPerProducer * (kPerProducer + 1) / 2));
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(last_seen[p].load(), kPerProducer);
  }
  EXPECT_TRUE(ring.Empty());
}

}  // namespace
}  // namespace gaa::util
