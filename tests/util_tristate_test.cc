#include "util/tristate.h"

#include <gtest/gtest.h>

#include <tuple>

namespace gaa::util {
namespace {

constexpr Tristate kAll[] = {Tristate::kYes, Tristate::kNo, Tristate::kMaybe};

TEST(Tristate, Names) {
  EXPECT_STREQ(TristateName(Tristate::kYes), "YES");
  EXPECT_STREQ(TristateName(Tristate::kNo), "NO");
  EXPECT_STREQ(TristateName(Tristate::kMaybe), "MAYBE");
}

TEST(Tristate, AndTruthTable) {
  EXPECT_EQ(And3(Tristate::kYes, Tristate::kYes), Tristate::kYes);
  EXPECT_EQ(And3(Tristate::kYes, Tristate::kNo), Tristate::kNo);
  EXPECT_EQ(And3(Tristate::kYes, Tristate::kMaybe), Tristate::kMaybe);
  EXPECT_EQ(And3(Tristate::kNo, Tristate::kMaybe), Tristate::kNo);
  EXPECT_EQ(And3(Tristate::kMaybe, Tristate::kMaybe), Tristate::kMaybe);
}

TEST(Tristate, OrTruthTable) {
  EXPECT_EQ(Or3(Tristate::kYes, Tristate::kNo), Tristate::kYes);
  EXPECT_EQ(Or3(Tristate::kNo, Tristate::kNo), Tristate::kNo);
  EXPECT_EQ(Or3(Tristate::kNo, Tristate::kMaybe), Tristate::kMaybe);
  EXPECT_EQ(Or3(Tristate::kYes, Tristate::kMaybe), Tristate::kYes);
  EXPECT_EQ(Or3(Tristate::kMaybe, Tristate::kMaybe), Tristate::kMaybe);
}

TEST(Tristate, NotInvolution) {
  for (Tristate a : kAll) {
    EXPECT_EQ(Not3(Not3(a)), a);
  }
  EXPECT_EQ(Not3(Tristate::kYes), Tristate::kNo);
  EXPECT_EQ(Not3(Tristate::kMaybe), Tristate::kMaybe);
}

// Property sweep over every pair/triple: the Kleene-algebra laws the policy
// evaluator relies on.
class TristatePairs
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TristatePairs, CommutativityAndDeMorgan) {
  Tristate a = kAll[std::get<0>(GetParam())];
  Tristate b = kAll[std::get<1>(GetParam())];
  EXPECT_EQ(And3(a, b), And3(b, a));
  EXPECT_EQ(Or3(a, b), Or3(b, a));
  EXPECT_EQ(Not3(And3(a, b)), Or3(Not3(a), Not3(b)));
  EXPECT_EQ(Not3(Or3(a, b)), And3(Not3(a), Not3(b)));
  // Identity / domination.
  EXPECT_EQ(And3(a, Tristate::kYes), a);
  EXPECT_EQ(And3(a, Tristate::kNo), Tristate::kNo);
  EXPECT_EQ(Or3(a, Tristate::kNo), a);
  EXPECT_EQ(Or3(a, Tristate::kYes), Tristate::kYes);
  // Idempotence.
  EXPECT_EQ(And3(a, a), a);
  EXPECT_EQ(Or3(a, a), a);
}

INSTANTIATE_TEST_SUITE_P(AllPairs, TristatePairs,
                         ::testing::Combine(::testing::Range(0, 3),
                                            ::testing::Range(0, 3)));

class TristateTriples
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TristateTriples, AssociativityAndDistributivity) {
  Tristate a = kAll[std::get<0>(GetParam())];
  Tristate b = kAll[std::get<1>(GetParam())];
  Tristate c = kAll[std::get<2>(GetParam())];
  EXPECT_EQ(And3(a, And3(b, c)), And3(And3(a, b), c));
  EXPECT_EQ(Or3(a, Or3(b, c)), Or3(Or3(a, b), c));
  EXPECT_EQ(And3(a, Or3(b, c)), Or3(And3(a, b), And3(a, c)));
  EXPECT_EQ(Or3(a, And3(b, c)), And3(Or3(a, b), Or3(a, c)));
}

INSTANTIATE_TEST_SUITE_P(AllTriples, TristateTriples,
                         ::testing::Combine(::testing::Range(0, 3),
                                            ::testing::Range(0, 3),
                                            ::testing::Range(0, 3)));

}  // namespace
}  // namespace gaa::util
