#include "util/config.h"

#include <gtest/gtest.h>

namespace gaa::util {
namespace {

TEST(ParseConfigText, BasicDirectives) {
  auto result = ParseConfigText("alpha one two\nbeta three\n");
  ASSERT_TRUE(result.ok());
  const auto& lines = result.value();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].line_number, 1);
  EXPECT_EQ(lines[0].tokens, (std::vector<std::string>{"alpha", "one", "two"}));
  EXPECT_EQ(lines[1].line_number, 2);
}

TEST(ParseConfigText, CommentsAndBlanks) {
  auto result = ParseConfigText(
      "# full comment\n"
      "\n"
      "key value # trailing comment\n"
      "   \t  \n");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 1u);
  EXPECT_EQ(result.value()[0].tokens,
            (std::vector<std::string>{"key", "value"}));
  EXPECT_EQ(result.value()[0].line_number, 3);
}

TEST(ParseConfigText, Continuations) {
  auto result = ParseConfigText("first a \\\n  b \\\n  c\nsecond x\n");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 2u);
  EXPECT_EQ(result.value()[0].tokens,
            (std::vector<std::string>{"first", "a", "b", "c"}));
  EXPECT_EQ(result.value()[0].line_number, 1);
  EXPECT_EQ(result.value()[1].line_number, 4);
}

TEST(ParseConfigText, TrailingContinuationIsFlushed) {
  auto result = ParseConfigText("only a \\");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 1u);
  EXPECT_EQ(result.value()[0].tokens,
            (std::vector<std::string>{"only", "a"}));
}

TEST(ParseConfigText, EmptyInput) {
  auto result = ParseConfigText("");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
}

TEST(FileRoundTrip, WriteThenRead) {
  std::string path = ::testing::TempDir() + "/gaa_config_test.txt";
  ASSERT_TRUE(WriteStringToFile(path, "hello world\n").ok());
  auto text = ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text.value(), "hello world\n");
  auto lines = ParseConfigFile(path);
  ASSERT_TRUE(lines.ok());
  ASSERT_EQ(lines.value().size(), 1u);
}

TEST(FileRoundTrip, MissingFileIsNotFound) {
  auto text = ReadFileToString("/nonexistent/definitely/missing");
  ASSERT_FALSE(text.ok());
  EXPECT_EQ(text.error().code, ErrorCode::kNotFound);
}

}  // namespace
}  // namespace gaa::util
