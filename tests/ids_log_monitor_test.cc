#include "ids/log_monitor.h"

#include <gtest/gtest.h>

#include "http/doc_tree.h"
#include "integration/gaa_web_server.h"

namespace gaa::ids {
namespace {

http::AccessLogEntry MakeEntry(const std::string& ip,
                               const std::string& request_line, int status,
                               std::uint64_t bytes = 123) {
  http::AccessLogEntry entry;
  entry.time_us = 1053345600LL * util::kMicrosPerSecond;
  entry.client_ip = ip;
  entry.user = "-";
  entry.request_line = request_line;
  entry.status = status;
  entry.bytes = bytes;
  return entry;
}

TEST(CommonLogFormat, SerializeShape) {
  std::string line = ToCommonLogFormat(
      MakeEntry("10.0.0.1", "GET /index.html", 200, 42));
  EXPECT_EQ(line,
            "10.0.0.1 - - [2003-05-19 12:00:00.000] \"GET /index.html\" 200 42");
}

TEST(CommonLogFormat, RoundTrip) {
  auto entry = ParseCommonLogFormat(ToCommonLogFormat(
      MakeEntry("10.0.0.1", "GET /cgi-bin/phf?Qalias=x", 403, 19)));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->host, "10.0.0.1");
  EXPECT_EQ(entry->method, "GET");
  EXPECT_EQ(entry->target, "/cgi-bin/phf?Qalias=x");
  EXPECT_EQ(entry->status, 403);
  EXPECT_EQ(entry->bytes, 19u);
}

TEST(CommonLogFormat, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseCommonLogFormat("").has_value());
  EXPECT_FALSE(ParseCommonLogFormat("no-quotes-here 200 1").has_value());
  EXPECT_FALSE(
      ParseCommonLogFormat("h - - [d] \"GET /\" not_a_status 1").has_value());
}

TEST(LogMonitor, DetectsAttackLines) {
  LogMonitor monitor;
  auto finding = monitor.ScanLine(ToCommonLogFormat(
      MakeEntry("203.0.113.9", "GET /cgi-bin/phf?Qalias=x%0acat", 200)));
  ASSERT_TRUE(finding.has_value());
  EXPECT_EQ(finding->hit.name, "cgi_phf");
  EXPECT_TRUE(finding->was_served);  // 200: damage already done
}

TEST(LogMonitor, DeniedAttackIsDetectedButNotServed) {
  LogMonitor monitor;
  auto finding = monitor.ScanLine(ToCommonLogFormat(
      MakeEntry("203.0.113.9", "GET /cgi-bin/test-cgi?*", 403)));
  ASSERT_TRUE(finding.has_value());
  EXPECT_FALSE(finding->was_served);
}

TEST(LogMonitor, IgnoresBenignLines) {
  LogMonitor monitor;
  EXPECT_FALSE(monitor
                   .ScanLine(ToCommonLogFormat(
                       MakeEntry("10.0.0.1", "GET /index.html", 200)))
                   .has_value());
  EXPECT_FALSE(monitor
                   .ScanLine(ToCommonLogFormat(MakeEntry(
                       "10.0.0.1", "GET /cgi-bin/search?q=apache", 200)))
                   .has_value());
}

TEST(LogMonitor, ScanLogProcessesMultipleLines) {
  LogMonitor monitor;
  std::string log =
      ToCommonLogFormat(MakeEntry("10.0.0.1", "GET /index.html", 200)) + "\n" +
      ToCommonLogFormat(
          MakeEntry("203.0.113.9", "GET /cgi-bin/phf?Qalias=x", 200)) +
      "\n" +
      ToCommonLogFormat(
          MakeEntry("203.0.113.9", "GET /scripts/..%255c../cmd.exe", 404)) +
      "\n";
  auto findings = monitor.ScanLog(log);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].hit.name, "cgi_phf");
  EXPECT_TRUE(findings[0].was_served);
  EXPECT_FALSE(findings[1].was_served);  // 404
}

TEST(LogMonitor, ScanServerLogEndToEnd) {
  // An unprotected server serves the phf exploit; the nightly scan finds
  // it — after the fact (the paper's §10 contrast).
  gaa::web::GaaWebServer::Options options;
  options.notification_latency_us = 0;
  gaa::web::GaaWebServer server(http::DocTree::DemoSite(), options);
  ASSERT_TRUE(server.SetLocalPolicy("/", "pos_access_right apache *\n").ok());
  server.Get("/cgi-bin/phf?Qalias=x%0acat", "203.0.113.9");
  server.Get("/index.html", "10.0.0.1");

  LogMonitor monitor;
  auto findings = monitor.ScanServerLog(server.server().AccessLog());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].entry.host, "203.0.113.9");
  EXPECT_TRUE(findings[0].was_served);
}

}  // namespace
}  // namespace gaa::ids
