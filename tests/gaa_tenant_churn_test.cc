// Tenant-table churn under concurrent load (DESIGN.md §14).  A mutator
// thread adds, reloads and removes tenant namespaces while reader threads
// authorize against two stable tenants with opposite policies; run under
// TSan in CI.  The invariants: a reader never observes the wrong tenant's
// answer (no cross-tenant memo bleed), and retired-snapshot retention stays
// bounded once readers quiesce.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "conditions/builtin.h"
#include "gaa/api.h"
#include "gaa/policy_store.h"
#include "testing/helpers.h"

namespace gaa::core {
namespace {

using gaa::testing::MakeContext;
using gaa::testing::TestRig;
using util::Tristate;

constexpr const char* kGrant = "pos_access_right apache *\n";
constexpr const char* kDeny = "neg_access_right apache *\n";

struct Stack {
  Stack() : api(&store, rig.services) {
    RoutineCatalog catalog;
    cond::RegisterBuiltinRoutines(catalog);
    EXPECT_TRUE(api.Initialize(catalog, cond::DefaultConfigText(), "").ok());
  }

  TestRig rig;
  PolicyStore store;
  GaaApi api;
};

TEST(TenantChurn, ConcurrentAddReloadRemoveKeepsNamespacesIsolated) {
  Stack s;
  ASSERT_TRUE(s.store.SetLocalPolicy("/", kGrant).ok());
  // Two stable tenants with opposite answers for the same object: any
  // cross-tenant bleed of a memoized decision flips one of them.
  ASSERT_TRUE(s.store.AddTenant("allow").ok());
  ASSERT_TRUE(s.store.SetTenantLocalPolicy("deny", "/", kDeny).ok());

  constexpr int kMutations = 400;
  std::atomic<bool> done{false};
  std::atomic<int> wrong{0};

  std::thread mutator([&] {
    for (int i = 0; i < kMutations; ++i) {
      const std::string name = "churn" + std::to_string(i % 8);
      switch (i % 4) {
        case 0:
          (void)s.store.AddTenant(name);
          break;
        case 1:
          (void)s.store.AddTenantSystemPolicy(name, kGrant);
          break;
        case 2:
          (void)s.store.SetTenantLocalPolicy(name, "/private", kDeny);
          break;
        default:
          (void)s.store.RemoveTenant(name);
          break;
      }
    }
    done.store(true, std::memory_order_release);
  });

  auto reader = [&] {
    RequestContext base = MakeContext();
    const RequestedRight right{"apache", "GET"};
    while (!done.load(std::memory_order_acquire)) {
      RequestContext a = base;
      a.tenant = "allow";
      if (s.api.Authorize(a.object, right, a).status != Tristate::kYes) {
        wrong.fetch_add(1);
      }
      RequestContext d = base;
      d.tenant = "deny";
      if (s.api.Authorize(d.object, right, d).status != Tristate::kNo) {
        wrong.fetch_add(1);
      }
      // Churned namespaces fall back to the global grant whether or not the
      // tenant exists at the instant of evaluation — never to another
      // tenant's overlay.
      RequestContext c = base;
      c.tenant = "churn" + std::to_string(7);
      if (s.api.Authorize(c.object, right, c).status != Tristate::kYes) {
        wrong.fetch_add(1);
      }
    }
  };

  std::vector<std::thread> readers;
  for (int i = 0; i < 2; ++i) readers.emplace_back(reader);
  mutator.join();
  for (auto& t : readers) t.join();

  EXPECT_EQ(wrong.load(), 0);

  // Readers released every snapshot they pinned; after a quiescent global
  // mutation the retired list is bounded by the live namespace count (that
  // mutation's own retirees) plus the keep-floor — it must not scale with
  // the 400 mutations of churn above.
  ASSERT_TRUE(s.store.SetLocalPolicy("/scratch", kGrant).ok());
  EXPECT_LE(s.store.retired_count(),
            s.store.retired_floor() + s.store.tenant_count() + 1);

  // The stable namespaces survived the churn with their layers intact.
  EXPECT_TRUE(s.store.HasTenant("allow"));
  EXPECT_TRUE(s.store.HasTenant("deny"));
}

}  // namespace
}  // namespace gaa::core
