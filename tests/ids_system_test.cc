#include "ids/ids.h"

#include <gtest/gtest.h>

namespace gaa::ids {
namespace {

using core::ReportKind;
using core::ThreatLevel;

class IdsSystemTest : public ::testing::Test {
 protected:
  IdsSystemTest() : clock_(0), state_(&clock_), ids_(&state_, &clock_) {}

  core::IdsReport Attack(int severity, double confidence = 1.0) {
    core::IdsReport r;
    r.kind = ReportKind::kDetectedAttack;
    r.source_ip = "203.0.113.9";
    r.object = "/cgi-bin/phf";
    r.attack_type = "cgi_exploit";
    r.severity = severity;
    r.confidence = confidence;
    return r;
  }

  util::SimulatedClock clock_;
  core::SystemState state_;
  IntrusionDetectionSystem ids_;
};

TEST_F(IdsSystemTest, ReportsAccumulate) {
  ids_.Report(Attack(5));
  ids_.Report(Attack(7));
  EXPECT_EQ(ids_.report_count(), 2u);
  EXPECT_EQ(ids_.CountKind(ReportKind::kDetectedAttack), 2u);
  EXPECT_EQ(ids_.CountKind(ReportKind::kIllFormedRequest), 0u);
}

TEST_F(IdsSystemTest, AttackReportsEscalateThreatLevel) {
  EXPECT_EQ(state_.threat_level(), ThreatLevel::kLow);
  ids_.Report(Attack(8));
  ids_.Report(Attack(8));
  EXPECT_GE(static_cast<int>(state_.threat_level()),
            static_cast<int>(ThreatLevel::kMedium));
  for (int i = 0; i < 4; ++i) ids_.Report(Attack(9));
  EXPECT_EQ(state_.threat_level(), ThreatLevel::kHigh);
}

TEST_F(IdsSystemTest, LegitimatePatternsDoNotEscalate) {
  core::IdsReport r;
  r.kind = ReportKind::kLegitimatePattern;
  r.severity = 10;  // even a large value must not count
  r.confidence = 1.0;
  for (int i = 0; i < 20; ++i) ids_.Report(r);
  EXPECT_EQ(state_.threat_level(), ThreatLevel::kLow);
}

TEST_F(IdsSystemTest, ConfidenceWeighsSeverity) {
  ids_.Report(Attack(10, /*confidence=*/0.1));  // weight 1.0
  EXPECT_EQ(state_.threat_level(), ThreatLevel::kLow);
}

TEST_F(IdsSystemTest, ReportsPublishOnTheBus) {
  std::vector<Event> events;
  ids_.bus().Subscribe({"gaa.report.*", 0},
                       [&](const Event& e) { events.push_back(e); });
  ids_.Report(Attack(6));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].topic, "gaa.report.detected_attack");
  EXPECT_NE(events[0].payload.find("203.0.113.9"), std::string::npos);
}

TEST_F(IdsSystemTest, SpoofingOracle) {
  EXPECT_FALSE(ids_.SuspectedSpoofing("1.2.3.4"));
  ids_.MarkSpoofedSource("1.2.3.4");
  EXPECT_TRUE(ids_.SuspectedSpoofing("1.2.3.4"));
  ids_.ClearSpoofedSources();
  EXPECT_FALSE(ids_.SuspectedSpoofing("1.2.3.4"));
}

TEST_F(IdsSystemTest, AdaptiveValuesTightenWithThreat) {
  ids_.RecomputeAdaptiveValues();
  EXPECT_EQ(state_.GetVariable("gaa.max_cgi_input").value(), "1000");

  ids_.threat().ForceLevel(ThreatLevel::kHigh);
  ids_.RecomputeAdaptiveValues();
  EXPECT_EQ(state_.GetVariable("gaa.max_cgi_input").value(), "200");
  EXPECT_EQ(state_.GetVariable("gaa.rate_limit").value(), "5");

  ids_.threat().ForceLevel(ThreatLevel::kMedium);
  ids_.RecomputeAdaptiveValues();
  EXPECT_EQ(state_.GetVariable("gaa.max_cgi_input").value(), "500");
}

TEST_F(IdsSystemTest, ReportTriggersAdaptiveRecompute) {
  for (int i = 0; i < 6; ++i) ids_.Report(Attack(9));
  ASSERT_EQ(state_.threat_level(), ThreatLevel::kHigh);
  // The report path recomputes adaptive values automatically.
  EXPECT_EQ(state_.GetVariable("gaa.max_cgi_input").value(), "200");
}

TEST_F(IdsSystemTest, PushAdaptiveValue) {
  ids_.PushAdaptiveValue("custom.threshold", "42");
  EXPECT_EQ(state_.GetVariable("custom.threshold").value(), "42");
}

}  // namespace
}  // namespace gaa::ids
