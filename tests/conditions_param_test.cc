// Tests for builtin:param_glob (pre_cond_param) — signature matching over
// the classified request parameters of §6 step 2b (e.g. scanner
// User-Agents), plus its end-to-end wiring.
#include <gtest/gtest.h>

#include "conditions/builtin.h"
#include "http/doc_tree.h"
#include "integration/gaa_web_server.h"
#include "testing/helpers.h"

namespace gaa::cond {
namespace {

using gaa::testing::MakeCond;
using gaa::testing::MakeContext;
using gaa::testing::TestRig;
using util::Tristate;

class ParamGlobTest : public ::testing::Test {
 protected:
  TestRig rig_;
  core::CondRoutine routine_ =
      MakeParamGlobRoutine({{"attack_type", "scanner"}, {"severity", "4"}});
};

TEST_F(ParamGlobTest, MatchesScannerUserAgent) {
  auto ctx = MakeContext("203.0.113.9");
  ctx.AddParam("user_agent", "apache", "Mozilla/4.75 (Nikto/2.1.6)");
  auto out = routine_(MakeCond("pre_cond_param", "local",
                               "user_agent *nikto* *nmap*"),
                      ctx, rig_.services);
  EXPECT_EQ(out.status, Tristate::kYes);  // case-insensitive
  ASSERT_EQ(rig_.ids.reports.size(), 1u);
  EXPECT_EQ(rig_.ids.reports[0].attack_type, "scanner");
  EXPECT_EQ(rig_.ids.reports[0].severity, 4);
}

TEST_F(ParamGlobTest, NoMatchOnNormalBrowser) {
  auto ctx = MakeContext();
  ctx.AddParam("user_agent", "apache", "Mozilla/5.0 (X11; Linux)");
  EXPECT_EQ(routine_(MakeCond("pre_cond_param", "local",
                              "user_agent *nikto* *nmap*"),
                     ctx, rig_.services)
                .status,
            Tristate::kNo);
  EXPECT_TRUE(rig_.ids.reports.empty());
}

TEST_F(ParamGlobTest, MissingParamIsUnevaluated) {
  auto ctx = MakeContext();  // no user_agent param
  auto out = routine_(MakeCond("pre_cond_param", "local", "user_agent *x*"),
                      ctx, rig_.services);
  EXPECT_EQ(out.status, Tristate::kMaybe);
  EXPECT_FALSE(out.evaluated);
}

TEST_F(ParamGlobTest, MalformedValueFails) {
  auto ctx = MakeContext();
  EXPECT_EQ(routine_(MakeCond("pre_cond_param", "local", "only_field"), ctx,
                     rig_.services)
                .status,
            Tristate::kNo);
}

TEST(ParamGlobE2E, ScannerUserAgentBlocked) {
  web::GaaWebServer::Options options;
  options.notification_latency_us = 0;
  web::GaaWebServer server(http::DocTree::DemoSite(), options);
  ASSERT_TRUE(server
                  .SetLocalPolicy("/", R"(
neg_access_right apache *
pre_cond_param local user_agent *Nikto* *sqlmap* *masscan*
rr_cond_update_log local on:failure/BadGuys/info:ip
pos_access_right apache *
)")
                  .ok());
  // Scanner traffic: denied + blacklisted.
  std::string scanner = http::BuildGetRequest(
      "/index.html", {{"User-Agent", "Mozilla/4.75 (Nikto/2.1.6)"}});
  EXPECT_EQ(server.HandleText(scanner, "203.0.113.9").status,
            http::StatusCode::kForbidden);
  EXPECT_TRUE(server.state().GroupContains("BadGuys", "203.0.113.9"));
  // Normal browsers pass.
  std::string browser = http::BuildGetRequest(
      "/index.html", {{"User-Agent", "Mozilla/5.0 (X11; Linux)"}});
  EXPECT_EQ(server.HandleText(browser, "10.0.0.1").status,
            http::StatusCode::kOk);
  // A request WITHOUT a User-Agent header leaves the condition
  // unevaluated: the entry might apply, so the answer is MAYBE -> 401
  // (ask the client to identify itself — the conservative reading).
  std::string bare = "GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n";
  EXPECT_EQ(server.HandleText(bare, "10.0.0.2").status,
            http::StatusCode::kUnauthorized);
}

}  // namespace
}  // namespace gaa::cond
