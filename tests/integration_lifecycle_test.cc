// Capstone scenario: a full incident lifecycle through every subsystem —
// normal operation, scan detection, automated response (notify, blacklist,
// escalate), IDS-driven lockdown, alert-channel fan-out, decay, recovery.
#include <gtest/gtest.h>

#include "http/doc_tree.h"
#include "ids/event_bus.h"
#include "integration/gaa_web_server.h"
#include "workload/trace.h"

namespace gaa::web {
namespace {

using core::ThreatLevel;
using http::StatusCode;

TEST(IncidentLifecycle, EndToEnd) {
  GaaWebServer::Options options;
  options.notification_latency_us = 0;
  // Escalate quickly so one scan is enough to matter.
  options.threat.window_us = 120 * util::kMicrosPerSecond;
  options.threat.medium_score = 10.0;
  options.threat.high_score = 12.0;
  options.threat.decay_us = 60 * util::kMicrosPerSecond;
  GaaWebServer server(http::DocTree::DemoSite(), options);
  server.AddUser("alice", "wonder");

  // --- policies: §7.1 lockdown + §7.2 signatures & response ---------------
  ASSERT_TRUE(server
                  .AddSystemPolicy(R"(
eacl_mode 1
neg_access_right * *
pre_cond_accessid GROUP local BadGuys
)")
                  .ok());
  ASSERT_TRUE(server
                  .AddSystemPolicy(R"(
neg_access_right * *
pre_cond_system_threat_level local =high
)")
                  .ok());
  ASSERT_TRUE(server
                  .SetLocalPolicy("/", R"(
neg_access_right apache *
pre_cond_regex gnu *phf* *test-cgi*
rr_cond_notify local on:failure/sysadmin/info:cgiexploit
rr_cond_update_log local on:failure/BadGuys/info:ip
pos_access_right apache *
pre_cond_system_threat_level local <high
)")
                  .ok());

  // The §9 subscription channel: high-severity events fan out to a second
  // notification path (e.g. the security officer's pager).
  audit::SimulatedSmtpNotifier pager(server.sim_clock(), 0);
  ids::ConnectAlertNotifications(server.ids().bus(), pager,
                                 /*min_severity=*/6, "security-officer");

  // --- phase 1: normal operation -------------------------------------------
  EXPECT_EQ(server.Get("/index.html", "10.0.0.1").status, StatusCode::kOk);
  EXPECT_EQ(server.state().threat_level(), ThreatLevel::kLow);
  EXPECT_EQ(pager.sent_count(), 0u);

  // --- phase 2: a vulnerability scan arrives --------------------------------
  workload::TraceGenerator gen({});
  auto scan = gen.VulnerabilityScan("203.0.113.66", 5);
  std::size_t blocked = 0;
  for (const auto& probe : scan) {
    if (server.HandleText(probe.raw, probe.client_ip).status ==
        StatusCode::kForbidden) {
      ++blocked;
    }
  }
  EXPECT_EQ(blocked, scan.size());  // every probe denied
  // Response actions fired: admin notified, source blacklisted, pager rang.
  EXPECT_GE(server.notifier().sent_count(), 1u);
  EXPECT_TRUE(server.state().GroupContains("BadGuys", "203.0.113.66"));
  EXPECT_GE(pager.sent_count(), 1u);

  // A second attacker pushes the score over the lockdown threshold.
  auto scan2 = gen.VulnerabilityScan("203.0.113.67", 1);
  for (const auto& probe : scan2) {
    server.HandleText(probe.raw, probe.client_ip);
  }
  ASSERT_EQ(server.state().threat_level(), ThreatLevel::kHigh);

  // --- phase 3: lockdown ------------------------------------------------------
  // Even benign clients are now shut out by the mandatory threat policy.
  EXPECT_EQ(server.Get("/index.html", "10.0.0.1").status,
            StatusCode::kForbidden);

  // --- phase 4: quiet period, decay, recovery ---------------------------------
  server.sim_clock()->Advance(150 * util::kMicrosPerSecond);
  server.ids().threat().Tick();  // high -> medium (score window expired)
  server.sim_clock()->Advance(70 * util::kMicrosPerSecond);
  server.ids().threat().Tick();  // medium -> low
  EXPECT_EQ(server.state().threat_level(), ThreatLevel::kLow);
  EXPECT_EQ(server.Get("/index.html", "10.0.0.1").status, StatusCode::kOk);

  // The blacklist survives recovery: the scanners stay out.
  EXPECT_EQ(server.Get("/index.html", "203.0.113.66").status,
            StatusCode::kForbidden);

  // --- audit trail: the incident is fully reconstructable ---------------------
  EXPECT_GE(server.audit_log().CountCategory("blacklist"), 2u);
  EXPECT_GE(server.ids().CountKind(core::ReportKind::kDetectedAttack), 2u);
}

TEST(PolicyExport, RoundTripsThroughParser) {
  GaaWebServer::Options options;
  options.notification_latency_us = 0;
  GaaWebServer server(http::DocTree::DemoSite(), options);
  ASSERT_TRUE(server
                  .AddSystemPolicy("eacl_mode 1\nneg_access_right * *\n"
                                   "pre_cond_accessid GROUP local BadGuys\n")
                  .ok());
  ASSERT_TRUE(server
                  .SetLocalPolicy("/", "neg_access_right apache *\n"
                                       "pre_cond_regex gnu *phf*\n"
                                       "pos_access_right apache *\n")
                  .ok());
  std::string system_text = server.policy_store().ExportSystemPolicies();
  EXPECT_NE(system_text.find("eacl_mode 1"), std::string::npos);
  EXPECT_NE(system_text.find("BadGuys"), std::string::npos);

  auto local_text = server.policy_store().ExportLocalPolicy("/");
  ASSERT_TRUE(local_text.has_value());
  // The export re-imports to an equivalent policy.
  GaaWebServer reimport(http::DocTree::DemoSite(), options);
  ASSERT_TRUE(reimport.AddSystemPolicy(system_text).ok());
  ASSERT_TRUE(reimport.SetLocalPolicy("/", *local_text).ok());
  EXPECT_EQ(reimport.Get("/cgi-bin/phf?x", "203.0.113.9").status,
            http::StatusCode::kForbidden);
  EXPECT_EQ(reimport.Get("/index.html", "10.0.0.1").status,
            http::StatusCode::kOk);

  EXPECT_FALSE(server.policy_store().ExportLocalPolicy("/nope").has_value());
}

}  // namespace
}  // namespace gaa::web
