// Decay-under-idle: the transport's shard timer wheel drives periodic IDS
// maintenance (GaaWebServer::WireIdsTick), so the threat level steps back
// down even when no requests arrive at all (DESIGN.md §12).  The simulated
// clock supplies the IDS's notion of elapsed time; the wall-clock wheel
// tick merely provides the heartbeat that re-evaluates it — exactly the
// situation after an attack burst: the attacker goes quiet, and without a
// request-independent tick the server would stay locked at high forever.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "http/doc_tree.h"
#include "http/tcp_server.h"
#include "integration/gaa_web_server.h"

namespace gaa::web {
namespace {

http::DocTree TickSite() {
  http::DocTree tree;
  tree.AddDocument("/index.html", {"<html>hi</html>"});
  return tree;
}

bool WaitForLevel(ids::ThreatService& threat, core::ThreatLevel want,
                  int timeout_ms) {
  for (int waited = 0; waited < timeout_ms; waited += 5) {
    if (threat.level() == want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return threat.level() == want;
}

TEST(IdsTickTest, ThreatLevelDecaysWithZeroRequests) {
  GaaWebServer gws(TickSite());
  ASSERT_TRUE(gws.SetLocalPolicy("/", "pos_access_right apache *\n").ok());

  http::TcpServer::Options options;
  options.reactor_shards = 1;
  options.tick_interval_ms = 5;
  http::TcpServer transport(&gws.server(), options);
  gws.WireIdsTick(&transport);
  auto started = transport.Start();
  ASSERT_TRUE(started.ok()) << started.error().ToString();

  // Escalate to high through the normal alert path.
  for (int i = 0; i < 4; ++i) gws.ids().threat().ReportAlert(10.0);
  ASSERT_EQ(gws.ids().threat().level(), core::ThreatLevel::kHigh);
  ASSERT_EQ(gws.state().threat_level(), core::ThreatLevel::kHigh);

  // Simulated quiet time: the alert window empties and a full decay period
  // elapses.  No requests are sent from here on — only the wheel tick can
  // re-evaluate decay.  One notch per quiet period: high → medium → low.
  gws.sim_clock()->Advance(130 * util::kMicrosPerSecond);
  EXPECT_TRUE(
      WaitForLevel(gws.ids().threat(), core::ThreatLevel::kMedium, 2000));
  EXPECT_EQ(gws.state().threat_level(), core::ThreatLevel::kMedium);

  gws.sim_clock()->Advance(130 * util::kMicrosPerSecond);
  EXPECT_TRUE(WaitForLevel(gws.ids().threat(), core::ThreatLevel::kLow, 2000));
  EXPECT_EQ(gws.state().threat_level(), core::ThreatLevel::kLow);

  transport.Stop();
}

TEST(IdsTickTest, ZeroIntervalMeansNoTicks) {
  GaaWebServer gws(TickSite());
  ASSERT_TRUE(gws.SetLocalPolicy("/", "pos_access_right apache *\n").ok());

  http::TcpServer::Options options;
  options.reactor_shards = 1;  // tick_interval_ms stays 0 (disabled)
  http::TcpServer transport(&gws.server(), options);
  gws.WireIdsTick(&transport);
  ASSERT_TRUE(transport.Start().ok());

  for (int i = 0; i < 4; ++i) gws.ids().threat().ReportAlert(10.0);
  gws.sim_clock()->Advance(130 * util::kMicrosPerSecond);
  // With the tick disabled and no traffic, nothing re-evaluates decay.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(gws.ids().threat().level(), core::ThreatLevel::kHigh);

  transport.Stop();
}

}  // namespace
}  // namespace gaa::web
