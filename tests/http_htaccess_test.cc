#include "http/htaccess.h"

#include <gtest/gtest.h>

#include "util/strings.h"

namespace gaa::http {
namespace {

// The paper's §4 sample .htaccess (AuthUserFile name is a registry key).
constexpr const char* kPaperSample = R"(
Order Deny,Allow
Deny from All
Allow from 128.9
AuthType Basic
AuthUserFile isi-staff
AuthName isi
Require valid-user
Satisfy All
)";

RequestRec MakeRec(const std::string& ip,
                   const std::string& user = "",
                   const std::string& password = "") {
  RequestRec rec;
  rec.method = "GET";
  rec.path = "/doc.html";
  rec.client_ip = util::Ipv4Address::Parse(ip).value();
  if (!user.empty()) {
    rec.headers["authorization"] =
        "Basic " + util::Base64Encode(user + ":" + password);
  }
  return rec;
}

class HtaccessTest : public ::testing::Test {
 protected:
  HtaccessTest() {
    passwords_.GetOrCreate("isi-staff").SetUser("alice", "wonder");
  }
  HtpasswdRegistry passwords_;
};

TEST_F(HtaccessTest, ParsePaperSample) {
  auto config = ParseHtaccess(kPaperSample);
  ASSERT_TRUE(config.ok()) << config.error().ToString();
  const auto& c = config.value();
  EXPECT_EQ(c.order, AccessOrder::kDenyAllow);
  EXPECT_TRUE(c.deny_all);
  ASSERT_EQ(c.allow_from.size(), 1u);
  EXPECT_EQ(c.allow_from[0].prefix_len(), 16);
  EXPECT_TRUE(c.auth_basic);
  EXPECT_EQ(c.auth_user_file, "isi-staff");
  EXPECT_EQ(c.auth_name, "isi");
  EXPECT_TRUE(c.require_valid_user);
  EXPECT_EQ(c.satisfy, SatisfyMode::kAll);
}

TEST_F(HtaccessTest, PaperSampleSemantics) {
  auto config = ParseHtaccess(kPaperSample).value();
  // Inside the allowed network with valid credentials: allowed.
  auto rec = MakeRec("128.9.1.2", "alice", "wonder");
  EXPECT_EQ(EvaluateHtaccess(config, rec, passwords_),
            HtaccessDecision::kAllow);
  EXPECT_TRUE(rec.authenticated);
  EXPECT_EQ(rec.auth_user, "alice");
  // Inside the network without credentials: challenge.
  auto anon = MakeRec("128.9.1.2");
  EXPECT_EQ(EvaluateHtaccess(config, anon, passwords_),
            HtaccessDecision::kAuthRequired);
  // Outside the network: denied regardless of credentials (Satisfy All).
  auto outside = MakeRec("4.4.4.4", "alice", "wonder");
  EXPECT_EQ(EvaluateHtaccess(config, outside, passwords_),
            HtaccessDecision::kDeny);
  // Wrong password: challenge again.
  auto wrong = MakeRec("128.9.1.2", "alice", "nope");
  EXPECT_EQ(EvaluateHtaccess(config, wrong, passwords_),
            HtaccessDecision::kAuthRequired);
}

TEST_F(HtaccessTest, SatisfyAnyAllowsEitherConstraint) {
  std::string text = std::string(kPaperSample);
  text = util::ReplaceAll(text, "Satisfy All", "Satisfy Any");
  auto config = ParseHtaccess(text).value();
  // Outside the network but valid credentials: allowed under Any.
  auto rec = MakeRec("4.4.4.4", "alice", "wonder");
  EXPECT_EQ(EvaluateHtaccess(config, rec, passwords_),
            HtaccessDecision::kAllow);
  // Inside the network without credentials: allowed under Any.
  auto anon = MakeRec("128.9.1.2");
  EXPECT_EQ(EvaluateHtaccess(config, anon, passwords_),
            HtaccessDecision::kAllow);
  // Outside and no credentials: challenged.
  auto neither = MakeRec("4.4.4.4");
  EXPECT_EQ(EvaluateHtaccess(config, neither, passwords_),
            HtaccessDecision::kAuthRequired);
}

TEST_F(HtaccessTest, OrderAllowDenyDefaultsClosed) {
  auto config = ParseHtaccess("Order Allow,Deny\nAllow from 10.0.0.0/8\n")
                    .value();
  auto inside = MakeRec("10.1.2.3");
  auto outside = MakeRec("192.168.0.1");
  EXPECT_EQ(EvaluateHtaccess(config, inside, passwords_),
            HtaccessDecision::kAllow);
  EXPECT_EQ(EvaluateHtaccess(config, outside, passwords_),
            HtaccessDecision::kDeny);
}

TEST_F(HtaccessTest, OrderDenyAllowAllowOverridesDeny) {
  auto config = ParseHtaccess(
                    "Order Deny,Allow\nDeny from All\nAllow from 10.0.0.0/8\n")
                    .value();
  auto inside = MakeRec("10.1.2.3");
  auto outside = MakeRec("192.168.0.1");
  EXPECT_EQ(EvaluateHtaccess(config, inside, passwords_),
            HtaccessDecision::kAllow);
  EXPECT_EQ(EvaluateHtaccess(config, outside, passwords_),
            HtaccessDecision::kDeny);
}

TEST_F(HtaccessTest, RequireSpecificUsers) {
  auto config = ParseHtaccess(
                    "AuthType Basic\nAuthUserFile isi-staff\n"
                    "Require user bob carol\n")
                    .value();
  passwords_.GetOrCreate("isi-staff").SetUser("bob", "pw");
  auto bob = MakeRec("10.0.0.1", "bob", "pw");
  EXPECT_EQ(EvaluateHtaccess(config, bob, passwords_),
            HtaccessDecision::kAllow);
  // alice authenticates fine but is not listed.
  auto alice = MakeRec("10.0.0.1", "alice", "wonder");
  EXPECT_EQ(EvaluateHtaccess(config, alice, passwords_),
            HtaccessDecision::kAuthRequired);
}

TEST_F(HtaccessTest, EmptyConfigAllowsEveryone) {
  auto config = ParseHtaccess("").value();
  auto rec = MakeRec("1.2.3.4");
  EXPECT_EQ(EvaluateHtaccess(config, rec, passwords_),
            HtaccessDecision::kAllow);
}

TEST_F(HtaccessTest, MissingAuthUserFileChallengesForever) {
  auto config = ParseHtaccess(
                    "AuthType Basic\nAuthUserFile ghost\nRequire valid-user\n")
                    .value();
  auto rec = MakeRec("10.0.0.1", "alice", "wonder");
  EXPECT_EQ(EvaluateHtaccess(config, rec, passwords_),
            HtaccessDecision::kAuthRequired);
}

TEST(HtaccessParse, Errors) {
  EXPECT_FALSE(ParseHtaccess("Order sideways\n").ok());
  EXPECT_FALSE(ParseHtaccess("Deny to All\n").ok());
  EXPECT_FALSE(ParseHtaccess("Allow from not_an_ip!\n").ok());
  EXPECT_FALSE(ParseHtaccess("AuthType Digest\n").ok());
  EXPECT_FALSE(ParseHtaccess("Require group staff\n").ok());
  EXPECT_FALSE(ParseHtaccess("Satisfy Sometimes\n").ok());
  EXPECT_FALSE(ParseHtaccess("Bogus directive\n").ok());
}

TEST(HtaccessParse, OrderSpellings) {
  EXPECT_EQ(ParseHtaccess("Order Deny,Allow\n").value().order,
            AccessOrder::kDenyAllow);
  EXPECT_EQ(ParseHtaccess("Order Deny, Allow\n").value().order,
            AccessOrder::kDenyAllow);
  EXPECT_EQ(ParseHtaccess("order allow,deny\n").value().order,
            AccessOrder::kAllowDeny);
}

}  // namespace
}  // namespace gaa::http
