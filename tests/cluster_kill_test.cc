// Cluster supervision end-to-end (DESIGN.md §15): a fleet of shared-nothing
// server processes under a supervisor, exercised over real sockets.
//
// The headline invariants:
//   * kill-one-under-load — no request is answered 5xx by the surviving
//     fleet, no connection is refused (the supervisor's listener copies keep
//     the accept backlog alive across the respawn), and no *written* audit
//     record is lost: every per-process JSONL stream stays seq-contiguous
//     (an interior gap = a durably claimed record vanished).
//   * cross-process threat convergence — an attack detected in one process
//     raises the threat level in every process within two bus ticks, and a
//     respawned process replays the alert ring back to the fleet's level.
//   * rolling restart — every process replaced with zero refused
//     connections.
//
// This binary re-execs itself as the cluster children: main() routes
// through MaybeRunChildFromEnv before gtest ever initializes.
#include <gtest/gtest.h>
#include <dirent.h>
#include <signal.h>
#include <stdlib.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "audit/audit_stream.h"
#include "cluster/bus.h"
#include "cluster/cluster_server.h"
#include "cluster/supervisor.h"
#include "http/tcp_server.h"

namespace gaa::cluster {

constexpr int kChildTickMs = 25;

int TestChildMain(ChildContext& ctx) {
  ClusterChildOptions options;
  options.tick_interval_ms = kChildTickMs;
  options.tcp.worker_threads = 2;
  // The kill test counts connection deaths; keep-alive recycling after
  // 1000 requests would drown the signal.
  options.tcp.max_keepalive_requests = 1'000'000;
  // Per-(slot, pid) audit stream with fsync-per-record: what the file
  // claims to hold survives SIGKILL, so seq contiguity is a real
  // durability check, not a page-cache coincidence.
  options.web.audit_stream.path = ctx.payload + "/audit." +
                                  std::to_string(ctx.slot) + "." +
                                  std::to_string(::getpid()) + ".jsonl";
  options.web.audit_stream.fsync_each_write = true;
  options.web.audit_stream.rotate_bytes = 0;  // never rotate mid-test
  // One signature hit (severity 8 x confidence) must clear medium so a
  // single attack is enough to raise — and replicate — the level.
  options.web.threat.medium_score = 5.0;
  options.web.threat.high_score = 1000.0;
  // Benign anonymous GETs must be 200 so a 5xx (or a 403 from a collapsed
  // policy plane) is unambiguously a failure; /private stays denied so the
  // load mix generates audit records (grants are not audited per-request,
  // denials are — the seq-contiguity check needs a steady record stream).
  options.configure = [](web::GaaWebServer& web) {
    if (!web.SetLocalPolicy("/", "pos_access_right apache *\n").ok() ||
        !web.SetLocalPolicy("/private", "neg_access_right apache *\n").ok()) {
      std::fprintf(stderr, "cluster child: policy setup failed\n");
      ::_exit(4);
    }
  };
  return RunClusterChild(ctx, std::move(options));
}

namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/gaa_cluster_test_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir != nullptr ? dir : "/tmp";
}

SupervisorOptions BaseOptions(const std::string& audit_dir) {
  SupervisorOptions options;
  options.processes = 2;
  options.shards_per_process = 1;
  options.drain_deadline_ms = 2000;
  options.respawn_backoff_initial_ms = 50;
  options.child_payload = audit_dir;
  return options;
}

int StatusOf(const std::string& response) {
  // "HTTP/1.1 NNN ..."
  if (response.size() < 12) return -1;
  return std::atoi(response.substr(9, 3).c_str());
}

std::string GetRequest(const std::string& target) {
  return "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
}

/// Closed-loop load thread: keep-alive round trips, reconnecting after
/// connection errors (an in-flight request on a killed process dies with
/// it — that is a transport error, never a 5xx).
struct LoadResult {
  std::uint64_t ok = 0;
  std::uint64_t server_errors = 0;  // 5xx responses — must stay zero
  std::uint64_t disconnects = 0;    // transport errors (killed peer)
};

LoadResult RunLoad(std::uint16_t port, std::atomic<bool>* stop) {
  LoadResult result;
  auto client = std::make_unique<http::TcpClient>(port);
  std::uint64_t i = 0;
  while (!stop->load()) {
    if (!client->connected()) {
      ++result.disconnects;
      client = std::make_unique<http::TcpClient>(port);
      continue;
    }
    // Mostly benign 200s with a steady trickle of denied requests: denials
    // are what the audit stream records, and the seq-contiguity check
    // needs records flowing on every process when the kill lands.
    const char* target =
        (++i % 4 == 0) ? "/private/report.html" : "/index.html";
    auto response = client->RoundTrip(GetRequest(target));
    if (!response.ok()) {
      ++result.disconnects;
      client = std::make_unique<http::TcpClient>(port);
      continue;
    }
    const int status = StatusOf(response.value());
    if (status >= 500) {
      ++result.server_errors;
    } else {
      ++result.ok;
    }
  }
  return result;
}

/// Every audit stream in `dir` must be internally seq-contiguous: records
/// are stamped 1..N at enqueue time and written in order, so a *hole* in
/// the middle of a file means a record the writer durably claimed was
/// lost.  (Records still queued at SIGKILL truncate the tail — that is
/// backpressure, not loss.)
/// `min_files` is the coverage floor: closed-loop load over a handful of
/// keep-alive connections can legitimately hash every connection onto one
/// process (SO_REUSEPORT hashes the 4-tuple), leaving the other's stream
/// empty and uncreated — only tests driving many fresh connections may
/// demand one stream per process.
void ExpectAuditStreamsContiguous(const std::string& dir, int min_files) {
  int files = 0;
  std::uint64_t total_records = 0;
  for (int slot = 0; slot < 8; ++slot) {
    // Enumerate audit.<slot>.<pid>.jsonl without dirent gymnastics: ask the
    // shell-free way via the known prefix and glob over proc ids is not
    // possible, so scan the directory.
    std::string prefix = "audit." + std::to_string(slot) + ".";
    std::vector<std::string> paths;
    {
      DIR* d = ::opendir(dir.c_str());
      ASSERT_NE(d, nullptr);
      while (dirent* e = ::readdir(d)) {
        std::string name = e->d_name;
        if (name.rfind(prefix, 0) == 0) paths.push_back(dir + "/" + name);
      }
      ::closedir(d);
    }
    for (const std::string& path : paths) {
      ++files;
      std::ifstream in(path);
      std::stringstream buffer;
      buffer << in.rdbuf();
      auto records = audit::ParseAuditJsonl(buffer.str());
      ASSERT_TRUE(records.ok()) << path << ": " << records.error().message;
      std::vector<std::uint64_t> seqs;
      for (const auto& record : records.value()) {
        ASSERT_NE(record.seq, 0u) << path << ": unstamped record";
        seqs.push_back(record.seq);
      }
      std::sort(seqs.begin(), seqs.end());
      for (std::size_t i = 0; i < seqs.size(); ++i) {
        ASSERT_EQ(seqs[i], i + 1)
            << path << ": interior gap — a written audit record was lost";
      }
      total_records += seqs.size();
    }
  }
  EXPECT_GE(files, min_files);
  EXPECT_GT(total_records, 0u);
}

TEST(ClusterKill, BenignLoadServedByWholeFleet) {
  const std::string dir = MakeTempDir();
  Supervisor supervisor(BaseOptions(dir));
  auto started = supervisor.Start();
  ASSERT_TRUE(started.ok()) << started.error().message;

  for (int i = 0; i < 50; ++i) {
    auto response = http::TcpFetch(supervisor.port(),
                                   GetRequest("/index.html"));
    ASSERT_TRUE(response.ok()) << response.error().message;
    EXPECT_EQ(StatusOf(response.value()), 200);
    // Denied requests feed the audit streams (grants are not audited).
    auto denied = http::TcpFetch(supervisor.port(),
                                 GetRequest("/private/report.html"));
    ASSERT_TRUE(denied.ok());
    EXPECT_EQ(StatusOf(denied.value()), 403);
  }
  // Both slots live, each with a populated telemetry slab.
  const auto procs = supervisor.bus()->ViewProcesses();
  ASSERT_EQ(procs.size(), 2u);
  for (const auto& p : procs) {
    EXPECT_TRUE(p.live);
    EXPECT_GT(p.pid, 0);
  }
  supervisor.Stop();
  ExpectAuditStreamsContiguous(dir, /*min_files=*/2);
}

TEST(ClusterKill, StatusExposesClusterViews) {
  const std::string dir = MakeTempDir();
  Supervisor supervisor(BaseOptions(dir));
  ASSERT_TRUE(supervisor.Start().ok());

  auto prom = http::TcpFetch(supervisor.port(), GetRequest("/__status"));
  ASSERT_TRUE(prom.ok());
  // Every local series carries the process label; fleet meta-series and
  // the peer's slab (tagged with the other slot) ride along.
  EXPECT_NE(prom.value().find("process=\""), std::string::npos);
  EXPECT_NE(prom.value().find("gaa_cluster_process_up"), std::string::npos);
  EXPECT_NE(prom.value().find("gaa_cluster_threat_level"), std::string::npos);

  auto cluster = http::TcpFetch(supervisor.port(),
                                GetRequest("/__status/cluster"));
  ASSERT_TRUE(cluster.ok());
  EXPECT_EQ(StatusOf(cluster.value()), 200);
  EXPECT_NE(cluster.value().find("\"generation\":"), std::string::npos);
  EXPECT_NE(cluster.value().find("\"processes\":["), std::string::npos);
  EXPECT_NE(cluster.value().find("\"fleet\":{"), std::string::npos);

  auto json = http::TcpFetch(supervisor.port(),
                             GetRequest("/__status/metrics.json"));
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json.value().find("{\"process\":"), std::string::npos);

  supervisor.Stop();
}

TEST(ClusterKill, KillOneProcessUnderLoadLosesNothing) {
  const std::string dir = MakeTempDir();
  Supervisor supervisor(BaseOptions(dir));
  ASSERT_TRUE(supervisor.Start().ok());
  const pid_t old_pid = supervisor.pid_of(1);
  ASSERT_GT(old_pid, 0);

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  std::vector<LoadResult> results(4);
  for (std::size_t i = 0; i < results.size(); ++i) {
    threads.emplace_back([&, i] {
      results[i] = RunLoad(supervisor.port(), &stop);
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  supervisor.Kill(1, SIGKILL);

  // The reaper respawns the slot; the replacement claims the same bus slot
  // with a fresh incarnation and resumes accepting from the inherited
  // backlog.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (supervisor.pid_of(1) == old_pid ||
         !supervisor.bus()->ViewProcess(1).live) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "slot 1 did not respawn";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(supervisor.respawn_count(), 1u);
  EXPECT_EQ(supervisor.bus()->ViewProcess(1).incarnation, 2u);

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (auto& t : threads) t.join();

  std::uint64_t ok = 0, server_errors = 0, disconnects = 0;
  for (const auto& r : results) {
    ok += r.ok;
    server_errors += r.server_errors;
    disconnects += r.disconnects;
  }
  EXPECT_GT(ok, 100u) << "load never got going";
  // The dying process takes its in-flight connections with it (transport
  // errors), but the surviving fleet must never answer 5xx.
  EXPECT_EQ(server_errors, 0u);
  EXPECT_LE(disconnects, 2 * results.size() + 4)
      << "more connections died than the killed process held";

  supervisor.Stop();
  // Three streams now: slot 0, slot 1's killed pid, slot 1's replacement.
  ExpectAuditStreamsContiguous(dir, /*min_files=*/1);
}

TEST(ClusterKill, ThreatLevelConvergesAcrossProcesses) {
  const std::string dir = MakeTempDir();
  Supervisor supervisor(BaseOptions(dir));
  ASSERT_TRUE(supervisor.Start().ok());

  // Drive signature hits until some process detects (SO_REUSEPORT decides
  // who gets the connection), then require the *whole* fleet at >= medium.
  const auto t0 = std::chrono::steady_clock::now();
  auto first_raised = t0;
  bool raised = false;
  const auto deadline = t0 + std::chrono::seconds(10);
  int attempt = 0;
  while (!raised) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    auto response = http::TcpFetch(
        supervisor.port(),
        GetRequest("/cgi-bin/phf?attempt=" + std::to_string(attempt++)));
    ASSERT_TRUE(response.ok());
    for (const auto& p : supervisor.bus()->ViewProcesses()) {
      if (p.threat_level >= 1) {
        raised = true;
        first_raised = std::chrono::steady_clock::now();
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Convergence: every live process reports >= medium.  Budget: one bus
  // tick to drain + one tick of heartbeat publication lag per side, plus
  // timer-wheel granularity (32ms) — "within two tick intervals".
  bool converged = false;
  auto all_raised = first_raised;
  while (!converged) {
    ASSERT_LT(std::chrono::steady_clock::now(),
              first_raised + std::chrono::milliseconds(4 * kChildTickMs + 200))
        << "fleet did not converge within the tick budget";
    converged = true;
    for (const auto& p : supervisor.bus()->ViewProcesses()) {
      if (p.live && p.threat_level < 1) converged = false;
    }
    if (!converged) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    } else {
      all_raised = std::chrono::steady_clock::now();
    }
  }
  const auto lag_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          all_raised - first_raised)
                          .count();
  // The hard acceptance bound: visible fleet-wide within 2 tick intervals
  // (heartbeat granularity adds up to 2 more observation ticks + wheel
  // slack, all inside the deadline asserted above).
  RecordProperty("threat_convergence_ms", static_cast<int>(lag_ms));

  // The threat cell carries the authoritative level for late joiners.
  EXPECT_GE(supervisor.bus()->ReadThreat().level, 1);

  supervisor.Stop();
}

TEST(ClusterKill, RespawnedProcessReplaysFleetThreat) {
  const std::string dir = MakeTempDir();
  Supervisor supervisor(BaseOptions(dir));
  ASSERT_TRUE(supervisor.Start().ok());

  // Raise the fleet to >= medium.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  int attempt = 0;
  while (supervisor.bus()->ReadThreat().level < 1) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    auto response = http::TcpFetch(
        supervisor.port(),
        GetRequest("/cgi-bin/phf?x=" + std::to_string(attempt++)));
    ASSERT_TRUE(response.ok());
  }

  // Kill slot 0; its replacement must *replay* the alert ring and come up
  // already converged — threat history survives process death.
  const pid_t old_pid = supervisor.pid_of(0);
  supervisor.Kill(0, SIGKILL);
  const auto respawn_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (supervisor.pid_of(0) == old_pid ||
         !supervisor.bus()->ViewProcess(0).live) {
    ASSERT_LT(std::chrono::steady_clock::now(), respawn_deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const auto converge_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(4 * kChildTickMs + 500);
  while (supervisor.bus()->ViewProcess(0).threat_level < 1) {
    ASSERT_LT(std::chrono::steady_clock::now(), converge_deadline)
        << "respawned process never replayed the fleet threat level";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  supervisor.Stop();
}

TEST(ClusterKill, RollingRestartRefusesNoConnections) {
  const std::string dir = MakeTempDir();
  Supervisor supervisor(BaseOptions(dir));
  ASSERT_TRUE(supervisor.Start().ok());
  const pid_t pid0 = supervisor.pid_of(0);
  const pid_t pid1 = supervisor.pid_of(1);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> refused{0};
  std::atomic<std::uint64_t> ok{0};
  std::thread prober([&] {
    // Fresh connection per request: every probe exercises accept, which is
    // exactly what a restart gap would refuse.  The denial mix keeps audit
    // records flowing through every incarnation's stream.
    std::uint64_t i = 0;
    while (!stop.load()) {
      const char* target =
          (++i % 4 == 0) ? "/private/report.html" : "/index.html";
      auto response = http::TcpFetch(supervisor.port(), GetRequest(target));
      const int status = response.ok() ? StatusOf(response.value()) : -1;
      if (status == 200 || status == 403) {
        ok.fetch_add(1);
      } else {
        refused.fetch_add(1);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  auto restarted = supervisor.RollingRestart();
  stop.store(true);
  prober.join();
  ASSERT_TRUE(restarted.ok()) << restarted.error().message;

  EXPECT_NE(supervisor.pid_of(0), pid0);
  EXPECT_NE(supervisor.pid_of(1), pid1);
  EXPECT_EQ(supervisor.bus()->ViewProcess(0).incarnation, 2u);
  EXPECT_EQ(supervisor.bus()->ViewProcess(1).incarnation, 2u);
  EXPECT_GT(ok.load(), 0u);
  EXPECT_EQ(refused.load(), 0u)
      << "a connection was refused during the rolling restart";

  supervisor.Stop();
  ExpectAuditStreamsContiguous(dir, /*min_files=*/1);
}

// A failed Start must leave no processes behind: children that spawned
// before the failure are terminated and reaped, and the listeners are
// closed — otherwise orphans keep serving on the port with running_ still
// false, beyond the reach of Stop() and the destructor.
TEST(ClusterKill, FailedStartLeavesNoOrphanChildren) {
  SupervisorOptions options;
  options.processes = 2;
  options.shards_per_process = 1;
  // A child that never claims its bus slot: Start spawns both, then times
  // out in WaitSlotLive and must clean up.
  options.exec_path = "/bin/sh";
  options.exec_args = {"-c", "sleep 30"};
  options.child_ready_timeout_ms = 250;
  options.stop_grace_ms = 2000;  // sh dies on the SIGTERM, well within this
  Supervisor supervisor(options);
  ASSERT_FALSE(supervisor.Start().ok());
  EXPECT_EQ(supervisor.pid_of(0), -1);
  EXPECT_EQ(supervisor.pid_of(1), -1);
  // Every spawned child was reaped: this test process has no children
  // left at all.
  int status = 0;
  errno = 0;
  EXPECT_EQ(::waitpid(-1, &status, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
}

TEST(ClusterKill, StopDrainsAndMarksSlotsExited) {
  const std::string dir = MakeTempDir();
  Supervisor supervisor(BaseOptions(dir));
  ASSERT_TRUE(supervisor.Start().ok());
  ASSERT_TRUE(http::TcpFetch(supervisor.port(), GetRequest("/")).ok());
  supervisor.Stop();
  for (const auto& p : supervisor.bus()->ViewProcesses()) {
    EXPECT_FALSE(p.live);
  }
  // Idempotent.
  supervisor.Stop();
}

}  // namespace
}  // namespace gaa::cluster

int main(int argc, char** argv) {
  // Cluster children re-enter this binary; route them to the child main
  // before gtest sees the process.
  gaa::cluster::MaybeRunChildFromEnv(gaa::cluster::TestChildMain);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
