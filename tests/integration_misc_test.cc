// Cross-cutting integration tests: policy cache behaviour under attack
// response, notification latency showing up in request handling, mixed
// workload end-to-end, and failure injection.
#include <gtest/gtest.h>

#include "http/doc_tree.h"
#include "integration/gaa_web_server.h"
#include "workload/trace.h"

namespace gaa::web {
namespace {

using http::StatusCode;

GaaWebServer::Options TestOptions() {
  GaaWebServer::Options options;
  options.notification_latency_us = 0;
  return options;
}

TEST(PolicyCacheIntegration, HitsAccumulateAndInvalidateOnChange) {
  // Compiled engine (the default): repeated identical requests are served
  // from the decision memo cache, and a policy rewrite — the snapshot swap
  // bumps the store version baked into every memo key — invalidates all
  // cached decisions at once.
  GaaWebServer server(http::DocTree::DemoSite(), TestOptions());
  ASSERT_TRUE(server.SetLocalPolicy("/", "pos_access_right apache *\n").ok());

  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(server.Get("/index.html", "10.0.0.1").status, StatusCode::kOk);
  }
  EXPECT_GE(server.api().decision_cache().hits(), 9u);

  // The attack response rewrites policy; the very next request must see it.
  ASSERT_TRUE(server.SetLocalPolicy("/", "neg_access_right apache *\n").ok());
  EXPECT_EQ(server.Get("/index.html", "10.0.0.1").status,
            StatusCode::kForbidden);

  // The interpreted pipeline's LRU cache behaves the same way.
  GaaWebServer::Options lru = TestOptions();
  lru.enable_compiled_engine = false;
  lru.enable_policy_cache = true;
  GaaWebServer interp(http::DocTree::DemoSite(), lru);
  ASSERT_TRUE(interp.SetLocalPolicy("/", "pos_access_right apache *\n").ok());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(interp.Get("/index.html", "10.0.0.1").status, StatusCode::kOk);
  }
  EXPECT_GE(interp.api().cache().hits(), 9u);
  ASSERT_TRUE(interp.SetLocalPolicy("/", "neg_access_right apache *\n").ok());
  EXPECT_EQ(interp.Get("/index.html", "10.0.0.1").status,
            StatusCode::kForbidden);
}

TEST(NotificationLatency, ShowsUpInSimulatedTime) {
  // The paper's §8 effect in miniature: with synchronous notification, the
  // request path carries the delivery latency.
  GaaWebServer::Options options;
  options.notification_latency_us = 47'000;
  GaaWebServer server(http::DocTree::DemoSite(), options);
  ASSERT_TRUE(server
                  .SetLocalPolicy("/", R"(
neg_access_right apache *
pre_cond_regex gnu *phf*
rr_cond_notify local on:failure/sysadmin/info:cgiexploit
pos_access_right apache *
)")
                  .ok());
  auto t0 = server.sim_clock()->Now();
  server.Get("/index.html", "10.0.0.1");  // benign: no notification
  EXPECT_EQ(server.sim_clock()->Now(), t0);
  server.Get("/cgi-bin/phf?x", "203.0.113.9");  // attack: notify
  EXPECT_EQ(server.sim_clock()->Now(), t0 + 47'000);
}

TEST(FailureInjection, NotificationFailureDegradesToDeny) {
  // rr_cond_notify on a *granting* entry: if notification is down, the
  // grant degrades to deny (conjunction semantics) — fail closed.
  GaaWebServer server(http::DocTree::DemoSite(), TestOptions());
  ASSERT_TRUE(server
                  .SetLocalPolicy("/", R"(
pos_access_right apache *
rr_cond_notify local on:success/sysadmin/info:grantlog
)")
                  .ok());
  EXPECT_EQ(server.Get("/index.html", "10.0.0.1").status, StatusCode::kOk);
  server.notifier().SetFailing(true);
  EXPECT_EQ(server.Get("/index.html", "10.0.0.1").status,
            StatusCode::kForbidden);
  server.notifier().SetFailing(false);
  EXPECT_EQ(server.Get("/index.html", "10.0.0.1").status, StatusCode::kOk);
}

TEST(MixedWorkload, EndToEndCountsAreConsistent) {
  GaaWebServer server(http::DocTree::DemoSite(), TestOptions());
  server.AddUser("alice", "wonder");
  ASSERT_TRUE(server
                  .AddSystemPolicy(R"(
eacl_mode 1
neg_access_right * *
pre_cond_accessid GROUP local BadGuys
)")
                  .ok());
  ASSERT_TRUE(server
                  .SetLocalPolicy("/", R"(
neg_access_right apache *
pre_cond_regex gnu *phf* *test-cgi* *%* *///////////////////*
rr_cond_update_log local on:failure/BadGuys/info:ip
neg_access_right apache *
pre_cond_expr local cgi_input_length >1000
rr_cond_update_log local on:failure/BadGuys/info:ip
pos_access_right apache *
)")
                  .ok());

  workload::TraceOptions trace_options;
  trace_options.count = 500;
  trace_options.attack_fraction = 0.2;
  trace_options.seed = 7;
  workload::TraceGenerator gen(trace_options);
  auto trace = gen.Generate();

  std::size_t attacks = 0;
  std::size_t benign = 0;
  std::size_t benign_denied = 0;
  for (const auto& request : trace) {
    auto response = server.HandleText(request.raw, request.client_ip);
    if (workload::IsAttackKind(request.kind)) {
      ++attacks;
    } else {
      ++benign;
      if (response.status == StatusCode::kForbidden) ++benign_denied;
    }
  }
  ASSERT_GT(attacks, 0u);
  ASSERT_GT(benign, 0u);
  // Benign traffic from the 10/8 pool is never caught by the signatures;
  // all its sources stay off the blacklist.
  EXPECT_EQ(benign_denied, 0u);
  // Attacker hosts got blacklisted.
  EXPECT_GT(server.state().GroupSize("BadGuys"), 0u);
  // Every signature hit produced an IDS report.
  EXPECT_GT(server.ids().CountKind(core::ReportKind::kDetectedAttack), 0u);
  // The server kept serving throughout.
  EXPECT_EQ(server.server().requests_served(), trace.size());
}

TEST(AnomalyIntegration, ProfilesBuildFromLegitimateReports) {
  // §9 future work, wired: legitimate-pattern reports feed the anomaly
  // detector's profiles; an outlier request then scores high.
  GaaWebServer::Options options = TestOptions();
  options.controller.report_legitimate_patterns = true;
  GaaWebServer server(http::DocTree::DemoSite(), options);
  ASSERT_TRUE(server.SetLocalPolicy("/", "pos_access_right apache *\n").ok());

  auto& anomaly = server.ids().anomaly();
  server.ids().bus().Subscribe(
      {"gaa.report.legitimate_pattern", 0}, [&](const ids::Event&) {});

  for (int i = 0; i < 30; ++i) {
    server.Get("/index.html", "10.0.0.7");
    ids::RequestFeatures f;
    f.principal = "10.0.0.7";
    f.path = "/index.html";
    f.query_length = 0;
    f.url_depth = 1;
    anomaly.Train(f);
    server.sim_clock()->Advance(util::kMicrosPerSecond);
  }
  ids::RequestFeatures outlier;
  outlier.principal = "10.0.0.7";
  outlier.path = "/cgi-bin/phf";
  outlier.query_length = 1500;
  outlier.url_depth = 2;
  EXPECT_TRUE(anomaly.IsAnomalous(outlier));
}

TEST(MultiplePolicies, DeepDirectoryChainsCompose) {
  GaaWebServer server(http::DocTree::DemoSite(), TestOptions());
  server.AddUser("alice", "wonder");
  ASSERT_TRUE(server.SetLocalPolicy("/", "pos_access_right apache *\n").ok());
  ASSERT_TRUE(server
                  .SetLocalPolicy("/private", R"(
pos_access_right apache *
pre_cond_accessid USER apache *
)")
                  .ok());
  ASSERT_TRUE(server
                  .SetLocalPolicy("/private/logs", R"(
pos_access_right apache *
pre_cond_accessid USER apache alice
)")
                  .ok());
  // Public page: anonymous fine.
  EXPECT_EQ(server.Get("/index.html", "10.0.0.1").status, StatusCode::kOk);
  // /private: any authenticated user.
  EXPECT_EQ(server.Get("/private/report.html", "10.0.0.1").status,
            StatusCode::kUnauthorized);
  EXPECT_EQ(server
                .Get("/private/report.html", "10.0.0.1",
                     std::make_pair(std::string("alice"),
                                    std::string("wonder")))
                .status,
            StatusCode::kOk);
  // /private/logs: alice only (all three policies conjoin).
  EXPECT_EQ(server
                .Get("/private/logs/system.log", "10.0.0.1",
                     std::make_pair(std::string("alice"),
                                    std::string("wonder")))
                .status,
            StatusCode::kOk);
}

}  // namespace
}  // namespace gaa::web
