// Decision attribution: every YES / NO / MAYBE answer names the policy,
// entry index and condition that produced it, and the per-entry counters +
// per-condition latency histograms land in the metric registry.
#include <gtest/gtest.h>

#include "gaa/api.h"
#include "telemetry/metrics.h"
#include "testing/helpers.h"

namespace gaa::core {
namespace {

using gaa::testing::MakeContext;
using gaa::testing::TestRig;
using util::Tristate;

class AttributionTest : public ::testing::Test {
 protected:
  AttributionTest() : api_(&store_, WireMetrics()) {
    api_.registry().Register(
        "pre_cond_true", "*",
        [](const eacl::Condition&, const RequestContext&, EvalServices&) {
          return EvalOutcome::Yes();
        });
    api_.registry().Register(
        "pre_cond_false", "*",
        [](const eacl::Condition&, const RequestContext&, EvalServices&) {
          return EvalOutcome::No();
        });
    api_.registry().Register(
        "rr_cond_fail", "*",
        [](const eacl::Condition&, const RequestContext&, EvalServices&) {
          return EvalOutcome::No("action failed");
        });
  }

  EvalServices WireMetrics() {
    EvalServices services = rig_.services;
    services.metrics = &registry_;
    return services;
  }

  AuthzResult Check(const std::string& system_text,
                    const std::string& local_text,
                    const std::string& op = "GET") {
    store_.Clear();
    if (!system_text.empty()) {
      auto r = store_.AddSystemPolicy(system_text);
      EXPECT_TRUE(r.ok()) << r.error().ToString();
    }
    if (!local_text.empty()) {
      auto r = store_.SetLocalPolicy("/", local_text);
      EXPECT_TRUE(r.ok()) << r.error().ToString();
    }
    ctx_ = MakeContext("10.0.0.1", "/x", op);
    return api_.Authorize("/x", RequestedRight{"apache", op}, ctx_);
  }

  std::uint64_t EntryCount(const std::string& policy, int entry,
                           const std::string& outcome) {
    return registry_
        .GetCounter("eacl_entry_decisions_total",
                    "policy=\"" + policy + "\",entry=\"" +
                        std::to_string(entry) + "\",outcome=\"" + outcome +
                        "\"")
        ->Value();
  }

  TestRig rig_;
  telemetry::MetricRegistry registry_;
  PolicyStore store_;
  GaaApi api_;
  RequestContext ctx_;
};

TEST_F(AttributionTest, GrantNamesEntryAndPolicy) {
  auto authz = Check("", "pos_access_right apache *\n");
  EXPECT_EQ(authz.status, Tristate::kYes);
  ASSERT_TRUE(authz.attribution.has_value());
  EXPECT_EQ(authz.attribution->policy, "local:/");
  EXPECT_EQ(authz.attribution->entry, 0);
  EXPECT_EQ(authz.attribution->condition, "");  // the right itself decided
  EXPECT_EQ(authz.attribution->status, Tristate::kYes);
  EXPECT_EQ(EntryCount("local:/", 0, "yes"), 1u);
}

TEST_F(AttributionTest, DenyBySecondEntryNamesIt) {
  auto authz = Check("",
                     "pos_access_right apache POST\n"
                     "neg_access_right apache *\n");
  EXPECT_EQ(authz.status, Tristate::kNo);
  ASSERT_TRUE(authz.attribution.has_value());
  EXPECT_EQ(authz.attribution->entry, 1);
  EXPECT_EQ(EntryCount("local:/", 1, "no"), 1u);
}

TEST_F(AttributionTest, SkippedEntryCountsAsMissAndScanContinues) {
  auto authz = Check("",
                     "neg_access_right apache *\n"
                     "pre_cond_false local x\n"
                     "pos_access_right apache *\n");
  EXPECT_EQ(authz.status, Tristate::kYes);
  ASSERT_TRUE(authz.attribution.has_value());
  EXPECT_EQ(authz.attribution->entry, 1);
  EXPECT_EQ(EntryCount("local:/", 0, "miss"), 1u);
  EXPECT_EQ(EntryCount("local:/", 1, "yes"), 1u);
}

TEST_F(AttributionTest, MaybeNamesTheUnevaluatedCondition) {
  auto authz = Check("",
                     "pos_access_right apache *\n"
                     "pre_cond_never_registered local x\n");
  EXPECT_EQ(authz.status, Tristate::kMaybe);
  ASSERT_TRUE(authz.attribution.has_value());
  EXPECT_EQ(authz.attribution->entry, 0);
  EXPECT_EQ(authz.attribution->condition, "pre_cond_never_registered");
  EXPECT_EQ(EntryCount("local:/", 0, "maybe"), 1u);
}

TEST_F(AttributionTest, RequestResultFailureNamesTheRrCondition) {
  auto authz = Check("",
                     "pos_access_right apache *\n"
                     "pre_cond_true local x\n"
                     "rr_cond_fail local y\n");
  EXPECT_EQ(authz.status, Tristate::kNo);
  ASSERT_TRUE(authz.attribution.has_value());
  EXPECT_EQ(authz.attribution->condition, "rr_cond_fail");
}

TEST_F(AttributionTest, SystemPolicyNamedByIndexLocalByPrefix) {
  auto authz = Check("neg_access_right apache *\n", "");
  EXPECT_EQ(authz.status, Tristate::kNo);
  ASSERT_TRUE(authz.attribution.has_value());
  EXPECT_EQ(authz.attribution->policy, "system#0");
}

TEST_F(AttributionTest, AttributionFollowsTheSideThatDecided) {
  // System grants, local denies; narrow composition denies — attribution
  // must point at the local entry, not the system grant.
  auto authz = Check("pos_access_right apache *\n",
                     "neg_access_right apache *\n");
  EXPECT_EQ(authz.status, Tristate::kNo);
  ASSERT_TRUE(authz.attribution.has_value());
  EXPECT_EQ(authz.attribution->policy, "local:/");
  EXPECT_EQ(authz.attribution->entry, 0);
}

TEST_F(AttributionTest, ConditionLatencyHistogramFills) {
  Check("", "pos_access_right apache *\npre_cond_true local x\n");
  bool found = false;
  for (const auto& entry : registry_.List()) {
    if (entry.name == "gaa_cond_eval_us" &&
        entry.labels.find("pre_cond_true") != std::string::npos) {
      found = true;
      EXPECT_GE(entry.histogram->Count(), 1u);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(AttributionTest, DetachedMetricsStillAttribute) {
  // Without a registry the counters are skipped but the attribution on the
  // result must still be populated (the audit stream depends on it).
  GaaApi bare(&store_, rig_.services);
  store_.Clear();
  ASSERT_TRUE(store_.SetLocalPolicy("/", "neg_access_right apache *\n").ok());
  auto ctx = MakeContext("10.0.0.1", "/x", "GET");
  auto authz = bare.Authorize("/x", RequestedRight{"apache", "GET"}, ctx);
  EXPECT_EQ(authz.status, Tristate::kNo);
  ASSERT_TRUE(authz.attribution.has_value());
  EXPECT_EQ(authz.attribution->policy, "local:/");
}

}  // namespace
}  // namespace gaa::core
