// Scenario test: §7.1 "Network Lockdown".
//
// System-wide (narrow):   no access at all when threat level is high.
// Local:                  authentication required when threat level > low;
//                         anonymous access otherwise.
#include <gtest/gtest.h>

#include "http/doc_tree.h"
#include "integration/gaa_web_server.h"

namespace gaa::web {
namespace {

using core::ThreatLevel;
using http::StatusCode;

constexpr const char* kSystemPolicy = R"(
eacl_mode 1            # narrow: mandatory lockdown cannot be bypassed locally
neg_access_right * *
pre_cond_system_threat_level local =high
)";

constexpr const char* kLocalPolicy = R"(
# Entry 1: when the threat level is above low, require authentication.
pos_access_right apache *
pre_cond_system_threat_level local >low
pre_cond_accessid USER apache *
# Entry 2: normal operation, anonymous access.
pos_access_right apache *
pre_cond_system_threat_level local =low
)";

class LockdownTest : public ::testing::Test {
 protected:
  LockdownTest() : server_(http::DocTree::DemoSite()) {
    server_.AddUser("alice", "wonder");
    EXPECT_TRUE(server_.AddSystemPolicy(kSystemPolicy).ok());
    EXPECT_TRUE(server_.SetLocalPolicy("/", kLocalPolicy).ok());
  }

  GaaWebServer server_;
};

TEST_F(LockdownTest, LowThreatAllowsAnonymous) {
  server_.state().SetThreatLevel(ThreatLevel::kLow);
  auto response = server_.Get("/index.html", "10.0.0.1");
  EXPECT_EQ(response.status, StatusCode::kOk);
}

TEST_F(LockdownTest, MediumThreatChallengesAnonymous) {
  server_.state().SetThreatLevel(ThreatLevel::kMedium);
  auto response = server_.Get("/index.html", "10.0.0.1");
  EXPECT_EQ(response.status, StatusCode::kUnauthorized);
  EXPECT_NE(response.headers.at("WWW-Authenticate").find("Basic"),
            std::string::npos);
}

TEST_F(LockdownTest, MediumThreatAllowsAuthenticated) {
  server_.state().SetThreatLevel(ThreatLevel::kMedium);
  auto response = server_.Get("/index.html", "10.0.0.1",
                              std::make_pair(std::string("alice"),
                                             std::string("wonder")));
  EXPECT_EQ(response.status, StatusCode::kOk);
}

TEST_F(LockdownTest, MediumThreatRejectsWrongPassword) {
  server_.state().SetThreatLevel(ThreatLevel::kMedium);
  auto response = server_.Get("/index.html", "10.0.0.1",
                              std::make_pair(std::string("alice"),
                                             std::string("guess")));
  // Invalid credentials leave the identity condition unevaluated: challenge.
  EXPECT_EQ(response.status, StatusCode::kUnauthorized);
}

TEST_F(LockdownTest, HighThreatDeniesEvenAuthenticated) {
  server_.state().SetThreatLevel(ThreatLevel::kHigh);
  auto anon = server_.Get("/index.html", "10.0.0.1");
  EXPECT_EQ(anon.status, StatusCode::kForbidden);
  auto authed = server_.Get("/index.html", "10.0.0.1",
                            std::make_pair(std::string("alice"),
                                           std::string("wonder")));
  EXPECT_EQ(authed.status, StatusCode::kForbidden);
}

TEST_F(LockdownTest, ThreatDropReopensTheSystem) {
  server_.state().SetThreatLevel(ThreatLevel::kHigh);
  EXPECT_EQ(server_.Get("/index.html", "10.0.0.1").status,
            StatusCode::kForbidden);
  server_.state().SetThreatLevel(ThreatLevel::kLow);
  EXPECT_EQ(server_.Get("/index.html", "10.0.0.1").status, StatusCode::kOk);
}

TEST_F(LockdownTest, FullCycleDrivenByIds) {
  // Drive the transition through the IDS rather than by force: a burst of
  // detected attacks escalates, quiet time decays.
  auto& ids = server_.ids();
  ASSERT_EQ(server_.state().threat_level(), ThreatLevel::kLow);
  EXPECT_EQ(server_.Get("/index.html", "10.0.0.1").status, StatusCode::kOk);

  core::IdsReport attack;
  attack.kind = core::ReportKind::kDetectedAttack;
  attack.severity = 8;
  attack.confidence = 1.0;
  attack.source_ip = "203.0.113.9";
  ids.Report(attack);
  ids.Report(attack);
  ASSERT_GE(static_cast<int>(server_.state().threat_level()),
            static_cast<int>(ThreatLevel::kMedium));
  EXPECT_EQ(server_.Get("/index.html", "10.0.0.1").status,
            StatusCode::kUnauthorized);

  // Long quiet period: decay back towards low (one notch per period).
  server_.sim_clock()->Advance(10LL * 60 * util::kMicrosPerSecond);
  ids.threat().Tick();
  server_.sim_clock()->Advance(10LL * 60 * util::kMicrosPerSecond);
  ids.threat().Tick();
  EXPECT_EQ(server_.state().threat_level(), ThreatLevel::kLow);
  EXPECT_EQ(server_.Get("/index.html", "10.0.0.1").status, StatusCode::kOk);
}

}  // namespace
}  // namespace gaa::web
