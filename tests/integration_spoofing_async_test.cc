// Tests for the §3 spoofing-aware response and the asynchronous
// notification option.
#include <gtest/gtest.h>

#include "conditions/builtin.h"
#include "http/doc_tree.h"
#include "integration/gaa_web_server.h"
#include "testing/helpers.h"

namespace gaa::web {
namespace {

using http::StatusCode;

GaaWebServer::Options TestOptions() {
  GaaWebServer::Options options;
  options.notification_latency_us = 0;
  return options;
}

TEST(SpoofingCondition, CleanVsSuspected) {
  gaa::testing::TestRig rig;
  auto routine = cond::MakeSpoofingRoutine({});
  auto ctx = gaa::testing::MakeContext("203.0.113.9");
  auto clean_cond =
      gaa::testing::MakeCond("pre_cond_spoofing", "local", "clean");
  auto suspected_cond =
      gaa::testing::MakeCond("pre_cond_spoofing", "local", "suspected");

  EXPECT_EQ(routine(clean_cond, ctx, rig.services).status,
            util::Tristate::kYes);
  EXPECT_EQ(routine(suspected_cond, ctx, rig.services).status,
            util::Tristate::kNo);

  rig.ids.spoofed.push_back("203.0.113.9");
  EXPECT_EQ(routine(clean_cond, ctx, rig.services).status,
            util::Tristate::kNo);
  EXPECT_EQ(routine(suspected_cond, ctx, rig.services).status,
            util::Tristate::kYes);
}

TEST(SpoofingCondition, NoIdsMeansUnevaluated) {
  core::EvalServices bare;
  auto routine = cond::MakeSpoofingRoutine({});
  auto ctx = gaa::testing::MakeContext();
  auto out = routine(gaa::testing::MakeCond("pre_cond_spoofing", "local",
                                            "clean"),
                     ctx, bare);
  EXPECT_FALSE(out.evaluated);
}

TEST(SpoofingGuard, BlacklistUpdateSkipsSpoofedSources) {
  // §1: "an automated response to attacks can be used by an intruder in
  // order to stage a DoS (the intruder could have impersonated a host)".
  // With check_spoofing=true the blacklist update consults the network IDS
  // and refuses to blacklist a suspected-spoofed source.
  gaa::testing::TestRig rig;
  auto guarded = cond::MakeUpdateLogRoutine({{"check_spoofing", "true"}});
  auto cond_val = gaa::testing::MakeCond("rr_cond_update_log", "local",
                                         "on:failure/BadGuys/info:ip");

  rig.ids.spoofed.push_back("10.0.0.42");  // the impersonated victim
  auto victim = gaa::testing::MakeContext("10.0.0.42");
  victim.request_granted = false;
  auto out = guarded(cond_val, victim, rig.services);
  EXPECT_EQ(out.status, util::Tristate::kYes);  // action succeeds (no-op)
  EXPECT_FALSE(rig.state.GroupContains("BadGuys", "10.0.0.42"));
  // The skip is audited for the administrator's review.
  EXPECT_EQ(rig.audit.CountCategory("blacklist"), 1u);

  // A genuinely-attacking source is still blacklisted.
  auto attacker = gaa::testing::MakeContext("203.0.113.9");
  attacker.request_granted = false;
  guarded(cond_val, attacker, rig.services);
  EXPECT_TRUE(rig.state.GroupContains("BadGuys", "203.0.113.9"));
}

TEST(SpoofingGuard, UnguardedUpdateStillBlacklists) {
  gaa::testing::TestRig rig;
  auto unguarded = cond::MakeUpdateLogRoutine({});
  rig.ids.spoofed.push_back("10.0.0.42");
  auto ctx = gaa::testing::MakeContext("10.0.0.42");
  ctx.request_granted = false;
  unguarded(gaa::testing::MakeCond("rr_cond_update_log", "local",
                                   "on:failure/BadGuys/info:ip"),
            ctx, rig.services);
  EXPECT_TRUE(rig.state.GroupContains("BadGuys", "10.0.0.42"));
}

TEST(SpoofingGuard, EndToEndThroughPolicy) {
  // Bind a guarded update_log via the configuration file and run the §7.2
  // policy: a spoofed source triggers the signature but never lands on the
  // blacklist, so its *next* (benign) request is served.
  GaaWebServer::Options options = TestOptions();
  options.extra_config =
      "condition rr_cond_update_log local builtin:update_log "
      "check_spoofing=true\n";
  GaaWebServer server(http::DocTree::DemoSite(), options);
  ASSERT_TRUE(server
                  .AddSystemPolicy(R"(
eacl_mode 1
neg_access_right * *
pre_cond_accessid GROUP local BadGuys
)")
                  .ok());
  ASSERT_TRUE(server
                  .SetLocalPolicy("/", R"(
neg_access_right apache *
pre_cond_regex gnu *phf*
rr_cond_update_log local on:failure/BadGuys/info:ip
pos_access_right apache *
)")
                  .ok());
  server.ids().MarkSpoofedSource("10.0.0.42");

  // Attack "from" the spoofed victim address: denied, but NOT blacklisted.
  EXPECT_EQ(server.Get("/cgi-bin/phf?x", "10.0.0.42").status,
            StatusCode::kForbidden);
  EXPECT_FALSE(server.state().GroupContains("BadGuys", "10.0.0.42"));
  EXPECT_EQ(server.Get("/index.html", "10.0.0.42").status, StatusCode::kOk);

  // The same attack from a non-spoofed source blacklists as usual.
  EXPECT_EQ(server.Get("/cgi-bin/phf?x", "203.0.113.9").status,
            StatusCode::kForbidden);
  EXPECT_TRUE(server.state().GroupContains("BadGuys", "203.0.113.9"));
  EXPECT_EQ(server.Get("/index.html", "203.0.113.9").status,
            StatusCode::kForbidden);
}

TEST(AsyncNotification, QueuedDeliveryOffRequestPath) {
  GaaWebServer::Options options;
  options.use_real_clock = true;  // queued notifier needs a real worker
  options.notification_latency_us = 2000;
  options.asynchronous_notification = true;
  GaaWebServer server(http::DocTree::DemoSite(), options);
  ASSERT_TRUE(server
                  .SetLocalPolicy("/", R"(
neg_access_right apache *
pre_cond_regex gnu *phf*
rr_cond_notify local on:failure/sysadmin/info:attack
pos_access_right apache *
)")
                  .ok());
  ASSERT_NE(server.queued_notifier(), nullptr);

  util::Stopwatch watch;
  auto response = server.Get("/cgi-bin/phf?x", "203.0.113.9");
  double request_ms = watch.ElapsedMs();
  EXPECT_EQ(response.status, StatusCode::kForbidden);
  // The request did not block on the 2 ms delivery.
  EXPECT_LT(request_ms, 1.5);
  server.queued_notifier()->Flush();
  EXPECT_EQ(server.queued_notifier()->delivered_count(), 1u);
}

}  // namespace
}  // namespace gaa::web
