// Robustness / fuzz-lite tests: hostile bytes into every parser must yield
// a clean error (or a valid parse), never a crash, hang or unbounded
// memory — the front line of a security component.
#include <gtest/gtest.h>

#include "eacl/parser.h"
#include "eacl/printer.h"
#include "http/request.h"
#include "ids/log_monitor.h"
#include "integration/gaa_web_server.h"
#include "util/rng.h"
#include "util/strings.h"

namespace gaa {
namespace {

std::string RandomBytes(util::Rng& rng, std::size_t max_len) {
  std::string out;
  std::size_t len = rng.NextBelow(max_len + 1);
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>(rng.NextBelow(256)));
  }
  return out;
}

std::string RandomTextish(util::Rng& rng, std::size_t max_len) {
  static const char alphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789 _*%/?.:-\n\r\t\"\\#=<>";
  std::string out;
  std::size_t len = rng.NextBelow(max_len + 1);
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(alphabet[rng.NextBelow(sizeof(alphabet) - 1)]);
  }
  return out;
}

class Robustness : public ::testing::TestWithParam<int> {};

TEST_P(Robustness, EaclParserNeverCrashes) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    std::string text = i % 2 == 0 ? RandomBytes(rng, 400)
                                  : RandomTextish(rng, 400);
    auto result = eacl::ParseEacl(text);
    if (result.ok()) {
      // Whatever parsed must survive validation or fail cleanly, and
      // print→parse must round-trip.
      auto printed = eacl::ParseEacl(eacl::PrintEacl(result.value()));
      EXPECT_TRUE(printed.ok());
    }
  }
}

TEST_P(Robustness, HttpParserNeverCrashes) {
  util::Rng rng(GetParam() + 1000);
  for (int i = 0; i < 300; ++i) {
    std::string text = i % 2 == 0 ? RandomBytes(rng, 600)
                                  : RandomTextish(rng, 600);
    auto result = http::ParseRequest(text);
    if (!result.ok()) {
      EXPECT_NE(result.defect, http::RequestDefect::kNone);
    }
  }
}

TEST_P(Robustness, ClfParserNeverCrashes) {
  util::Rng rng(GetParam() + 2000);
  ids::LogMonitor monitor;
  for (int i = 0; i < 300; ++i) {
    std::string line = i % 2 == 0 ? RandomBytes(rng, 300)
                                  : RandomTextish(rng, 300);
    (void)monitor.ScanLine(line);
  }
}

TEST_P(Robustness, ServerSurvivesGarbageTraffic) {
  util::Rng rng(GetParam() + 3000);
  web::GaaWebServer::Options options;
  options.notification_latency_us = 0;
  web::GaaWebServer server(http::DocTree::DemoSite(), options);
  ASSERT_TRUE(server
                  .SetLocalPolicy("/", R"(
neg_access_right apache *
pre_cond_regex gnu *phf*
pos_access_right apache *
)")
                  .ok());
  for (int i = 0; i < 150; ++i) {
    std::string raw = i % 2 == 0 ? RandomBytes(rng, 800)
                                 : RandomTextish(rng, 800);
    auto response = server.HandleText(raw, "203.0.113.9");
    int code = static_cast<int>(response.status);
    EXPECT_GE(code, 200);
    EXPECT_LT(code, 600);
  }
  // Every request got exactly one decision and no per-request state leaked.
  EXPECT_EQ(server.controller().inflight_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Robustness, ::testing::Range(1, 9));

TEST(InflightTracking, DrainsAfterNormalTraffic) {
  web::GaaWebServer::Options options;
  options.notification_latency_us = 0;
  web::GaaWebServer server(http::DocTree::DemoSite(), options);
  ASSERT_TRUE(server.SetLocalPolicy("/", "pos_access_right apache *\n").ok());
  for (int i = 0; i < 50; ++i) {
    server.Get("/index.html", "10.0.0.1");
    server.Get("/cgi-bin/search?q=x", "10.0.0.1");
    server.Get("/missing", "10.0.0.1");
  }
  EXPECT_EQ(server.controller().inflight_count(), 0u);
}

}  // namespace
}  // namespace gaa
