// Evaluation-semantics tests for the GAA core (paper §2 and §6; DESIGN.md §5).
#include "gaa/api.h"

#include <gtest/gtest.h>

#include "conditions/builtin.h"
#include "testing/helpers.h"

namespace gaa::core {
namespace {

using gaa::testing::MakeContext;
using gaa::testing::TestRig;
using util::Tristate;

class GaaApiTest : public ::testing::Test {
 protected:
  GaaApiTest() : api_(&store_, rig_.services) {
    // Synthetic conditions with controllable outcomes and visible side
    // effects — the semantics tests must not depend on builtin behaviour.
    api_.registry().Register(
        "pre_cond_true", "*",
        [this](const eacl::Condition&, const RequestContext&, EvalServices&) {
          ++true_evals_;
          return EvalOutcome::Yes();
        });
    api_.registry().Register(
        "pre_cond_false", "*",
        [this](const eacl::Condition&, const RequestContext&, EvalServices&) {
          ++false_evals_;
          return EvalOutcome::No();
        });
    api_.registry().Register(
        "pre_cond_unknown", "*",
        [](const eacl::Condition&, const RequestContext&, EvalServices&) {
          return EvalOutcome::Unevaluated("deliberately unevaluated");
        });
    api_.registry().Register(
        "rr_cond_probe", "*",
        [this](const eacl::Condition& cond, const RequestContext& ctx,
               EvalServices&) {
          rr_calls_.push_back(std::string(cond.value) + ":" +
                              (ctx.request_granted.value_or(false) ? "granted"
                                                                   : "denied"));
          return EvalOutcome::Yes();
        });
    api_.registry().Register(
        "rr_cond_fail", "*",
        [](const eacl::Condition&, const RequestContext&, EvalServices&) {
          return EvalOutcome::No("action failed");
        });
    api_.registry().Register(
        "mid_cond_true", "*",
        [](const eacl::Condition&, const RequestContext&, EvalServices&) {
          return EvalOutcome::Yes();
        });
    api_.registry().Register(
        "mid_cond_false", "*",
        [](const eacl::Condition&, const RequestContext&, EvalServices&) {
          return EvalOutcome::No();
        });
    api_.registry().Register(
        "post_cond_probe", "*",
        [this](const eacl::Condition&, const RequestContext& ctx,
               EvalServices&) {
          post_outcomes_.push_back(ctx.stats.succeeded);
          return EvalOutcome::Yes();
        });
  }

  AuthzResult Check(const std::string& system_text,
                    const std::string& local_text,
                    const std::string& object = "/x",
                    const std::string& op = "GET") {
    store_.Clear();
    if (!system_text.empty()) {
      auto r = store_.AddSystemPolicy(system_text);
      EXPECT_TRUE(r.ok()) << r.error().ToString();
    }
    if (!local_text.empty()) {
      auto r = store_.SetLocalPolicy("/", local_text);
      EXPECT_TRUE(r.ok()) << r.error().ToString();
    }
    ctx_ = MakeContext("10.0.0.1", object, op);
    return api_.Authorize(object, RequestedRight{"apache", op}, ctx_);
  }

  TestRig rig_;
  PolicyStore store_;
  GaaApi api_;
  RequestContext ctx_;
  int true_evals_ = 0;
  int false_evals_ = 0;
  std::vector<std::string> rr_calls_;
  std::vector<bool> post_outcomes_;
};

TEST_F(GaaApiTest, EmptyPolicyDeniesClosedWorld) {
  auto authz = Check("", "");
  EXPECT_EQ(authz.status, Tristate::kNo);
  EXPECT_FALSE(authz.applicable);
}

TEST_F(GaaApiTest, UnconditionalPositiveGrants) {
  auto authz = Check("", "pos_access_right apache *\n");
  EXPECT_EQ(authz.status, Tristate::kYes);
  EXPECT_TRUE(authz.applicable);
}

TEST_F(GaaApiTest, UnconditionalNegativeDenies) {
  auto authz = Check("", "neg_access_right apache *\n");
  EXPECT_EQ(authz.status, Tristate::kNo);
  EXPECT_TRUE(authz.applicable);
}

TEST_F(GaaApiTest, RightMatchingFiltersEntries) {
  auto authz = Check("", "pos_access_right apache POST\n");
  EXPECT_EQ(authz.status, Tristate::kNo);  // GET not covered
  EXPECT_FALSE(authz.applicable);
  authz = Check("", "pos_access_right apache POST\n", "/x", "POST");
  EXPECT_EQ(authz.status, Tristate::kYes);
}

TEST_F(GaaApiTest, FailedPreconditionSkipsEntry) {
  auto authz = Check("",
                     "neg_access_right apache *\n"
                     "pre_cond_false local x\n"
                     "pos_access_right apache *\n");
  EXPECT_EQ(authz.status, Tristate::kYes);
  EXPECT_EQ(false_evals_, 1);
}

TEST_F(GaaApiTest, OrderedPrecedenceFirstEntryWins) {
  auto deny_first = Check("",
                          "neg_access_right apache *\n"
                          "pos_access_right apache *\n");
  EXPECT_EQ(deny_first.status, Tristate::kNo);
  auto grant_first = Check("",
                           "pos_access_right apache *\n"
                           "neg_access_right apache *\n");
  EXPECT_EQ(grant_first.status, Tristate::kYes);
}

TEST_F(GaaApiTest, PreBlockIsOrderedConjunctionWithShortCircuit) {
  auto authz = Check("",
                     "pos_access_right apache *\n"
                     "pre_cond_false local first\n"
                     "pre_cond_true local second\n");
  EXPECT_EQ(authz.status, Tristate::kNo);  // entry skipped, nothing else
  // Short-circuit: the second condition must not run.
  EXPECT_EQ(false_evals_, 1);
  EXPECT_EQ(true_evals_, 0);
}

TEST_F(GaaApiTest, UnregisteredConditionYieldsMaybe) {
  auto authz = Check("",
                     "pos_access_right apache *\n"
                     "pre_cond_never_registered local x\n");
  EXPECT_EQ(authz.status, Tristate::kMaybe);
  ASSERT_EQ(authz.unevaluated.size(), 1u);
  EXPECT_EQ(authz.unevaluated[0].type, "pre_cond_never_registered");
}

TEST_F(GaaApiTest, MaybeEntryStopsTheScan) {
  // A later unconditional grant cannot override an uncertain earlier entry.
  auto authz = Check("",
                     "neg_access_right apache *\n"
                     "pre_cond_unknown local x\n"
                     "pos_access_right apache *\n");
  EXPECT_EQ(authz.status, Tristate::kMaybe);
}

TEST_F(GaaApiTest, FailAfterUnknownMakesBlockFail) {
  // NO anywhere in the block wins over an earlier unevaluated condition:
  // "at least one of the conditions fails" == NO.
  auto authz = Check("",
                     "pos_access_right apache *\n"
                     "pre_cond_unknown local x\n"
                     "pre_cond_false local y\n"
                     "pos_access_right apache GET\n");
  EXPECT_EQ(authz.status, Tristate::kYes);  // entry 1 skipped; entry 2 grants
}

TEST_F(GaaApiTest, RequestResultConditionsFireOnGrant) {
  auto authz = Check("",
                     "pos_access_right apache *\n"
                     "pre_cond_true local x\n"
                     "rr_cond_probe local tag1\n");
  EXPECT_EQ(authz.status, Tristate::kYes);
  ASSERT_EQ(rr_calls_.size(), 1u);
  EXPECT_EQ(rr_calls_[0], "tag1:granted");
}

TEST_F(GaaApiTest, RequestResultConditionsFireOnDeny) {
  auto authz = Check("",
                     "neg_access_right apache *\n"
                     "rr_cond_probe local tag2\n");
  EXPECT_EQ(authz.status, Tristate::kNo);
  ASSERT_EQ(rr_calls_.size(), 1u);
  EXPECT_EQ(rr_calls_[0], "tag2:denied");
}

TEST_F(GaaApiTest, FailedRrConjoinsIntoGrant) {
  // "The conjunction of the intermediate result and [status] is stored in
  // the authorization status": a failed action degrades a grant to NO.
  auto authz = Check("",
                     "pos_access_right apache *\n"
                     "rr_cond_fail local x\n");
  EXPECT_EQ(authz.status, Tristate::kNo);
}

TEST_F(GaaApiTest, FailedRrKeepsDenyDenied) {
  auto authz = Check("",
                     "neg_access_right apache *\n"
                     "rr_cond_fail local x\n");
  EXPECT_EQ(authz.status, Tristate::kNo);
}

TEST_F(GaaApiTest, NarrowSystemDenialSkipsLocal) {
  auto authz = Check(
      "eacl_mode 1\nneg_access_right * *\n",
      "pos_access_right apache *\nrr_cond_probe local local_action\n");
  EXPECT_EQ(authz.status, Tristate::kNo);
  // The local side must not have run: no rr action fired from it.
  EXPECT_TRUE(rr_calls_.empty());
}

TEST_F(GaaApiTest, NarrowRequiresBothSides) {
  auto authz = Check("eacl_mode 1\npos_access_right apache *\n",
                     "pos_access_right apache *\n");
  EXPECT_EQ(authz.status, Tristate::kYes);
  authz = Check("eacl_mode 1\npos_access_right apache *\n",
                "neg_access_right apache *\n");
  EXPECT_EQ(authz.status, Tristate::kNo);
}

TEST_F(GaaApiTest, ExpandEitherSideGrants) {
  auto authz = Check("eacl_mode 0\npos_access_right apache *\n",
                     "neg_access_right apache *\n");
  EXPECT_EQ(authz.status, Tristate::kYes);
  authz = Check("eacl_mode 0\nneg_access_right apache *\n",
                "pos_access_right apache *\n");
  EXPECT_EQ(authz.status, Tristate::kYes);
  authz = Check("eacl_mode 0\nneg_access_right apache *\n",
                "neg_access_right apache *\n");
  EXPECT_EQ(authz.status, Tristate::kNo);
}

TEST_F(GaaApiTest, StopIgnoresLocal) {
  auto authz = Check("eacl_mode 2\nneg_access_right apache *\n",
                     "pos_access_right apache *\n");
  EXPECT_EQ(authz.status, Tristate::kNo);
  authz = Check("eacl_mode 2\npos_access_right apache *\n",
                "neg_access_right apache *\n");
  EXPECT_EQ(authz.status, Tristate::kYes);
}

TEST_F(GaaApiTest, InapplicableSystemSideDefersToLocal) {
  // System-wide entry conditioned on something false: not applicable;
  // the local policy alone decides (the §7.1 shape at low threat).
  auto authz = Check(
      "eacl_mode 1\nneg_access_right * *\npre_cond_false local x\n",
      "pos_access_right apache *\n");
  EXPECT_EQ(authz.status, Tristate::kYes);
}

TEST_F(GaaApiTest, MultipleLocalPoliciesConjoin) {
  store_.Clear();
  ASSERT_TRUE(store_.SetLocalPolicy("/", "pos_access_right apache *\n").ok());
  ASSERT_TRUE(store_.SetLocalPolicy(
                      "/private",
                      "neg_access_right apache *\npre_cond_true local x\n")
                  .ok());
  ctx_ = MakeContext("10.0.0.1", "/private/doc", "GET");
  auto authz = api_.Authorize("/private/doc", RequestedRight{"apache", "GET"},
                              ctx_);
  EXPECT_EQ(authz.status, Tristate::kNo);  // root grants ∧ private denies
  ctx_ = MakeContext("10.0.0.1", "/public/doc", "GET");
  authz = api_.Authorize("/public/doc", RequestedRight{"apache", "GET"}, ctx_);
  EXPECT_EQ(authz.status, Tristate::kYes);
}

TEST_F(GaaApiTest, GrantCollectsMidAndPostConditions) {
  auto authz = Check("",
                     "pos_access_right apache *\n"
                     "mid_cond_true local a\n"
                     "post_cond_probe local b\n");
  EXPECT_EQ(authz.status, Tristate::kYes);
  ASSERT_EQ(authz.mid_conditions.size(), 1u);
  ASSERT_EQ(authz.post_conditions.size(), 1u);
}

TEST_F(GaaApiTest, ExecutionControlPhase) {
  auto authz = Check("",
                     "pos_access_right apache *\n"
                     "mid_cond_true local a\n");
  auto phase = api_.ExecutionControl(authz, ctx_);
  EXPECT_EQ(phase.status, Tristate::kYes);

  authz = Check("",
                "pos_access_right apache *\n"
                "mid_cond_false local a\n");
  phase = api_.ExecutionControl(authz, ctx_);
  EXPECT_EQ(phase.status, Tristate::kNo);  // abort the operation
}

TEST_F(GaaApiTest, ExecutionControlWithNoMidConditionsIsYes) {
  auto authz = Check("", "pos_access_right apache *\n");
  EXPECT_EQ(api_.ExecutionControl(authz, ctx_).status, Tristate::kYes);
}

TEST_F(GaaApiTest, PostExecutionSeesOperationOutcome) {
  auto authz = Check("",
                     "pos_access_right apache *\n"
                     "post_cond_probe local p\n");
  api_.PostExecutionActions(authz, ctx_, /*operation_succeeded=*/true);
  api_.PostExecutionActions(authz, ctx_, /*operation_succeeded=*/false);
  ASSERT_EQ(post_outcomes_.size(), 2u);
  EXPECT_TRUE(post_outcomes_[0]);
  EXPECT_FALSE(post_outcomes_[1]);
}

TEST_F(GaaApiTest, PostExecutionWithNoConditionsIsYes) {
  auto authz = Check("", "pos_access_right apache *\n");
  EXPECT_EQ(api_.PostExecutionActions(authz, ctx_, true).status,
            Tristate::kYes);
}

TEST_F(GaaApiTest, TraceRecordsEvaluationOrder) {
  auto authz = Check("",
                     "pos_access_right apache *\n"
                     "pre_cond_true local one\n"
                     "pre_cond_true local two\n"
                     "rr_cond_probe local three\n");
  ASSERT_EQ(authz.trace.size(), 3u);
  EXPECT_EQ(authz.trace[0].cond.value, "one");
  EXPECT_EQ(authz.trace[1].cond.value, "two");
  EXPECT_EQ(authz.trace[2].cond.value, "three");
  EXPECT_EQ(authz.trace[2].phase, eacl::CondPhase::kRequestResult);
}

TEST_F(GaaApiTest, PolicyCacheServesAndInvalidates) {
  // The §9 LRU policy cache fronts the *interpreted* pipeline; the compiled
  // engine replaces it with snapshot publication (tested separately).
  api_.set_engine_mode(EngineMode::kInterpreted);
  api_.set_cache_enabled(true);
  store_.Clear();
  ASSERT_TRUE(store_.SetLocalPolicy("/", "pos_access_right apache *\n").ok());
  ctx_ = MakeContext();
  auto r1 = api_.Authorize("/x", RequestedRight{"apache", "GET"}, ctx_);
  EXPECT_EQ(r1.status, Tristate::kYes);
  auto r2 = api_.Authorize("/x", RequestedRight{"apache", "GET"}, ctx_);
  EXPECT_EQ(r2.status, Tristate::kYes);
  EXPECT_GE(api_.cache().hits(), 1u);

  // Policy change invalidates: the tightened policy must apply at once.
  ASSERT_TRUE(store_.SetLocalPolicy("/", "neg_access_right apache *\n").ok());
  auto r3 = api_.Authorize("/x", RequestedRight{"apache", "GET"}, ctx_);
  EXPECT_EQ(r3.status, Tristate::kNo);
}

TEST_F(GaaApiTest, InitializeFromConfigBindsBuiltins) {
  RoutineCatalog catalog;
  cond::RegisterBuiltinRoutines(catalog);
  GaaApi api(&store_, rig_.services);
  auto init = api.Initialize(catalog, cond::DefaultConfigText(), "");
  ASSERT_TRUE(init.ok()) << init.error().ToString();
  EXPECT_NE(api.registry().Find("pre_cond_regex", "gnu"), nullptr);
  EXPECT_NE(api.registry().Find("pre_cond_accessid", "USER"), nullptr);
}

TEST_F(GaaApiTest, InitializeRejectsUnknownRoutine) {
  RoutineCatalog catalog;
  GaaApi api(&store_, rig_.services);
  auto init = api.Initialize(
      catalog, "condition pre_cond_x local builtin:not_there\n", "");
  ASSERT_FALSE(init.ok());
  EXPECT_EQ(init.error().code, util::ErrorCode::kNotFound);
}

TEST_F(GaaApiTest, LocalConfigOverridesSystemBinding) {
  RoutineCatalog catalog;
  catalog.Add("make:no", [](const std::map<std::string, std::string>&) {
    return [](const eacl::Condition&, const RequestContext&, EvalServices&) {
      return EvalOutcome::No();
    };
  });
  catalog.Add("make:yes", [](const std::map<std::string, std::string>&) {
    return [](const eacl::Condition&, const RequestContext&, EvalServices&) {
      return EvalOutcome::Yes();
    };
  });
  GaaApi api(&store_, rig_.services);
  ASSERT_TRUE(api.Initialize(catalog, "condition pre_cond_x local make:no\n",
                             "condition pre_cond_x local make:yes\n")
                  .ok());
  store_.Clear();
  ASSERT_TRUE(store_
                  .SetLocalPolicy("/",
                                  "pos_access_right apache *\n"
                                  "pre_cond_x local v\n")
                  .ok());
  ctx_ = MakeContext();
  auto authz = api.Authorize("/x", RequestedRight{"apache", "GET"}, ctx_);
  EXPECT_EQ(authz.status, Tristate::kYes);  // local binding won
}

}  // namespace
}  // namespace gaa::core
