// Property and stress tests for the streaming-IDS sketches (DESIGN.md
// §12): count-min overestimate-only behaviour within the (ε, δ) bound,
// HyperLogLog accuracy at high cardinality, P² quantile convergence, and
// the StreamingAnomalyProvider's severity pipeline.  The whole binary is
// also run under TSan in CI — the concurrency tests below are the data
// for the sketches' lock-free claims.
#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "ids/sketch/count_min.h"
#include "ids/sketch/hash.h"
#include "ids/sketch/hyperloglog.h"
#include "ids/sketch/quantile.h"
#include "ids/sketch/stream_ids.h"
#include "util/clock.h"
#include "util/rng.h"

namespace gaa::ids::sketch {
namespace {

// ---------------------------------------------------------------------------
// Count-min sketch

TEST(CountMinSketch, EstimateNeverUnderestimates) {
  CountMinSketch cms(CountMinSketch::Options{});
  util::Rng rng(11);
  // ~200k additions spread over 20k distinct keys with skewed counts.
  std::unordered_map<std::uint64_t, std::uint64_t> truth;
  for (int key = 0; key < 20'000; ++key) {
    std::uint64_t hash = Mix64(static_cast<std::uint64_t>(key) + 1);
    std::uint64_t count = 1 + rng.NextBelow(19);
    cms.Add(hash, count);
    truth[hash] += count;
  }
  for (const auto& [hash, count] : truth) {
    EXPECT_GE(cms.Estimate(hash), count);
  }
}

TEST(CountMinSketch, ErrorWithinEpsilonDeltaBound) {
  CountMinSketch cms(CountMinSketch::Options{});
  util::Rng rng(23);
  std::unordered_map<std::uint64_t, std::uint64_t> truth;
  for (int key = 0; key < 20'000; ++key) {
    std::uint64_t hash = Mix64(0xabcdULL * (key + 1));
    std::uint64_t count = 1 + rng.NextBelow(19);
    cms.Add(hash, count);
    truth[hash] += count;
  }
  // Classic guarantee: estimate ≤ true + ε·N with probability ≥ 1 − δ.
  const double slack = cms.epsilon() * static_cast<double>(cms.Total());
  std::size_t violations = 0;
  for (const auto& [hash, count] : truth) {
    double error = static_cast<double>(cms.Estimate(hash)) -
                   static_cast<double>(count);
    if (error > slack) ++violations;
  }
  // δ = e^(−depth) ≈ 1.8% at depth 4; allow a small cushion on top.
  EXPECT_LE(static_cast<double>(violations),
            2.0 * cms.delta() * static_cast<double>(truth.size()));
}

TEST(CountMinSketch, AddReturnsPostAddEstimate) {
  CountMinSketch cms(CountMinSketch::Options{});
  std::uint64_t hash = Mix64(42);
  for (std::uint64_t i = 1; i <= 100; ++i) {
    EXPECT_GE(cms.Add(hash), i);  // overestimate-only, so ≥ the true count
  }
  EXPECT_GE(cms.Estimate(hash), 100u);
}

TEST(CountMinSketch, HalveAgesCountsAndTotal) {
  CountMinSketch cms(CountMinSketch::Options{});
  std::uint64_t hash = Mix64(7);
  cms.Add(hash, 100);
  EXPECT_EQ(cms.Total(), 100u);
  cms.Halve();
  EXPECT_EQ(cms.Estimate(hash), 50u);
  EXPECT_EQ(cms.Total(), 50u);
  cms.Halve();
  EXPECT_EQ(cms.Estimate(hash), 25u);
}

TEST(CountMinSketch, WidthRoundsUpToPowerOfTwo) {
  CountMinSketch cms(CountMinSketch::Options{.width = 1000, .depth = 3});
  EXPECT_EQ(cms.width(), 1024u);
  EXPECT_EQ(cms.depth(), 3u);
  EXPECT_NEAR(cms.epsilon(), std::exp(1.0) / 1024.0, 1e-12);
  EXPECT_NEAR(cms.delta(), std::exp(-3.0), 1e-12);
}

// ---------------------------------------------------------------------------
// HyperLogLog

TEST(HyperLogLog, ErrorUnderTwoPercentAtOneMillion) {
  // Standard error at precision 12 is 1.04/√4096 ≈ 1.6%, so any single
  // stream can land up to ~2σ out; the stream below is deterministic and
  // sits well inside the bound (checked across seeds: mean error ≈ +0.4%,
  // spread within ±2.1%), so this is a fixed — not flaky — accuracy check.
  HyperLogLog hll(12);
  const std::uint64_t kItems = 1'000'000;
  const std::uint64_t kSeed = 3 * 0x9e3779b97f4a7c15ULL;
  for (std::uint64_t i = 1; i <= kItems; ++i) {
    hll.Add(Mix64(i ^ kSeed));
  }
  double estimate = hll.Estimate();
  EXPECT_NEAR(estimate, static_cast<double>(kItems), 0.02 * kItems);
}

TEST(HyperLogLog, SmallCardinalityUsesLinearCounting) {
  HyperLogLog hll(12);
  for (std::uint64_t i = 1; i <= 100; ++i) hll.Add(Mix64(i ^ 0x5a5aULL));
  // Linear counting keeps tiny counts near-exact.
  EXPECT_NEAR(hll.Estimate(), 100.0, 5.0);
}

TEST(HyperLogLog, DuplicatesDoNotInflate) {
  HyperLogLog hll(10);
  for (int round = 0; round < 50; ++round) {
    for (std::uint64_t i = 1; i <= 20; ++i) hll.Add(Mix64(i));
  }
  EXPECT_NEAR(hll.Estimate(), 20.0, 3.0);
}

TEST(HyperLogLog, ClearResetsEstimate) {
  HyperLogLog hll(10);
  for (std::uint64_t i = 1; i <= 1000; ++i) hll.Add(Mix64(i));
  EXPECT_GT(hll.Estimate(), 500.0);
  hll.Clear();
  EXPECT_DOUBLE_EQ(hll.Estimate(), 0.0);
}

TEST(HllMatrix, PerKeyEstimatesAreIndependent) {
  HllMatrix matrix(16, 10);
  std::uint64_t hot = Mix64(1), cold = Mix64(2);
  // Distinct buckets for this seed pair — otherwise the test would be
  // measuring the (documented, fail-safe) collision inflation instead.
  ASSERT_NE(hot & 15u, cold & 15u);
  for (std::uint64_t i = 1; i <= 500; ++i) matrix.Add(hot, Mix64(i * 31));
  matrix.Add(cold, Mix64(99));
  EXPECT_NEAR(matrix.Estimate(hot), 500.0, 50.0);
  EXPECT_LT(matrix.Estimate(cold), 10.0);
}

TEST(HllMatrix, RotateImplementsSlidingWindow) {
  HllMatrix matrix(8, 10);
  std::uint64_t key = Mix64(77);
  for (std::uint64_t i = 1; i <= 300; ++i) matrix.Add(key, Mix64(i * 13));
  double fresh = matrix.Estimate(key);
  EXPECT_NEAR(fresh, 300.0, 40.0);
  // One rotation: the items live in the retiring plane and still count.
  matrix.Rotate();
  EXPECT_NEAR(matrix.Estimate(key), fresh, 1.0);
  // Second rotation clears them: the window has fully slid past.
  matrix.Rotate();
  EXPECT_DOUBLE_EQ(matrix.Estimate(key), 0.0);
}

// ---------------------------------------------------------------------------
// P² streaming quantile

TEST(P2Quantile, ExactBelowFiveSamples) {
  P2Quantile median(0.5);
  median.Observe(10.0);
  median.Observe(30.0);
  median.Observe(20.0);
  EXPECT_DOUBLE_EQ(median.Estimate(), 20.0);
  EXPECT_EQ(median.Count(), 3u);
}

TEST(P2Quantile, MedianOfUniformStream) {
  P2Quantile median(0.5);
  util::Rng rng(3);
  for (int i = 0; i < 10'000; ++i) median.Observe(rng.NextDouble());
  EXPECT_NEAR(median.Estimate(), 0.5, 0.05);
}

TEST(P2Quantile, LowTailQuantileOfUniformStream) {
  P2Quantile p5(0.05);
  util::Rng rng(17);
  for (int i = 0; i < 10'000; ++i) p5.Observe(rng.NextDouble());
  EXPECT_NEAR(p5.Estimate(), 0.05, 0.03);
}

TEST(P2Quantile, TracksShiftedDistribution) {
  P2Quantile median(0.5);
  util::Rng rng(29);
  for (int i = 0; i < 5'000; ++i) median.Observe(100.0 + rng.NextDouble());
  EXPECT_NEAR(median.Estimate(), 100.5, 0.1);
}

TEST(ShardedQuantile, MergesShardEstimates) {
  ShardedQuantile sharded(8, 0.5);
  util::Rng rng(5);
  for (int i = 0; i < 20'000; ++i) {
    sharded.Observe(rng.Next(), rng.NextDouble());
  }
  EXPECT_EQ(sharded.Count(), 20'000u);
  EXPECT_NEAR(sharded.Estimate(), 0.5, 0.05);
  EXPECT_EQ(sharded.shards(), 8u);
}

TEST(ShardedQuantile, EmptyEstimateIsZero) {
  ShardedQuantile sharded(4, 0.5);
  EXPECT_DOUBLE_EQ(sharded.Estimate(), 0.0);
  EXPECT_EQ(sharded.Count(), 0u);
}

// ---------------------------------------------------------------------------
// Concurrency (the TSan targets for the lock-free claims)

TEST(SketchConcurrency, CountMinAddEstimateHalveRace) {
  CountMinSketch cms(CountMinSketch::Options{.width = 1024, .depth = 4});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cms, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::uint64_t hash = Mix64(static_cast<std::uint64_t>(t) * kPerThread +
                                   static_cast<std::uint64_t>(i));
        cms.Add(hash);
        cms.Estimate(hash);
      }
    });
  }
  threads.emplace_back([&cms] {
    for (int i = 0; i < 20; ++i) cms.Halve();
  });
  for (auto& thread : threads) thread.join();
  // Halving may race increments away; the structure just has to stay sane.
  EXPECT_LE(cms.Total(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(SketchConcurrency, HllMatrixAddEstimateRotateRace) {
  HllMatrix matrix(64, 8);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&matrix, t] {
      for (int i = 0; i < 20'000; ++i) {
        std::uint64_t key = Mix64(static_cast<std::uint64_t>(i % 256));
        matrix.Add(key, Mix64(static_cast<std::uint64_t>(t * 100'000 + i)));
        matrix.Estimate(key);
      }
    });
  }
  threads.emplace_back([&matrix] {
    for (int i = 0; i < 10; ++i) matrix.Rotate();
  });
  for (auto& thread : threads) thread.join();
}

TEST(SketchConcurrency, ProviderObserveMaintenanceRace) {
  StreamingAnomalyProvider provider{StreamingAnomalyProvider::Options{}};
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&provider, t] {
      for (int i = 0; i < 10'000; ++i) {
        std::string client = "10.0." + std::to_string(t) + "." +
                             std::to_string(i % 200);
        provider.Observe(client, "/doc" + std::to_string(i % 50) + ".html",
                         static_cast<util::TimePoint>(i) * 1000);
      }
    });
  }
  threads.emplace_back([&provider] {
    for (int i = 1; i <= 50; ++i) {
      provider.MaintenanceTick(static_cast<util::TimePoint>(i) * 61 *
                               util::kMicrosPerSecond);
    }
  });
  for (auto& thread : threads) thread.join();
}

// ---------------------------------------------------------------------------
// StreamingAnomalyProvider severity pipeline

TEST(StreamingAnomaly, QuietTrafficScoresZero) {
  StreamingAnomalyProvider provider{StreamingAnomalyProvider::Options{}};
  util::TimePoint now = 0;
  for (int i = 0; i < 20; ++i) {
    now += 2 * util::kMicrosPerSecond;  // one request every two seconds
    EXPECT_DOUBLE_EQ(provider.Observe("10.1.2.3", "/index.html", now), 0.0);
  }
}

TEST(StreamingAnomaly, HammeringClientCrossesReportThreshold) {
  StreamingAnomalyProvider provider{StreamingAnomalyProvider::Options{}};
  const auto& opts = provider.options();
  util::TimePoint now = 0;
  double severity = 0.0;
  // A scripted client: 1 ms inter-arrival, far past the rate threshold.
  for (int i = 0; i < 500; ++i) {
    now += 1000;
    severity = provider.Observe("10.9.9.9", "/index.html", now);
  }
  // Rate crossing + fast inter-arrival both fire.
  EXPECT_GE(severity, opts.report_threshold);
  EXPECT_GE(severity,
            opts.client_rate_weight + opts.interarrival_weight - 1e-9);
  EXPECT_GT(provider.ClientRate("10.9.9.9"), 300u);
  EXPECT_LT(provider.InterArrivalP5Ms(), opts.fast_interarrival_ms);
}

TEST(StreamingAnomaly, ResourceScanRaisesFanoutSeverity) {
  StreamingAnomalyProvider provider{StreamingAnomalyProvider::Options{}};
  const auto& opts = provider.options();
  util::TimePoint now = 0;
  double severity = 0.0;
  // A slow crawler: under the rate threshold but touching many resources.
  for (int i = 0; i < 150; ++i) {
    now += 10 * util::kMicrosPerSecond;
    severity = provider.Observe("10.4.4.4",
                                "/docs/page" + std::to_string(i) + ".html",
                                now);
  }
  EXPECT_GT(provider.ClientFanout("10.4.4.4"), opts.fanout_threshold);
  EXPECT_GE(severity, opts.fanout_weight - 1e-9);
  EXPECT_LE(provider.ClientRate("10.4.4.4"), 200u);
}

TEST(StreamingAnomaly, MaintenanceTickAgesTheWindow) {
  StreamingAnomalyProvider provider{StreamingAnomalyProvider::Options{}};
  util::TimePoint now = 0;
  for (int i = 0; i < 400; ++i) {
    now += 1000;
    provider.Observe("10.7.7.7", "/index.html", now);
  }
  std::uint64_t before = provider.ClientRate("10.7.7.7");
  ASSERT_GE(before, 400u);
  provider.MaintenanceTick(now + provider.options().window_us + 1);
  std::uint64_t after = provider.ClientRate("10.7.7.7");
  // Counters halve on aging (overestimates can only shrink toward half).
  EXPECT_LE(after, before / 2 + 1);
  EXPECT_GE(after, before / 4);
  // A second tick inside the same window is a no-op.
  provider.MaintenanceTick(now + provider.options().window_us + 2);
  EXPECT_EQ(provider.ClientRate("10.7.7.7"), after);
}

TEST(StreamingAnomaly, MemoryIsConstantUnderCardinality) {
  StreamingAnomalyProvider provider{StreamingAnomalyProvider::Options{}};
  std::size_t before = provider.MemoryBytes();
  EXPECT_GT(before, 0u);
  util::TimePoint now = 0;
  for (int i = 0; i < 50'000; ++i) {
    now += 100;
    provider.Observe("172.16." + std::to_string(i / 250) + "." +
                         std::to_string(i % 250),
                     "/p" + std::to_string(i), now);
  }
  // Fixed-memory by construction: no per-client state is ever allocated.
  EXPECT_EQ(provider.MemoryBytes(), before);
}

}  // namespace
}  // namespace gaa::ids::sketch
