#include "gaa/config.h"

#include <gtest/gtest.h>

#include "conditions/builtin.h"

namespace gaa::core {
namespace {

TEST(ParseGaaConfig, Bindings) {
  auto result = ParseGaaConfig(R"(
condition pre_cond_regex gnu builtin:glob_signature attack_type=cgi severity=8
condition rr_cond_notify local builtin:notify
param notify.recipient admin@example.org
)");
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  const auto& cfg = result.value();
  ASSERT_EQ(cfg.bindings.size(), 2u);
  EXPECT_EQ(cfg.bindings[0].cond_type, "pre_cond_regex");
  EXPECT_EQ(cfg.bindings[0].def_auth, "gnu");
  EXPECT_EQ(cfg.bindings[0].routine, "builtin:glob_signature");
  EXPECT_EQ(cfg.bindings[0].params.at("attack_type"), "cgi");
  EXPECT_EQ(cfg.bindings[0].params.at("severity"), "8");
  EXPECT_TRUE(cfg.bindings[1].params.empty());
  EXPECT_EQ(cfg.params.at("notify.recipient"), "admin@example.org");
}

TEST(ParseGaaConfig, ParamValueMayContainSpaces) {
  auto result = ParseGaaConfig("param window 09:00-12:00 13:00-17:00\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().params.at("window"), "09:00-12:00 13:00-17:00");
}

TEST(ParseGaaConfig, Errors) {
  EXPECT_FALSE(ParseGaaConfig("condition only_two args\n").ok());
  EXPECT_FALSE(ParseGaaConfig("condition a b c not_kv\n").ok());
  EXPECT_FALSE(ParseGaaConfig("param incomplete\n").ok());
  EXPECT_FALSE(ParseGaaConfig("frobnicate x y\n").ok());
}

TEST(ParseGaaConfig, EmptyIsValid) {
  auto result = ParseGaaConfig("");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().bindings.empty());
}

TEST(DefaultConfig, ParsesAndBindsOnlyKnownFactories) {
  auto result = ParseGaaConfig(cond::DefaultConfigText());
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  RoutineCatalog catalog;
  cond::RegisterBuiltinRoutines(catalog);
  for (const auto& binding : result.value().bindings) {
    EXPECT_TRUE(catalog.Contains(binding.routine))
        << binding.routine << " for " << binding.cond_type;
  }
  // The default bindings cover all the paper's condition types.
  bool saw_threat = false;
  bool saw_regex = false;
  bool saw_redirect = false;
  for (const auto& binding : result.value().bindings) {
    if (binding.cond_type == "pre_cond_system_threat_level") saw_threat = true;
    if (binding.cond_type == "pre_cond_regex") saw_regex = true;
    if (binding.cond_type == "pre_cond_redirect") saw_redirect = true;
  }
  EXPECT_TRUE(saw_threat);
  EXPECT_TRUE(saw_regex);
  EXPECT_TRUE(saw_redirect);
}

}  // namespace
}  // namespace gaa::core
