#include "eacl/validate.h"

#include <gtest/gtest.h>

#include "eacl/parser.h"

namespace gaa::eacl {
namespace {

Eacl Parse(const char* text) {
  auto result = ParseEacl(text);
  EXPECT_TRUE(result.ok()) << result.error().ToString();
  return std::move(result).take();
}

TEST(Validate, AcceptsParsedPolicies) {
  Eacl eacl = Parse(R"(
pos_access_right apache *
pre_cond_time local 09:00-17:00
)");
  EXPECT_TRUE(Validate(eacl).ok());
}

TEST(Validate, RejectsHandBuiltNegativeWithMid) {
  Eacl eacl;
  Entry entry;
  entry.right = {false, "apache", "*"};
  entry.mid.push_back({"mid_cond_cpu", "local", "1"});
  eacl.entries.push_back(entry);
  auto result = Validate(eacl);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, util::ErrorCode::kInvalidArgument);
}

TEST(Validate, RejectsConditionInWrongBlock) {
  Eacl eacl;
  Entry entry;
  entry.right = {true, "apache", "*"};
  entry.pre.push_back({"rr_cond_notify", "local", "x"});  // rr cond in pre block
  eacl.entries.push_back(entry);
  EXPECT_FALSE(Validate(eacl).ok());
}

TEST(Validate, RejectsUnprefixedConditionType) {
  Eacl eacl;
  Entry entry;
  entry.right = {true, "apache", "*"};
  entry.pre.push_back({"check_time", "local", "x"});
  eacl.entries.push_back(entry);
  EXPECT_FALSE(Validate(eacl).ok());
}

TEST(Validate, RejectsEmptyDefAuth) {
  Eacl eacl;
  Entry entry;
  entry.right = {true, "apache", "*"};
  entry.pre.push_back({"pre_cond_time", "", "x"});
  eacl.entries.push_back(entry);
  EXPECT_FALSE(Validate(eacl).ok());
}

TEST(Validate, RejectsMalformedRight) {
  Eacl eacl;
  Entry entry;
  entry.right = {true, "", "*"};
  eacl.entries.push_back(entry);
  EXPECT_FALSE(Validate(eacl).ok());
}

TEST(RightCovers, WildcardSemantics) {
  Right wild{true, "*", "*"};
  EXPECT_TRUE(wild.Covers("apache", "GET"));
  Right app{true, "apache", "*"};
  EXPECT_TRUE(app.Covers("apache", "POST"));
  EXPECT_FALSE(app.Covers("sshd", "login"));
  Right exact{true, "apache", "GET"};
  EXPECT_TRUE(exact.Covers("apache", "GET"));
  EXPECT_FALSE(exact.Covers("apache", "POST"));
}

// --- the policy-consistency analyzer (paper future work) -------------------

TEST(AnalyzePolicy, CleanPolicyHasNoWarnings) {
  Eacl eacl = Parse(R"(
neg_access_right apache *
pre_cond_regex gnu *phf*
pos_access_right apache *
)");
  EXPECT_TRUE(AnalyzePolicy(eacl).empty());
}

TEST(AnalyzePolicy, DetectsShadowedEntry) {
  Eacl eacl = Parse(R"(
pos_access_right apache *
pos_access_right apache GET
pre_cond_time local 09:00-17:00
)");
  auto warnings = AnalyzePolicy(eacl);
  ASSERT_FALSE(warnings.empty());
  EXPECT_EQ(warnings[0].kind, PolicyWarning::Kind::kShadowedEntry);
  EXPECT_EQ(warnings[0].entry_index, 1u);
}

TEST(AnalyzePolicy, DetectsContradiction) {
  Eacl eacl = Parse(R"(
pos_access_right apache GET
neg_access_right apache GET
)");
  auto warnings = AnalyzePolicy(eacl);
  bool found = false;
  for (const auto& w : warnings) {
    if (w.kind == PolicyWarning::Kind::kContradiction) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(AnalyzePolicy, DetectsDuplicateEntry) {
  Eacl eacl = Parse(R"(
pos_access_right apache GET
pre_cond_time local 09:00-17:00
pos_access_right apache GET
pre_cond_time local 09:00-17:00
)");
  auto warnings = AnalyzePolicy(eacl);
  bool found = false;
  for (const auto& w : warnings) {
    if (w.kind == PolicyWarning::Kind::kDuplicateEntry) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(AnalyzePolicy, DetectsUnconditionalDenyAll) {
  Eacl eacl = Parse("neg_access_right * *\npos_access_right apache *\n");
  auto warnings = AnalyzePolicy(eacl);
  bool deny_all = false;
  bool shadowed = false;
  for (const auto& w : warnings) {
    if (w.kind == PolicyWarning::Kind::kUnconditionalDeny) deny_all = true;
    if (w.kind == PolicyWarning::Kind::kShadowedEntry) shadowed = true;
  }
  EXPECT_TRUE(deny_all);
  EXPECT_TRUE(shadowed);
}

TEST(AnalyzePolicy, ConditionedDenyIsNotFlagged) {
  Eacl eacl = Parse(R"(
neg_access_right * *
pre_cond_system_threat_level local =high
pos_access_right apache *
)");
  for (const auto& w : AnalyzePolicy(eacl)) {
    EXPECT_NE(w.kind, PolicyWarning::Kind::kUnconditionalDeny) << w.message;
    EXPECT_NE(w.kind, PolicyWarning::Kind::kShadowedEntry) << w.message;
  }
}

}  // namespace
}  // namespace gaa::eacl
