#include "util/glob.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "util/rng.h"

namespace gaa::util {
namespace {

TEST(GlobMatch, Literals) {
  EXPECT_TRUE(GlobMatch("abc", "abc"));
  EXPECT_FALSE(GlobMatch("abc", "abd"));
  EXPECT_FALSE(GlobMatch("abc", "ab"));
  EXPECT_FALSE(GlobMatch("ab", "abc"));
  EXPECT_TRUE(GlobMatch("", ""));
  EXPECT_FALSE(GlobMatch("", "x"));
}

TEST(GlobMatch, Star) {
  EXPECT_TRUE(GlobMatch("*", ""));
  EXPECT_TRUE(GlobMatch("*", "anything"));
  EXPECT_TRUE(GlobMatch("*phf*", "/cgi-bin/phf?q=x"));
  EXPECT_FALSE(GlobMatch("*phf*", "/cgi-bin/search"));
  EXPECT_TRUE(GlobMatch("a*b", "ab"));
  EXPECT_TRUE(GlobMatch("a*b", "axxb"));
  EXPECT_FALSE(GlobMatch("a*b", "axxc"));
  EXPECT_TRUE(GlobMatch("a**b", "aXb"));
}

TEST(GlobMatch, PaperSignatures) {
  // The exact signatures from section 7.2.
  EXPECT_TRUE(GlobMatch("*test-cgi*", "/cgi-bin/test-cgi?*"));
  EXPECT_TRUE(GlobMatch("*///////////////////*",
                        "/" + std::string(30, '/')));
  EXPECT_FALSE(GlobMatch("*///////////////////*", "/a/b/c/d"));
  EXPECT_TRUE(GlobMatch("*%*", "/scripts/..%255c../cmd.exe"));
  EXPECT_FALSE(GlobMatch("*%*", "/index.html"));
}

TEST(GlobMatch, QuestionMark) {
  EXPECT_TRUE(GlobMatch("a?c", "abc"));
  EXPECT_FALSE(GlobMatch("a?c", "ac"));
  EXPECT_FALSE(GlobMatch("a?c", "abbc"));
}

TEST(GlobMatch, CharacterClasses) {
  EXPECT_TRUE(GlobMatch("[abc]x", "bx"));
  EXPECT_FALSE(GlobMatch("[abc]x", "dx"));
  EXPECT_TRUE(GlobMatch("[a-z]*", "hello"));
  EXPECT_FALSE(GlobMatch("[a-z]*", "Hello"));
  EXPECT_TRUE(GlobMatch("[!0-9]", "a"));
  EXPECT_FALSE(GlobMatch("[!0-9]", "5"));
}

TEST(GlobMatch, Escapes) {
  EXPECT_TRUE(GlobMatch("a\\*b", "a*b"));
  EXPECT_FALSE(GlobMatch("a\\*b", "axb"));
  EXPECT_TRUE(GlobMatch("100\\%", "100%"));
}

TEST(GlobMatch, IgnoreCase) {
  EXPECT_TRUE(GlobMatchIgnoreCase("*CMD.EXE*", "/x/cmd.exe?/c+dir"));
  EXPECT_FALSE(GlobMatch("*CMD.EXE*", "/x/cmd.exe?/c+dir"));
}

TEST(GlobMatch, PathologicalBacktracking) {
  // Worst-case star backtracking must terminate quickly and correctly.
  std::string text(2000, 'a');
  EXPECT_TRUE(GlobMatch("*a*a*a*a*a*a*a*a*a*a*", text));
  EXPECT_FALSE(GlobMatch("*a*a*a*a*a*b", text));
}

TEST(CompiledGlob, MatchesLikeGlobMatch) {
  CompiledGlob g("*phf*");
  EXPECT_TRUE(g.Matches("/cgi-bin/phf"));
  EXPECT_FALSE(g.Matches("/cgi-bin/search"));
  EXPECT_EQ(g.longest_literal(), "phf");
}

TEST(CompiledGlob, QuickRejectLiteralExtraction) {
  CompiledGlob g("ab*cdef*g");
  EXPECT_EQ(g.longest_literal(), "cdef");
  EXPECT_TRUE(g.Matches("abXcdefYg"));
  EXPECT_FALSE(g.Matches("abXcdeYg"));
}

// --- property test: iterative matcher vs a simple recursive reference ------

bool RefMatch(std::string_view p, std::string_view t) {
  if (p.empty()) return t.empty();
  if (p[0] == '*') {
    for (std::size_t i = 0; i <= t.size(); ++i) {
      if (RefMatch(p.substr(1), t.substr(i))) return true;
    }
    return false;
  }
  if (t.empty()) return false;
  if (p[0] == '?' || p[0] == t[0]) return RefMatch(p.substr(1), t.substr(1));
  return false;
}

class GlobProperty : public ::testing::TestWithParam<int> {};

TEST_P(GlobProperty, AgreesWithReference) {
  Rng rng(GetParam());
  const char alphabet[] = {'a', 'b', '*', '?'};
  for (int trial = 0; trial < 200; ++trial) {
    std::string pattern;
    std::string text;
    for (int i = 0; i < static_cast<int>(rng.NextBelow(8)); ++i) {
      pattern.push_back(alphabet[rng.NextBelow(4)]);
    }
    for (int i = 0; i < static_cast<int>(rng.NextBelow(10)); ++i) {
      text.push_back(alphabet[rng.NextBelow(2)]);  // only 'a','b'
    }
    EXPECT_EQ(GlobMatch(pattern, text), RefMatch(pattern, text))
        << "pattern='" << pattern << "' text='" << text << "'";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GlobProperty, ::testing::Range(1, 11));

}  // namespace
}  // namespace gaa::util
