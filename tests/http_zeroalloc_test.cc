// Heap-counting differential proof for the template fast tier (DESIGN.md
// §11): once a keep-alive connection is warm, an inline static GET — and a
// conditional GET answered 304 — performs ZERO heap allocations end to end
// (framing, admission, template selection, access-log append, gathered
// write), and its bytes match the worker path exactly.
//
// The proof counts global operator new invocations across the whole
// process, so this binary must not run under sanitizers (their runtimes
// own the allocator) and is kept out of the sanitizer CI jobs; it also
// guards itself with a runtime skip.  The measurement client speaks raw
// sockets with stack buffers so the only allocator traffic is the
// server's.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <string_view>

#include "http/doc_tree.h"
#include "http/server.h"
#include "http/static_plane.h"
#include "http/tcp_server.h"
#include "util/clock.h"

namespace {

std::atomic<std::uint64_t> g_news{0};

void* CountedAlloc(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = CountedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) {
  void* p = CountedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace gaa::http {
namespace {

bool UnderSanitizer() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

int ConnectLoopbackFd(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// One keep-alive request/response exchange entirely on the stack: send the
/// request, read until the Content-Length-framed response is complete.
/// Returns the response length, or 0 on failure.  Allocation-free.
std::size_t RoundTripRaw(int fd, const char* request, std::size_t request_len,
                         char* buf, std::size_t buf_len) {
  std::size_t sent = 0;
  while (sent < request_len) {
    ssize_t n = ::send(fd, request + sent, request_len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return 0;
    }
    sent += static_cast<std::size_t>(n);
  }
  std::size_t have = 0;
  std::size_t need = 0;  // 0 = head not complete yet
  while (need == 0 || have < need) {
    ssize_t n = ::recv(fd, buf + have, buf_len - have, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return 0;
    }
    have += static_cast<std::size_t>(n);
    if (need == 0) {
      std::string_view sofar(buf, have);
      std::size_t head_end = sofar.find("\r\n\r\n");
      if (head_end == std::string_view::npos) continue;
      std::size_t body = 0;
      std::size_t pos = sofar.find("Content-Length: ");
      if (pos != std::string_view::npos) {
        for (pos += 16; pos < head_end && sofar[pos] >= '0' &&
                        sofar[pos] <= '9';
             ++pos) {
          body = body * 10 + static_cast<std::size_t>(sofar[pos] - '0');
        }
      }
      need = head_end + 4 + body;
    }
  }
  return need;
}

class ZeroAllocTest : public ::testing::Test {
 protected:
  ZeroAllocTest()
      : clock_(784111777'000000),  // pinned: Date renders exactly once
        tree_(DocTree::DemoSite()),
        server_(&tree_, &allow_all_, &clock_, ServerOptions()) {
    // The template tier declines traced requests (their spans must exist),
    // and the server's owned telemetry traces by default.
    server_.telemetry()->set_tracing_enabled(false);
  }

  static WebServer::Options ServerOptions() {
    WebServer::Options options;
    // Small ring: warm-up fills every slot, so steady-state appends only
    // overwrite in place.  The default (65536) would grow one slot per
    // request for longer than any test wants to warm up.
    options.access_log_limit = 16;
    return options;
  }

  void MeasureZeroAlloc(const std::string& request) {
    TcpServer::Options topts;
    topts.reactor_shards = 1;
    topts.worker_threads = 1;
    TcpServer tcp(&server_, topts);
    ASSERT_TRUE(tcp.Start().ok());
    int fd = ConnectLoopbackFd(tcp.port());
    ASSERT_GE(fd, 0);

    char buf[8192];
    // Warm-up: buffer-pool adoption, outq/arena/log-ring capacity growth,
    // the one Date render, lazy libc internals.
    for (int i = 0; i < 64; ++i) {
      ASSERT_GT(RoundTripRaw(fd, request.data(), request.size(), buf,
                             sizeof(buf)),
                0u)
          << "warm-up round trip " << i;
    }

    const std::uint64_t inline_before = tcp.inline_served();
    const std::uint64_t news_before = g_news.load(std::memory_order_relaxed);
    int failed = 0;
    for (int i = 0; i < 200; ++i) {
      if (RoundTripRaw(fd, request.data(), request.size(), buf,
                       sizeof(buf)) == 0) {
        ++failed;
      }
    }
    const std::uint64_t news_after = g_news.load(std::memory_order_relaxed);
    ASSERT_EQ(failed, 0);
    EXPECT_EQ(news_after - news_before, 0u)
        << "heap allocations on the template fast path";
    // Every measured request was served by the template tier on the loop.
    EXPECT_GE(tcp.inline_served() - inline_before, 200u);
    ::close(fd);
    tcp.Stop();
  }

  util::SimulatedClock clock_;
  DocTree tree_;
  AllowAllController allow_all_;
  WebServer server_;
};

TEST_F(ZeroAllocTest, WarmStaticGetAllocatesNothing) {
  if (UnderSanitizer()) {
    GTEST_SKIP() << "heap counting is meaningless under sanitizers";
  }
  MeasureZeroAlloc("GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n");
}

TEST_F(ZeroAllocTest, WarmConditionalGet304AllocatesNothing) {
  if (UnderSanitizer()) {
    GTEST_SKIP() << "heap counting is meaningless under sanitizers";
  }
  const auto* entry = server_.static_plane()->Find("/index.html");
  ASSERT_NE(entry, nullptr);
  MeasureZeroAlloc("GET /index.html HTTP/1.1\r\nHost: x\r\nIf-None-Match: " +
                   entry->etag + "\r\n\r\n");
}

TEST_F(ZeroAllocTest, FastPathBytesMatchWorkerPath) {
  // The zero-alloc tier must be invisible on the wire: byte-identical to
  // the worker path for 200, 304 and HEAD.
  TcpServer::Options fast_opts;
  fast_opts.reactor_shards = 1;
  TcpServer fast(&server_, fast_opts);
  ASSERT_TRUE(fast.Start().ok());
  TcpServer::Options slow_opts = fast_opts;
  slow_opts.inline_fast_path = false;
  TcpServer slow(&server_, slow_opts);
  ASSERT_TRUE(slow.Start().ok());

  const auto* entry = server_.static_plane()->Find("/index.html");
  ASSERT_NE(entry, nullptr);
  const std::string requests[] = {
      "GET /index.html HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
      "HEAD /index.html HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
      "GET /index.html HTTP/1.1\r\nHost: x\r\nConnection: close\r\n"
      "If-None-Match: " + entry->etag + "\r\n\r\n",
  };
  for (const std::string& raw : requests) {
    auto a = TcpFetch(fast.port(), raw);
    auto b = TcpFetch(slow.port(), raw);
    ASSERT_TRUE(a.ok()) << a.error().ToString();
    ASSERT_TRUE(b.ok()) << b.error().ToString();
    EXPECT_EQ(a.value(), b.value()) << raw;
  }
  EXPECT_GT(fast.inline_served(), 0u);
  EXPECT_EQ(slow.inline_served(), 0u);
  fast.Stop();
  slow.Stop();
}

}  // namespace
}  // namespace gaa::http
