// Differential property test of the compiled policy engine (DESIGN.md §9):
// the compiled IR pipeline must be observably identical to the interpreted
// AST pipeline — same YES/NO/MAYBE, same attribution, same evaluation trace
// byte for byte — across random policies over the *builtin* condition
// routines (including their compile-time specializations) and random
// request contexts.
//
// Two fully separate rigs (own SystemState, IDS, audit log, policy store)
// receive the identical policy text and the identical request sequence, so
// effectful conditions (blacklist updates, event recording) mutate each
// rig's state in lockstep and stay comparable.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "conditions/builtin.h"
#include "gaa/api.h"
#include "testing/helpers.h"
#include "util/rng.h"

namespace gaa::core {
namespace {

using gaa::testing::MakeContext;
using gaa::testing::TestRig;
using util::Tristate;

/// One engine under test: a full GAA stack initialized with the builtin
/// routine catalog (so specializers and purity traits are registered).
struct Engine {
  explicit Engine(EngineMode mode) : api(&store, rig.services) {
    RoutineCatalog catalog;
    cond::RegisterBuiltinRoutines(catalog);
    auto init = api.Initialize(catalog, cond::DefaultConfigText(), "");
    EXPECT_TRUE(init.ok());
    api.set_engine_mode(mode);
  }

  TestRig rig;
  PolicyStore store;
  GaaApi api;
};

// --- random policy generation over builtin conditions -----------------------

std::string RandomPreCondition(util::Rng& rng) {
  switch (rng.NextBelow(12)) {
    case 0:
      return std::string("pre_cond_accessid USER apache ") +
             (rng.NextBool(0.4) ? "*" : (rng.NextBool(0.5) ? "alice" : "bob"));
    case 1:
      return std::string("pre_cond_accessid HOST local ") +
             (rng.NextBool(0.7) ? "10.0.0.0/8 192.168.1.0/24" : "not-a-cidr");
    case 2:
      return "pre_cond_accessid GROUP local BadGuys";
    case 3:
      // Simulated clock sits at 12:00; mix inside / outside / wrapping /
      // var-indirected windows.
      switch (rng.NextBelow(4)) {
        case 0:
          return "pre_cond_time local 09:00-17:00";
        case 1:
          return "pre_cond_time local 01:00-02:00";
        case 2:
          return "pre_cond_time local 22:00-06:00";
        default:
          return "pre_cond_time local var:maintenance_window";
      }
    case 4:
      switch (rng.NextBelow(3)) {
        case 0:
          return "pre_cond_location local 10.0.0.0/8";
        case 1:
          return "pre_cond_location local 203.0.113.0/24 garbage";
        default:
          return "pre_cond_location local var:allowed_nets";
      }
    case 5:
      switch (rng.NextBelow(4)) {
        case 0:
          return "pre_cond_system_threat_level local <=medium";
        case 1:
          return "pre_cond_system_threat_level local =low";
        case 2:
          return "pre_cond_system_threat_level local >high";
        default:
          return "pre_cond_system_threat_level local =banana";  // bad literal
      }
    case 6:
      return "pre_cond_regex gnu *phf* *test-cgi*";
    case 7:
      switch (rng.NextBelow(4)) {
        case 0:
          return "pre_cond_expr local url_length <100";
        case 1:
          return "pre_cond_expr local cgi_input_length >10";
        case 2:
          return "pre_cond_expr local slash_count >=2";
        default:
          return "pre_cond_expr local query_length >var:limit";
      }
    case 8:
      return std::string("pre_cond_var local mode ") +
             (rng.NextBool(0.5) ? "lockdown" : "normal");
    case 9:
      return "pre_cond_firewall local";
    case 10:
      return "pre_cond_redirect local https://auth.example.com/login";
    default:
      return std::string("pre_cond_param local user_agent ") +
             (rng.NextBool(0.5) ? "*Nikto*" : "*Mozilla*");
  }
}

std::string RandomRrCondition(util::Rng& rng) {
  switch (rng.NextBelow(3)) {
    case 0:
      return "rr_cond_audit local on:any/diff";
    case 1:
      return "rr_cond_record_event local on:failure/deny.%ip/30";
    default:
      return "rr_cond_update_log local on:failure/BadGuys/info:ip";
  }
}

std::string RandomPolicyText(util::Rng& rng) {
  std::string text;
  std::size_t entries = 1 + rng.NextBelow(5);
  for (std::size_t i = 0; i < entries; ++i) {
    text += rng.NextBool(0.6) ? "pos_access_right " : "neg_access_right ";
    text += rng.NextBool(0.8) ? "apache " : "* ";
    text += rng.NextBool(0.5) ? "*" : (rng.NextBool(0.5) ? "GET" : "POST");
    text += "\n";
    std::size_t conds = rng.NextBelow(4);
    for (std::size_t c = 0; c < conds; ++c) {
      text += RandomPreCondition(rng);
      text += "\n";
    }
    if (rng.NextBool(0.35)) {
      text += RandomRrCondition(rng);
      text += "\n";
    }
  }
  return text;
}

RequestContext RandomContext(util::Rng& rng) {
  static const char* kIps[] = {"10.0.0.1", "10.9.9.9", "192.168.1.5",
                               "203.0.113.9"};
  static const char* kObjects[] = {"/index.html", "/cgi-bin/phf",
                                   "/private/report.html",
                                   "/private/logs/system.log"};
  RequestContext ctx =
      MakeContext(kIps[rng.NextBelow(4)], kObjects[rng.NextBelow(4)],
                  rng.NextBool(0.8) ? "GET" : "POST");
  if (rng.NextBool(0.4)) {
    ctx.authenticated = true;
    ctx.user = rng.NextBool(0.5) ? "alice" : "bob";
  }
  if (rng.NextBool(0.3)) {
    ctx.query = rng.NextBool(0.5) ? "x=1" : std::string(40, 'a');
    ctx.raw_url = ctx.object + "?" + ctx.query;
  }
  return ctx;
}

// --- result comparison -------------------------------------------------------

void ExpectSameCondition(const eacl::Condition& a, const eacl::Condition& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.def_auth, b.def_auth);
  EXPECT_EQ(a.value, b.value);
}

void ExpectSameResult(const AuthzResult& interp, const AuthzResult& compiled) {
  EXPECT_EQ(interp.status, compiled.status);
  EXPECT_EQ(interp.applicable, compiled.applicable);
  EXPECT_EQ(interp.detail, compiled.detail);

  ASSERT_EQ(interp.attribution.has_value(), compiled.attribution.has_value());
  if (interp.attribution.has_value()) {
    EXPECT_EQ(interp.attribution->policy, compiled.attribution->policy);
    EXPECT_EQ(interp.attribution->entry, compiled.attribution->entry);
    EXPECT_EQ(interp.attribution->condition, compiled.attribution->condition);
    EXPECT_EQ(interp.attribution->status, compiled.attribution->status);
  }

  ASSERT_EQ(interp.trace.size(), compiled.trace.size());
  for (std::size_t i = 0; i < interp.trace.size(); ++i) {
    ExpectSameCondition(interp.trace[i].cond, compiled.trace[i].cond);
    EXPECT_EQ(interp.trace[i].phase, compiled.trace[i].phase);
    EXPECT_EQ(interp.trace[i].outcome.status, compiled.trace[i].outcome.status);
    EXPECT_EQ(interp.trace[i].outcome.evaluated,
              compiled.trace[i].outcome.evaluated);
    // Byte-identical details prove the specializers reproduce the generic
    // routines exactly, not just their tristate result.
    EXPECT_EQ(interp.trace[i].outcome.detail, compiled.trace[i].outcome.detail);
  }

  ASSERT_EQ(interp.unevaluated.size(), compiled.unevaluated.size());
  for (std::size_t i = 0; i < interp.unevaluated.size(); ++i) {
    ExpectSameCondition(interp.unevaluated[i], compiled.unevaluated[i]);
  }
  ASSERT_EQ(interp.mid_conditions.size(), compiled.mid_conditions.size());
  for (std::size_t i = 0; i < interp.mid_conditions.size(); ++i) {
    ExpectSameCondition(interp.mid_conditions[i], compiled.mid_conditions[i]);
  }
  ASSERT_EQ(interp.post_conditions.size(), compiled.post_conditions.size());
  for (std::size_t i = 0; i < interp.post_conditions.size(); ++i) {
    ExpectSameCondition(interp.post_conditions[i], compiled.post_conditions[i]);
  }
}

class CompiledEngineDifferential : public ::testing::TestWithParam<int> {};

TEST_P(CompiledEngineDifferential, MatchesInterpreterOnRandomPolicies) {
  util::Rng rng(GetParam() * 7919 + 17);
  // 10 seeds x 4 policy sets x 30 contexts = 1200 compared pairs.
  for (int round = 0; round < 4; ++round) {
    Engine interp(EngineMode::kInterpreted);
    Engine compiled(EngineMode::kCompiled);

    // Identical ambient state on both sides: some rounds set the variables
    // the var:-indirected conditions read (those stay un-specialized).
    if (rng.NextBool(0.5)) {
      for (auto* rig : {&interp.rig, &compiled.rig}) {
        rig->state.SetVariable("limit", "20");
        rig->state.SetVariable("mode", "lockdown");
        rig->state.SetVariable("allowed_nets", "10.0.0.0/8");
      }
    }

    std::string system_text;
    if (rng.NextBool(0.5)) {
      system_text = "eacl_mode 1\n" + RandomPolicyText(rng);
      ASSERT_TRUE(interp.store.AddSystemPolicy(system_text).ok());
      ASSERT_TRUE(compiled.store.AddSystemPolicy(system_text).ok());
    }
    std::string root_text = RandomPolicyText(rng);
    ASSERT_TRUE(interp.store.SetLocalPolicy("/", root_text).ok());
    ASSERT_TRUE(compiled.store.SetLocalPolicy("/", root_text).ok());
    if (rng.NextBool(0.5)) {
      std::string private_text = RandomPolicyText(rng);
      ASSERT_TRUE(interp.store.SetLocalPolicy("/private", private_text).ok());
      ASSERT_TRUE(compiled.store.SetLocalPolicy("/private", private_text).ok());
    }

    for (int i = 0; i < 30; ++i) {
      RequestContext ctx_i = RandomContext(rng);
      RequestContext ctx_c = ctx_i;  // identical request on both engines
      RequestedRight right{"apache", ctx_i.operation};

      AuthzResult a = interp.api.Authorize(ctx_i.object, right, ctx_i);
      AuthzResult b = compiled.api.Authorize(ctx_c.object, right, ctx_c);
      ExpectSameResult(a, b);

      // Phases 3 and 4 consume the saved mid/post blocks (kept in source
      // form by the compiler); they must agree too.
      PhaseResult mid_a = interp.api.ExecutionControl(a, ctx_i);
      PhaseResult mid_b = compiled.api.ExecutionControl(b, ctx_c);
      EXPECT_EQ(mid_a.status, mid_b.status);
      bool success = a.status == Tristate::kYes;
      PhaseResult post_a = interp.api.PostExecutionActions(a, ctx_i, success);
      PhaseResult post_b = compiled.api.PostExecutionActions(b, ctx_c, success);
      EXPECT_EQ(post_a.status, post_b.status);
      ASSERT_EQ(post_a.trace.size(), post_b.trace.size());
      for (std::size_t t = 0; t < post_a.trace.size(); ++t) {
        EXPECT_EQ(post_a.trace[t].outcome.detail,
                  post_b.trace[t].outcome.detail);
      }

      if (::testing::Test::HasFailure()) {
        ADD_FAILURE() << "diverged on policy:\n"
                      << system_text << "---\n"
                      << root_text << "context: ip="
                      << ctx_i.client_ip.ToString() << " object=" << ctx_i.object
                      << " op=" << ctx_i.operation
                      << " auth=" << ctx_i.authenticated << " user="
                      << ctx_i.user;
        return;
      }
    }

    // Cross-check the rigs' side effects stayed in lockstep: both engines
    // must have fired the same blacklist updates and IDS reports.
    EXPECT_EQ(interp.rig.state.GroupSize("BadGuys"),
              compiled.rig.state.GroupSize("BadGuys"));
    EXPECT_EQ(interp.rig.ids.reports.size(), compiled.rig.ids.reports.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledEngineDifferential,
                         ::testing::Range(1, 11));

}  // namespace
}  // namespace gaa::core
