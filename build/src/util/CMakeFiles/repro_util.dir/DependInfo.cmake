
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/clock.cc" "src/util/CMakeFiles/repro_util.dir/clock.cc.o" "gcc" "src/util/CMakeFiles/repro_util.dir/clock.cc.o.d"
  "/root/repo/src/util/config.cc" "src/util/CMakeFiles/repro_util.dir/config.cc.o" "gcc" "src/util/CMakeFiles/repro_util.dir/config.cc.o.d"
  "/root/repo/src/util/glob.cc" "src/util/CMakeFiles/repro_util.dir/glob.cc.o" "gcc" "src/util/CMakeFiles/repro_util.dir/glob.cc.o.d"
  "/root/repo/src/util/ip.cc" "src/util/CMakeFiles/repro_util.dir/ip.cc.o" "gcc" "src/util/CMakeFiles/repro_util.dir/ip.cc.o.d"
  "/root/repo/src/util/log.cc" "src/util/CMakeFiles/repro_util.dir/log.cc.o" "gcc" "src/util/CMakeFiles/repro_util.dir/log.cc.o.d"
  "/root/repo/src/util/status.cc" "src/util/CMakeFiles/repro_util.dir/status.cc.o" "gcc" "src/util/CMakeFiles/repro_util.dir/status.cc.o.d"
  "/root/repo/src/util/strings.cc" "src/util/CMakeFiles/repro_util.dir/strings.cc.o" "gcc" "src/util/CMakeFiles/repro_util.dir/strings.cc.o.d"
  "/root/repo/src/util/tristate.cc" "src/util/CMakeFiles/repro_util.dir/tristate.cc.o" "gcc" "src/util/CMakeFiles/repro_util.dir/tristate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
