file(REMOVE_RECURSE
  "CMakeFiles/repro_util.dir/clock.cc.o"
  "CMakeFiles/repro_util.dir/clock.cc.o.d"
  "CMakeFiles/repro_util.dir/config.cc.o"
  "CMakeFiles/repro_util.dir/config.cc.o.d"
  "CMakeFiles/repro_util.dir/glob.cc.o"
  "CMakeFiles/repro_util.dir/glob.cc.o.d"
  "CMakeFiles/repro_util.dir/ip.cc.o"
  "CMakeFiles/repro_util.dir/ip.cc.o.d"
  "CMakeFiles/repro_util.dir/log.cc.o"
  "CMakeFiles/repro_util.dir/log.cc.o.d"
  "CMakeFiles/repro_util.dir/status.cc.o"
  "CMakeFiles/repro_util.dir/status.cc.o.d"
  "CMakeFiles/repro_util.dir/strings.cc.o"
  "CMakeFiles/repro_util.dir/strings.cc.o.d"
  "CMakeFiles/repro_util.dir/tristate.cc.o"
  "CMakeFiles/repro_util.dir/tristate.cc.o.d"
  "librepro_util.a"
  "librepro_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
