src/util/CMakeFiles/repro_util.dir/tristate.cc.o: \
 /root/repo/src/util/tristate.cc /usr/include/stdc-predef.h \
 /root/repo/src/util/tristate.h
