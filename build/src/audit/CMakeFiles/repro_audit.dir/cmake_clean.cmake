file(REMOVE_RECURSE
  "CMakeFiles/repro_audit.dir/audit_log.cc.o"
  "CMakeFiles/repro_audit.dir/audit_log.cc.o.d"
  "CMakeFiles/repro_audit.dir/notification.cc.o"
  "CMakeFiles/repro_audit.dir/notification.cc.o.d"
  "librepro_audit.a"
  "librepro_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
