file(REMOVE_RECURSE
  "librepro_audit.a"
)
