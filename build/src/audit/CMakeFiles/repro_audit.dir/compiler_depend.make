# Empty compiler generated dependencies file for repro_audit.
# This may be replaced when dependencies are built.
