file(REMOVE_RECURSE
  "librepro_http.a"
)
