
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/http/doc_tree.cc" "src/http/CMakeFiles/repro_http.dir/doc_tree.cc.o" "gcc" "src/http/CMakeFiles/repro_http.dir/doc_tree.cc.o.d"
  "/root/repo/src/http/htaccess.cc" "src/http/CMakeFiles/repro_http.dir/htaccess.cc.o" "gcc" "src/http/CMakeFiles/repro_http.dir/htaccess.cc.o.d"
  "/root/repo/src/http/htpasswd.cc" "src/http/CMakeFiles/repro_http.dir/htpasswd.cc.o" "gcc" "src/http/CMakeFiles/repro_http.dir/htpasswd.cc.o.d"
  "/root/repo/src/http/request.cc" "src/http/CMakeFiles/repro_http.dir/request.cc.o" "gcc" "src/http/CMakeFiles/repro_http.dir/request.cc.o.d"
  "/root/repo/src/http/response.cc" "src/http/CMakeFiles/repro_http.dir/response.cc.o" "gcc" "src/http/CMakeFiles/repro_http.dir/response.cc.o.d"
  "/root/repo/src/http/server.cc" "src/http/CMakeFiles/repro_http.dir/server.cc.o" "gcc" "src/http/CMakeFiles/repro_http.dir/server.cc.o.d"
  "/root/repo/src/http/tcp_server.cc" "src/http/CMakeFiles/repro_http.dir/tcp_server.cc.o" "gcc" "src/http/CMakeFiles/repro_http.dir/tcp_server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
