# Empty compiler generated dependencies file for repro_http.
# This may be replaced when dependencies are built.
