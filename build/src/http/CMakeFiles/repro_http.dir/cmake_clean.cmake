file(REMOVE_RECURSE
  "CMakeFiles/repro_http.dir/doc_tree.cc.o"
  "CMakeFiles/repro_http.dir/doc_tree.cc.o.d"
  "CMakeFiles/repro_http.dir/htaccess.cc.o"
  "CMakeFiles/repro_http.dir/htaccess.cc.o.d"
  "CMakeFiles/repro_http.dir/htpasswd.cc.o"
  "CMakeFiles/repro_http.dir/htpasswd.cc.o.d"
  "CMakeFiles/repro_http.dir/request.cc.o"
  "CMakeFiles/repro_http.dir/request.cc.o.d"
  "CMakeFiles/repro_http.dir/response.cc.o"
  "CMakeFiles/repro_http.dir/response.cc.o.d"
  "CMakeFiles/repro_http.dir/server.cc.o"
  "CMakeFiles/repro_http.dir/server.cc.o.d"
  "CMakeFiles/repro_http.dir/tcp_server.cc.o"
  "CMakeFiles/repro_http.dir/tcp_server.cc.o.d"
  "librepro_http.a"
  "librepro_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
