
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gaa/api.cc" "src/gaa/CMakeFiles/repro_gaa.dir/api.cc.o" "gcc" "src/gaa/CMakeFiles/repro_gaa.dir/api.cc.o.d"
  "/root/repo/src/gaa/cache.cc" "src/gaa/CMakeFiles/repro_gaa.dir/cache.cc.o" "gcc" "src/gaa/CMakeFiles/repro_gaa.dir/cache.cc.o.d"
  "/root/repo/src/gaa/config.cc" "src/gaa/CMakeFiles/repro_gaa.dir/config.cc.o" "gcc" "src/gaa/CMakeFiles/repro_gaa.dir/config.cc.o.d"
  "/root/repo/src/gaa/context.cc" "src/gaa/CMakeFiles/repro_gaa.dir/context.cc.o" "gcc" "src/gaa/CMakeFiles/repro_gaa.dir/context.cc.o.d"
  "/root/repo/src/gaa/policy_store.cc" "src/gaa/CMakeFiles/repro_gaa.dir/policy_store.cc.o" "gcc" "src/gaa/CMakeFiles/repro_gaa.dir/policy_store.cc.o.d"
  "/root/repo/src/gaa/registry.cc" "src/gaa/CMakeFiles/repro_gaa.dir/registry.cc.o" "gcc" "src/gaa/CMakeFiles/repro_gaa.dir/registry.cc.o.d"
  "/root/repo/src/gaa/system_state.cc" "src/gaa/CMakeFiles/repro_gaa.dir/system_state.cc.o" "gcc" "src/gaa/CMakeFiles/repro_gaa.dir/system_state.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eacl/CMakeFiles/repro_eacl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
