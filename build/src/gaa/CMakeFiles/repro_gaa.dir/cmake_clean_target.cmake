file(REMOVE_RECURSE
  "librepro_gaa.a"
)
