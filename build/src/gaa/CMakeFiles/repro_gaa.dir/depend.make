# Empty dependencies file for repro_gaa.
# This may be replaced when dependencies are built.
