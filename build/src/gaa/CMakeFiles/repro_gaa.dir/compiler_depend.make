# Empty compiler generated dependencies file for repro_gaa.
# This may be replaced when dependencies are built.
