file(REMOVE_RECURSE
  "CMakeFiles/repro_gaa.dir/api.cc.o"
  "CMakeFiles/repro_gaa.dir/api.cc.o.d"
  "CMakeFiles/repro_gaa.dir/cache.cc.o"
  "CMakeFiles/repro_gaa.dir/cache.cc.o.d"
  "CMakeFiles/repro_gaa.dir/config.cc.o"
  "CMakeFiles/repro_gaa.dir/config.cc.o.d"
  "CMakeFiles/repro_gaa.dir/context.cc.o"
  "CMakeFiles/repro_gaa.dir/context.cc.o.d"
  "CMakeFiles/repro_gaa.dir/policy_store.cc.o"
  "CMakeFiles/repro_gaa.dir/policy_store.cc.o.d"
  "CMakeFiles/repro_gaa.dir/registry.cc.o"
  "CMakeFiles/repro_gaa.dir/registry.cc.o.d"
  "CMakeFiles/repro_gaa.dir/system_state.cc.o"
  "CMakeFiles/repro_gaa.dir/system_state.cc.o.d"
  "librepro_gaa.a"
  "librepro_gaa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_gaa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
