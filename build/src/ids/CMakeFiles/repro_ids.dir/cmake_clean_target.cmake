file(REMOVE_RECURSE
  "librepro_ids.a"
)
