
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ids/anomaly.cc" "src/ids/CMakeFiles/repro_ids.dir/anomaly.cc.o" "gcc" "src/ids/CMakeFiles/repro_ids.dir/anomaly.cc.o.d"
  "/root/repo/src/ids/event_bus.cc" "src/ids/CMakeFiles/repro_ids.dir/event_bus.cc.o" "gcc" "src/ids/CMakeFiles/repro_ids.dir/event_bus.cc.o.d"
  "/root/repo/src/ids/ids.cc" "src/ids/CMakeFiles/repro_ids.dir/ids.cc.o" "gcc" "src/ids/CMakeFiles/repro_ids.dir/ids.cc.o.d"
  "/root/repo/src/ids/log_monitor.cc" "src/ids/CMakeFiles/repro_ids.dir/log_monitor.cc.o" "gcc" "src/ids/CMakeFiles/repro_ids.dir/log_monitor.cc.o.d"
  "/root/repo/src/ids/signature_db.cc" "src/ids/CMakeFiles/repro_ids.dir/signature_db.cc.o" "gcc" "src/ids/CMakeFiles/repro_ids.dir/signature_db.cc.o.d"
  "/root/repo/src/ids/threat_service.cc" "src/ids/CMakeFiles/repro_ids.dir/threat_service.cc.o" "gcc" "src/ids/CMakeFiles/repro_ids.dir/threat_service.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gaa/CMakeFiles/repro_gaa.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/repro_http.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  "/root/repo/build/src/eacl/CMakeFiles/repro_eacl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
