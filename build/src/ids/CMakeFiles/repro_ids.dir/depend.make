# Empty dependencies file for repro_ids.
# This may be replaced when dependencies are built.
