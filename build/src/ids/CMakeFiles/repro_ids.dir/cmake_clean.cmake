file(REMOVE_RECURSE
  "CMakeFiles/repro_ids.dir/anomaly.cc.o"
  "CMakeFiles/repro_ids.dir/anomaly.cc.o.d"
  "CMakeFiles/repro_ids.dir/event_bus.cc.o"
  "CMakeFiles/repro_ids.dir/event_bus.cc.o.d"
  "CMakeFiles/repro_ids.dir/ids.cc.o"
  "CMakeFiles/repro_ids.dir/ids.cc.o.d"
  "CMakeFiles/repro_ids.dir/log_monitor.cc.o"
  "CMakeFiles/repro_ids.dir/log_monitor.cc.o.d"
  "CMakeFiles/repro_ids.dir/signature_db.cc.o"
  "CMakeFiles/repro_ids.dir/signature_db.cc.o.d"
  "CMakeFiles/repro_ids.dir/threat_service.cc.o"
  "CMakeFiles/repro_ids.dir/threat_service.cc.o.d"
  "librepro_ids.a"
  "librepro_ids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_ids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
