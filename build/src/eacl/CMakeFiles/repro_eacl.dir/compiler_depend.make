# Empty compiler generated dependencies file for repro_eacl.
# This may be replaced when dependencies are built.
