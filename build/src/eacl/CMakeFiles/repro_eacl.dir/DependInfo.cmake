
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eacl/ast.cc" "src/eacl/CMakeFiles/repro_eacl.dir/ast.cc.o" "gcc" "src/eacl/CMakeFiles/repro_eacl.dir/ast.cc.o.d"
  "/root/repo/src/eacl/composition.cc" "src/eacl/CMakeFiles/repro_eacl.dir/composition.cc.o" "gcc" "src/eacl/CMakeFiles/repro_eacl.dir/composition.cc.o.d"
  "/root/repo/src/eacl/parser.cc" "src/eacl/CMakeFiles/repro_eacl.dir/parser.cc.o" "gcc" "src/eacl/CMakeFiles/repro_eacl.dir/parser.cc.o.d"
  "/root/repo/src/eacl/printer.cc" "src/eacl/CMakeFiles/repro_eacl.dir/printer.cc.o" "gcc" "src/eacl/CMakeFiles/repro_eacl.dir/printer.cc.o.d"
  "/root/repo/src/eacl/validate.cc" "src/eacl/CMakeFiles/repro_eacl.dir/validate.cc.o" "gcc" "src/eacl/CMakeFiles/repro_eacl.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
