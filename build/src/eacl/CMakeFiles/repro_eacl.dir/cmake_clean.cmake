file(REMOVE_RECURSE
  "CMakeFiles/repro_eacl.dir/ast.cc.o"
  "CMakeFiles/repro_eacl.dir/ast.cc.o.d"
  "CMakeFiles/repro_eacl.dir/composition.cc.o"
  "CMakeFiles/repro_eacl.dir/composition.cc.o.d"
  "CMakeFiles/repro_eacl.dir/parser.cc.o"
  "CMakeFiles/repro_eacl.dir/parser.cc.o.d"
  "CMakeFiles/repro_eacl.dir/printer.cc.o"
  "CMakeFiles/repro_eacl.dir/printer.cc.o.d"
  "CMakeFiles/repro_eacl.dir/validate.cc.o"
  "CMakeFiles/repro_eacl.dir/validate.cc.o.d"
  "librepro_eacl.a"
  "librepro_eacl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_eacl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
