file(REMOVE_RECURSE
  "librepro_eacl.a"
)
