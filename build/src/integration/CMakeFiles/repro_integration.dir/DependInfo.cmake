
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/integration/connection_stats.cc" "src/integration/CMakeFiles/repro_integration.dir/connection_stats.cc.o" "gcc" "src/integration/CMakeFiles/repro_integration.dir/connection_stats.cc.o.d"
  "/root/repo/src/integration/gaa_controller.cc" "src/integration/CMakeFiles/repro_integration.dir/gaa_controller.cc.o" "gcc" "src/integration/CMakeFiles/repro_integration.dir/gaa_controller.cc.o.d"
  "/root/repo/src/integration/gaa_web_server.cc" "src/integration/CMakeFiles/repro_integration.dir/gaa_web_server.cc.o" "gcc" "src/integration/CMakeFiles/repro_integration.dir/gaa_web_server.cc.o.d"
  "/root/repo/src/integration/ipsec.cc" "src/integration/CMakeFiles/repro_integration.dir/ipsec.cc.o" "gcc" "src/integration/CMakeFiles/repro_integration.dir/ipsec.cc.o.d"
  "/root/repo/src/integration/sshd.cc" "src/integration/CMakeFiles/repro_integration.dir/sshd.cc.o" "gcc" "src/integration/CMakeFiles/repro_integration.dir/sshd.cc.o.d"
  "/root/repo/src/integration/translate.cc" "src/integration/CMakeFiles/repro_integration.dir/translate.cc.o" "gcc" "src/integration/CMakeFiles/repro_integration.dir/translate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/http/CMakeFiles/repro_http.dir/DependInfo.cmake"
  "/root/repo/build/src/gaa/CMakeFiles/repro_gaa.dir/DependInfo.cmake"
  "/root/repo/build/src/conditions/CMakeFiles/repro_conditions.dir/DependInfo.cmake"
  "/root/repo/build/src/ids/CMakeFiles/repro_ids.dir/DependInfo.cmake"
  "/root/repo/build/src/audit/CMakeFiles/repro_audit.dir/DependInfo.cmake"
  "/root/repo/build/src/eacl/CMakeFiles/repro_eacl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
