file(REMOVE_RECURSE
  "CMakeFiles/repro_integration.dir/connection_stats.cc.o"
  "CMakeFiles/repro_integration.dir/connection_stats.cc.o.d"
  "CMakeFiles/repro_integration.dir/gaa_controller.cc.o"
  "CMakeFiles/repro_integration.dir/gaa_controller.cc.o.d"
  "CMakeFiles/repro_integration.dir/gaa_web_server.cc.o"
  "CMakeFiles/repro_integration.dir/gaa_web_server.cc.o.d"
  "CMakeFiles/repro_integration.dir/ipsec.cc.o"
  "CMakeFiles/repro_integration.dir/ipsec.cc.o.d"
  "CMakeFiles/repro_integration.dir/sshd.cc.o"
  "CMakeFiles/repro_integration.dir/sshd.cc.o.d"
  "CMakeFiles/repro_integration.dir/translate.cc.o"
  "CMakeFiles/repro_integration.dir/translate.cc.o.d"
  "librepro_integration.a"
  "librepro_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
