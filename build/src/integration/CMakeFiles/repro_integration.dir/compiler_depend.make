# Empty compiler generated dependencies file for repro_integration.
# This may be replaced when dependencies are built.
