file(REMOVE_RECURSE
  "librepro_integration.a"
)
