file(REMOVE_RECURSE
  "CMakeFiles/repro_conditions.dir/actions.cc.o"
  "CMakeFiles/repro_conditions.dir/actions.cc.o.d"
  "CMakeFiles/repro_conditions.dir/builtin.cc.o"
  "CMakeFiles/repro_conditions.dir/builtin.cc.o.d"
  "CMakeFiles/repro_conditions.dir/firewall.cc.o"
  "CMakeFiles/repro_conditions.dir/firewall.cc.o.d"
  "CMakeFiles/repro_conditions.dir/identity.cc.o"
  "CMakeFiles/repro_conditions.dir/identity.cc.o.d"
  "CMakeFiles/repro_conditions.dir/runtime.cc.o"
  "CMakeFiles/repro_conditions.dir/runtime.cc.o.d"
  "CMakeFiles/repro_conditions.dir/signature.cc.o"
  "CMakeFiles/repro_conditions.dir/signature.cc.o.d"
  "CMakeFiles/repro_conditions.dir/threat.cc.o"
  "CMakeFiles/repro_conditions.dir/threat.cc.o.d"
  "CMakeFiles/repro_conditions.dir/time_location.cc.o"
  "CMakeFiles/repro_conditions.dir/time_location.cc.o.d"
  "CMakeFiles/repro_conditions.dir/trigger.cc.o"
  "CMakeFiles/repro_conditions.dir/trigger.cc.o.d"
  "librepro_conditions.a"
  "librepro_conditions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_conditions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
