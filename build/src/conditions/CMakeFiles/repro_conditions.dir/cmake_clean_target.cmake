file(REMOVE_RECURSE
  "librepro_conditions.a"
)
