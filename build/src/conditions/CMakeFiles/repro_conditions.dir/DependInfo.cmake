
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/conditions/actions.cc" "src/conditions/CMakeFiles/repro_conditions.dir/actions.cc.o" "gcc" "src/conditions/CMakeFiles/repro_conditions.dir/actions.cc.o.d"
  "/root/repo/src/conditions/builtin.cc" "src/conditions/CMakeFiles/repro_conditions.dir/builtin.cc.o" "gcc" "src/conditions/CMakeFiles/repro_conditions.dir/builtin.cc.o.d"
  "/root/repo/src/conditions/firewall.cc" "src/conditions/CMakeFiles/repro_conditions.dir/firewall.cc.o" "gcc" "src/conditions/CMakeFiles/repro_conditions.dir/firewall.cc.o.d"
  "/root/repo/src/conditions/identity.cc" "src/conditions/CMakeFiles/repro_conditions.dir/identity.cc.o" "gcc" "src/conditions/CMakeFiles/repro_conditions.dir/identity.cc.o.d"
  "/root/repo/src/conditions/runtime.cc" "src/conditions/CMakeFiles/repro_conditions.dir/runtime.cc.o" "gcc" "src/conditions/CMakeFiles/repro_conditions.dir/runtime.cc.o.d"
  "/root/repo/src/conditions/signature.cc" "src/conditions/CMakeFiles/repro_conditions.dir/signature.cc.o" "gcc" "src/conditions/CMakeFiles/repro_conditions.dir/signature.cc.o.d"
  "/root/repo/src/conditions/threat.cc" "src/conditions/CMakeFiles/repro_conditions.dir/threat.cc.o" "gcc" "src/conditions/CMakeFiles/repro_conditions.dir/threat.cc.o.d"
  "/root/repo/src/conditions/time_location.cc" "src/conditions/CMakeFiles/repro_conditions.dir/time_location.cc.o" "gcc" "src/conditions/CMakeFiles/repro_conditions.dir/time_location.cc.o.d"
  "/root/repo/src/conditions/trigger.cc" "src/conditions/CMakeFiles/repro_conditions.dir/trigger.cc.o" "gcc" "src/conditions/CMakeFiles/repro_conditions.dir/trigger.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gaa/CMakeFiles/repro_gaa.dir/DependInfo.cmake"
  "/root/repo/build/src/eacl/CMakeFiles/repro_eacl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
