# Empty compiler generated dependencies file for repro_conditions.
# This may be replaced when dependencies are built.
