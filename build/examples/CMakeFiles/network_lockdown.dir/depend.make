# Empty dependencies file for network_lockdown.
# This may be replaced when dependencies are built.
