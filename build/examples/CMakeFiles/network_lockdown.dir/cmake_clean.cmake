file(REMOVE_RECURSE
  "CMakeFiles/network_lockdown.dir/network_lockdown.cpp.o"
  "CMakeFiles/network_lockdown.dir/network_lockdown.cpp.o.d"
  "network_lockdown"
  "network_lockdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_lockdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
