file(REMOVE_RECURSE
  "CMakeFiles/serve_tcp.dir/serve_tcp.cpp.o"
  "CMakeFiles/serve_tcp.dir/serve_tcp.cpp.o.d"
  "serve_tcp"
  "serve_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
