# Empty compiler generated dependencies file for serve_tcp.
# This may be replaced when dependencies are built.
