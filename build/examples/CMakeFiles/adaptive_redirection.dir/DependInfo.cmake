
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/adaptive_redirection.cpp" "examples/CMakeFiles/adaptive_redirection.dir/adaptive_redirection.cpp.o" "gcc" "examples/CMakeFiles/adaptive_redirection.dir/adaptive_redirection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/integration/CMakeFiles/repro_integration.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/repro_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/repro_http.dir/DependInfo.cmake"
  "/root/repo/build/src/ids/CMakeFiles/repro_ids.dir/DependInfo.cmake"
  "/root/repo/build/src/audit/CMakeFiles/repro_audit.dir/DependInfo.cmake"
  "/root/repo/build/src/conditions/CMakeFiles/repro_conditions.dir/DependInfo.cmake"
  "/root/repo/build/src/gaa/CMakeFiles/repro_gaa.dir/DependInfo.cmake"
  "/root/repo/build/src/eacl/CMakeFiles/repro_eacl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
