file(REMOVE_RECURSE
  "CMakeFiles/adaptive_redirection.dir/adaptive_redirection.cpp.o"
  "CMakeFiles/adaptive_redirection.dir/adaptive_redirection.cpp.o.d"
  "adaptive_redirection"
  "adaptive_redirection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_redirection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
