# Empty dependencies file for adaptive_redirection.
# This may be replaced when dependencies are built.
