# Empty dependencies file for policy_tools.
# This may be replaced when dependencies are built.
