file(REMOVE_RECURSE
  "CMakeFiles/policy_tools.dir/policy_tools.cpp.o"
  "CMakeFiles/policy_tools.dir/policy_tools.cpp.o.d"
  "policy_tools"
  "policy_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
