file(REMOVE_RECURSE
  "CMakeFiles/bench_notification.dir/bench_notification.cc.o"
  "CMakeFiles/bench_notification.dir/bench_notification.cc.o.d"
  "bench_notification"
  "bench_notification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_notification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
