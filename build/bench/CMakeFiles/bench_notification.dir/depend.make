# Empty dependencies file for bench_notification.
# This may be replaced when dependencies are built.
