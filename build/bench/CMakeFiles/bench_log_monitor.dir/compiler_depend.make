# Empty compiler generated dependencies file for bench_log_monitor.
# This may be replaced when dependencies are built.
