file(REMOVE_RECURSE
  "CMakeFiles/bench_log_monitor.dir/bench_log_monitor.cc.o"
  "CMakeFiles/bench_log_monitor.dir/bench_log_monitor.cc.o.d"
  "bench_log_monitor"
  "bench_log_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_log_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
