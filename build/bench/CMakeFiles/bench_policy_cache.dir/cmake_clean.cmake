file(REMOVE_RECURSE
  "CMakeFiles/bench_policy_cache.dir/bench_policy_cache.cc.o"
  "CMakeFiles/bench_policy_cache.dir/bench_policy_cache.cc.o.d"
  "bench_policy_cache"
  "bench_policy_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_policy_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
