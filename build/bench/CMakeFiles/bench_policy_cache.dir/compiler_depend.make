# Empty compiler generated dependencies file for bench_policy_cache.
# This may be replaced when dependencies are built.
