file(REMOVE_RECURSE
  "CMakeFiles/bench_intrusion.dir/bench_intrusion.cc.o"
  "CMakeFiles/bench_intrusion.dir/bench_intrusion.cc.o.d"
  "bench_intrusion"
  "bench_intrusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intrusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
