file(REMOVE_RECURSE
  "CMakeFiles/bench_lockdown.dir/bench_lockdown.cc.o"
  "CMakeFiles/bench_lockdown.dir/bench_lockdown.cc.o.d"
  "bench_lockdown"
  "bench_lockdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lockdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
