file(REMOVE_RECURSE
  "CMakeFiles/bench_eacl_scale.dir/bench_eacl_scale.cc.o"
  "CMakeFiles/bench_eacl_scale.dir/bench_eacl_scale.cc.o.d"
  "bench_eacl_scale"
  "bench_eacl_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eacl_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
