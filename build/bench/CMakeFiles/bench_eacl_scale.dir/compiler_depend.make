# Empty compiler generated dependencies file for bench_eacl_scale.
# This may be replaced when dependencies are built.
