file(REMOVE_RECURSE
  "CMakeFiles/bench_signatures.dir/bench_signatures.cc.o"
  "CMakeFiles/bench_signatures.dir/bench_signatures.cc.o.d"
  "bench_signatures"
  "bench_signatures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_signatures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
