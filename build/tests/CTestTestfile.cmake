# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(util_test "/root/repo/build/tests/util_test")
set_tests_properties(util_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;14;repro_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(eacl_test "/root/repo/build/tests/eacl_test")
set_tests_properties(eacl_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;23;repro_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(gaa_test "/root/repo/build/tests/gaa_test")
set_tests_properties(gaa_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;28;repro_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(conditions_test "/root/repo/build/tests/conditions_test")
set_tests_properties(conditions_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;37;repro_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ids_test "/root/repo/build/tests/ids_test")
set_tests_properties(ids_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;46;repro_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(audit_test "/root/repo/build/tests/audit_test")
set_tests_properties(audit_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;54;repro_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(http_test "/root/repo/build/tests/http_test")
set_tests_properties(http_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;58;repro_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;66;repro_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workload_test "/root/repo/build/tests/workload_test")
set_tests_properties(workload_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;80;repro_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(robustness_test "/root/repo/build/tests/robustness_test")
set_tests_properties(robustness_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;83;repro_test;/root/repo/tests/CMakeLists.txt;0;")
