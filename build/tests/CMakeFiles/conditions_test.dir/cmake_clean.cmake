file(REMOVE_RECURSE
  "CMakeFiles/conditions_test.dir/conditions_actions_test.cc.o"
  "CMakeFiles/conditions_test.dir/conditions_actions_test.cc.o.d"
  "CMakeFiles/conditions_test.dir/conditions_firewall_test.cc.o"
  "CMakeFiles/conditions_test.dir/conditions_firewall_test.cc.o.d"
  "CMakeFiles/conditions_test.dir/conditions_identity_test.cc.o"
  "CMakeFiles/conditions_test.dir/conditions_identity_test.cc.o.d"
  "CMakeFiles/conditions_test.dir/conditions_param_test.cc.o"
  "CMakeFiles/conditions_test.dir/conditions_param_test.cc.o.d"
  "CMakeFiles/conditions_test.dir/conditions_runtime_test.cc.o"
  "CMakeFiles/conditions_test.dir/conditions_runtime_test.cc.o.d"
  "CMakeFiles/conditions_test.dir/conditions_signature_test.cc.o"
  "CMakeFiles/conditions_test.dir/conditions_signature_test.cc.o.d"
  "CMakeFiles/conditions_test.dir/conditions_threat_time_test.cc.o"
  "CMakeFiles/conditions_test.dir/conditions_threat_time_test.cc.o.d"
  "conditions_test"
  "conditions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conditions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
