file(REMOVE_RECURSE
  "CMakeFiles/ids_test.dir/ids_anomaly_test.cc.o"
  "CMakeFiles/ids_test.dir/ids_anomaly_test.cc.o.d"
  "CMakeFiles/ids_test.dir/ids_event_bus_test.cc.o"
  "CMakeFiles/ids_test.dir/ids_event_bus_test.cc.o.d"
  "CMakeFiles/ids_test.dir/ids_log_monitor_test.cc.o"
  "CMakeFiles/ids_test.dir/ids_log_monitor_test.cc.o.d"
  "CMakeFiles/ids_test.dir/ids_signature_db_test.cc.o"
  "CMakeFiles/ids_test.dir/ids_signature_db_test.cc.o.d"
  "CMakeFiles/ids_test.dir/ids_system_test.cc.o"
  "CMakeFiles/ids_test.dir/ids_system_test.cc.o.d"
  "CMakeFiles/ids_test.dir/ids_threat_test.cc.o"
  "CMakeFiles/ids_test.dir/ids_threat_test.cc.o.d"
  "ids_test"
  "ids_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ids_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
