file(REMOVE_RECURSE
  "CMakeFiles/eacl_test.dir/eacl_composition_test.cc.o"
  "CMakeFiles/eacl_test.dir/eacl_composition_test.cc.o.d"
  "CMakeFiles/eacl_test.dir/eacl_parser_test.cc.o"
  "CMakeFiles/eacl_test.dir/eacl_parser_test.cc.o.d"
  "CMakeFiles/eacl_test.dir/eacl_validate_test.cc.o"
  "CMakeFiles/eacl_test.dir/eacl_validate_test.cc.o.d"
  "eacl_test"
  "eacl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eacl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
