# Empty compiler generated dependencies file for eacl_test.
# This may be replaced when dependencies are built.
