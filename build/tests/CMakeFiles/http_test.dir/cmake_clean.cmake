file(REMOVE_RECURSE
  "CMakeFiles/http_test.dir/http_htaccess_test.cc.o"
  "CMakeFiles/http_test.dir/http_htaccess_test.cc.o.d"
  "CMakeFiles/http_test.dir/http_htpasswd_test.cc.o"
  "CMakeFiles/http_test.dir/http_htpasswd_test.cc.o.d"
  "CMakeFiles/http_test.dir/http_request_test.cc.o"
  "CMakeFiles/http_test.dir/http_request_test.cc.o.d"
  "CMakeFiles/http_test.dir/http_response_test.cc.o"
  "CMakeFiles/http_test.dir/http_response_test.cc.o.d"
  "CMakeFiles/http_test.dir/http_server_test.cc.o"
  "CMakeFiles/http_test.dir/http_server_test.cc.o.d"
  "CMakeFiles/http_test.dir/http_tcp_test.cc.o"
  "CMakeFiles/http_test.dir/http_tcp_test.cc.o.d"
  "http_test"
  "http_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
