file(REMOVE_RECURSE
  "CMakeFiles/integration_test.dir/integration_concurrency_test.cc.o"
  "CMakeFiles/integration_test.dir/integration_concurrency_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration_controller_test.cc.o"
  "CMakeFiles/integration_test.dir/integration_controller_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration_intrusion_test.cc.o"
  "CMakeFiles/integration_test.dir/integration_intrusion_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration_ipsec_test.cc.o"
  "CMakeFiles/integration_test.dir/integration_ipsec_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration_lifecycle_test.cc.o"
  "CMakeFiles/integration_test.dir/integration_lifecycle_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration_lockdown_test.cc.o"
  "CMakeFiles/integration_test.dir/integration_lockdown_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration_misc_test.cc.o"
  "CMakeFiles/integration_test.dir/integration_misc_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration_redirect_test.cc.o"
  "CMakeFiles/integration_test.dir/integration_redirect_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration_spoofing_async_test.cc.o"
  "CMakeFiles/integration_test.dir/integration_spoofing_async_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration_sshd_test.cc.o"
  "CMakeFiles/integration_test.dir/integration_sshd_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration_streaming_test.cc.o"
  "CMakeFiles/integration_test.dir/integration_streaming_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration_translate_test.cc.o"
  "CMakeFiles/integration_test.dir/integration_translate_test.cc.o.d"
  "integration_test"
  "integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
