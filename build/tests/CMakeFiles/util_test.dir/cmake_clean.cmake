file(REMOVE_RECURSE
  "CMakeFiles/util_test.dir/util_clock_test.cc.o"
  "CMakeFiles/util_test.dir/util_clock_test.cc.o.d"
  "CMakeFiles/util_test.dir/util_config_test.cc.o"
  "CMakeFiles/util_test.dir/util_config_test.cc.o.d"
  "CMakeFiles/util_test.dir/util_glob_test.cc.o"
  "CMakeFiles/util_test.dir/util_glob_test.cc.o.d"
  "CMakeFiles/util_test.dir/util_ip_test.cc.o"
  "CMakeFiles/util_test.dir/util_ip_test.cc.o.d"
  "CMakeFiles/util_test.dir/util_log_test.cc.o"
  "CMakeFiles/util_test.dir/util_log_test.cc.o.d"
  "CMakeFiles/util_test.dir/util_strings_test.cc.o"
  "CMakeFiles/util_test.dir/util_strings_test.cc.o.d"
  "CMakeFiles/util_test.dir/util_tristate_test.cc.o"
  "CMakeFiles/util_test.dir/util_tristate_test.cc.o.d"
  "util_test"
  "util_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
