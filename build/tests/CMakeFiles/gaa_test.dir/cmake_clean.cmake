file(REMOVE_RECURSE
  "CMakeFiles/gaa_test.dir/gaa_api_test.cc.o"
  "CMakeFiles/gaa_test.dir/gaa_api_test.cc.o.d"
  "CMakeFiles/gaa_test.dir/gaa_cache_test.cc.o"
  "CMakeFiles/gaa_test.dir/gaa_cache_test.cc.o.d"
  "CMakeFiles/gaa_test.dir/gaa_config_test.cc.o"
  "CMakeFiles/gaa_test.dir/gaa_config_test.cc.o.d"
  "CMakeFiles/gaa_test.dir/gaa_policy_store_test.cc.o"
  "CMakeFiles/gaa_test.dir/gaa_policy_store_test.cc.o.d"
  "CMakeFiles/gaa_test.dir/gaa_property_test.cc.o"
  "CMakeFiles/gaa_test.dir/gaa_property_test.cc.o.d"
  "CMakeFiles/gaa_test.dir/gaa_registry_test.cc.o"
  "CMakeFiles/gaa_test.dir/gaa_registry_test.cc.o.d"
  "CMakeFiles/gaa_test.dir/gaa_store_modes_test.cc.o"
  "CMakeFiles/gaa_test.dir/gaa_store_modes_test.cc.o.d"
  "gaa_test"
  "gaa_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
