# Empty dependencies file for gaa_test.
# This may be replaced when dependencies are built.
